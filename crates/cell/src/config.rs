//! Cell-simulation configuration.
//!
//! A cell run is fully described by one [`CellConfig`]: the host's machine
//! memory, the microVM shape, the overcommit ratio that caps admission,
//! the provisioning strategy under comparison, and the arrival workload
//! (reusing [`rh_fleet::WorkloadConfig`]). Every stochastic draw derives
//! from `seed`, so the same config replays byte-identically.

use rh_fleet::WorkloadConfig;
use rh_sim::time::SimDuration;

/// How the cell turns an arrival into a running microVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProvisionStrategy {
    /// Every arrival builds a VM from scratch: allocate frames, fill the
    /// image, boot. Departed VMs free their memory immediately. When the
    /// machine is full, arrivals queue until departures free frames.
    Cold,
    /// The paper's warm-VM reboot: departed VMs park in a bounded warm
    /// pool with their memory image frozen in place, and a later arrival
    /// revives one with a quick reload (P2M preserved, frames
    /// re-reserved, digest validated). Pool misses fall back to cold;
    /// memory pressure evicts parked VMs before arrivals queue.
    Warm,
    /// Warm pool plus balloon reclaim: when the allocator cannot supply a
    /// full image, the host squeezes *running* VMs down toward their
    /// resident floor via
    /// [`rh_memory::BalloonController::reclaim_under_pressure`] instead
    /// of making the arrival wait for a departure.
    BalloonReclaim,
}

impl ProvisionStrategy {
    /// All strategies, in comparison order.
    pub const ALL: [ProvisionStrategy; 3] = [
        ProvisionStrategy::Cold,
        ProvisionStrategy::Warm,
        ProvisionStrategy::BalloonReclaim,
    ];

    /// The CLI/bench name.
    pub fn name(self) -> &'static str {
        match self {
            ProvisionStrategy::Cold => "cold",
            ProvisionStrategy::Warm => "warm",
            ProvisionStrategy::BalloonReclaim => "balloon",
        }
    }

    /// Parses a CLI/bench name.
    pub fn parse(s: &str) -> Option<ProvisionStrategy> {
        ProvisionStrategy::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for ProvisionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a [`CellSimulation`](crate::sim::CellSimulation) needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// Machine frames on the host.
    pub host_frames: u64,
    /// Pages per microVM image (pseudo-physical size at full deflate).
    pub vm_pages: u64,
    /// Admission cap as a multiple of what physically fits: the cell
    /// admits at most `⌊host_frames / vm_pages × overcommit⌋` resident
    /// VMs. `1.0` means no overcommit.
    pub overcommit: f64,
    /// Provisioning strategy under test.
    pub strategy: ProvisionStrategy,
    /// Warm-pool capacity (parked VMs), for the warm strategies.
    pub warm_pool: usize,
    /// Balloon floor: reclaim never squeezes a running VM below this many
    /// resident pages.
    pub min_resident: u64,
    /// Arrival/departure process (diurnal Poisson, exponential lifetimes).
    pub workload: WorkloadConfig,
    /// Simulated horizon; arrivals stop here and in-flight VMs drain.
    pub horizon: SimDuration,
    /// Master seed for the workload stream.
    pub seed: u64,
}

impl CellConfig {
    /// The calibrated steady-state cell: a 256 MiB host (65 536 frames)
    /// of 8 MiB microVMs (2 048 pages, 32 fit uncommitted), 20-second
    /// mean lifetimes, and an arrival rate that holds the host around
    /// 85 % of its *physical* capacity — so any overcommit above 1.0 is
    /// genuinely exercised.
    pub fn steady(strategy: ProvisionStrategy, overcommit: f64) -> Self {
        let mean_lifetime = SimDuration::from_secs(20);
        CellConfig {
            host_frames: 65_536,
            vm_pages: 2_048,
            overcommit,
            strategy,
            warm_pool: 8,
            min_resident: 512,
            workload: WorkloadConfig {
                arrival_rate: 32.0 * 0.85 / mean_lifetime.as_secs_f64(),
                mean_lifetime,
                diurnal_amplitude: 0.3,
                diurnal_period: SimDuration::from_secs(600),
                pair_fraction: 0.0,
            },
            horizon: SimDuration::from_secs(1_200),
            seed: 2007,
        }
    }

    /// A small burst cell for golden tests: a 64-frame-per-VM image on a
    /// host that fits 16, hammered by a ~200-VM burst (3.4 arrivals/s
    /// over a 60 s horizon).
    pub fn burst(strategy: ProvisionStrategy, overcommit: f64) -> Self {
        let mean_lifetime = SimDuration::from_secs(10);
        CellConfig {
            host_frames: 1_024,
            vm_pages: 64,
            overcommit,
            strategy,
            warm_pool: 4,
            min_resident: 16,
            workload: WorkloadConfig {
                arrival_rate: 3.4,
                mean_lifetime,
                diurnal_amplitude: 0.0,
                diurnal_period: SimDuration::from_secs(600),
                pair_fraction: 0.0,
            },
            horizon: SimDuration::from_secs(60),
            seed: 2007,
        }
    }

    /// Resident-VM admission cap implied by the overcommit ratio.
    pub fn admission_cap(&self) -> usize {
        let physical = self.host_frames / self.vm_pages;
        (physical as f64 * self.overcommit).floor() as usize
    }

    /// Validates the shape, returning a message for the first problem.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.vm_pages == 0 {
            return Err("cell: vm_pages must be positive".into());
        }
        if self.host_frames < self.vm_pages {
            return Err(format!(
                "cell: host_frames {} cannot fit one {}-page VM",
                self.host_frames, self.vm_pages
            ));
        }
        if !(1.0..=8.0).contains(&self.overcommit) {
            return Err(format!(
                "cell: overcommit {} outside [1, 8]",
                self.overcommit
            ));
        }
        if self.min_resident == 0 || self.min_resident > self.vm_pages {
            return Err(format!(
                "cell: min_resident {} outside [1, vm_pages {}]",
                self.min_resident, self.vm_pages
            ));
        }
        if self.workload.arrival_rate <= 0.0 {
            return Err("cell: arrival rate must be positive".into());
        }
        if !(0.0..1.0).contains(&self.workload.diurnal_amplitude) {
            return Err(format!(
                "cell: diurnal amplitude {} outside [0, 1)",
                self.workload.diurnal_amplitude
            ));
        }
        if self.horizon.is_zero() {
            return Err("cell: horizon must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_roundtrip() {
        for s in ProvisionStrategy::ALL {
            assert_eq!(ProvisionStrategy::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(ProvisionStrategy::parse("tepid"), None);
    }

    #[test]
    fn presets_validate_and_cap_scales_with_overcommit() {
        for s in ProvisionStrategy::ALL {
            let c1 = CellConfig::steady(s, 1.0);
            let c2 = CellConfig::steady(s, 1.5);
            c1.validate().unwrap();
            c2.validate().unwrap();
            assert_eq!(c1.admission_cap(), 32);
            assert_eq!(c2.admission_cap(), 48);
            CellConfig::burst(s, 1.5).validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut c = CellConfig::steady(ProvisionStrategy::Cold, 1.0);
        c.overcommit = 0.5;
        assert!(c.validate().unwrap_err().contains("overcommit"));
        let mut c = CellConfig::steady(ProvisionStrategy::Cold, 1.0);
        c.min_resident = c.vm_pages + 1;
        assert!(c.validate().unwrap_err().contains("min_resident"));
        let mut c = CellConfig::steady(ProvisionStrategy::Cold, 1.0);
        c.host_frames = 16;
        assert!(c.validate().unwrap_err().contains("host_frames"));
    }
}
