//! The cell event loop: arrivals, provisioning, departures.
//!
//! A [`CellSimulation`] merges the arrival stream from a
//! [`WorkloadReader`] with a departure heap and
//! processes events in strict time order on one thread — the run is a
//! pure function of [`CellConfig`], so any two runs (and any `--jobs`
//! split of a sweep) produce byte-identical reports and event logs.
//!
//! Every resident microVM is backed by a real [`P2mTable`] on the shared
//! [`MachineMemory`], with a [`BalloonController`] enforcing the floor and
//! the freeze fence. Parked (warm-pool) VMs keep their image frozen in
//! place — exactly the paper's frozen-domain state — so the balloon's
//! `Ok(0)` refusal on frozen controllers is invariant I8 operating in the
//! large, and eviction is the only path that releases a parked image.
//!
//! Cold-start latency is the simulated span from arrival to VM start:
//! queue wait (if the arrival had to wait for frames) plus the closed-form
//! provisioning work below. The closed forms are calibrated against
//! published microVM numbers (Firecracker-class cold boot ≈ 150 ms; warm
//! reload dominated by per-page digest validation, §5.2 of the paper).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use rh_memory::balloon::BalloonController;
use rh_memory::frame::Pfn;
use rh_memory::machine::MachineMemory;
use rh_memory::p2m::P2mTable;
use rh_obs::{Event, EventLog};
use rh_sim::histogram::LatencyHistogram;
use rh_sim::rng::SimRng;
use rh_sim::time::{SimDuration, SimTime};

use rh_fleet::workload::SyntheticWorkload;
use rh_fleet::WorkloadReader;

use crate::config::{CellConfig, ProvisionStrategy};

/// Cold provision: image build + boot, before the per-page fill.
const COLD_BASE_US: u64 = 150_000;
/// Cold provision: per-page image fill.
const COLD_FILL_US_PER_PAGE: u64 = 2;
/// Warm revive: fixed quick-reload cost (device re-attach, reconnect).
const WARM_BASE_US: u64 = 15_000;
/// Warm revive: pages validated per microsecond (digest re-check).
const WARM_VALIDATE_PAGES_PER_US: u64 = 5;
/// Balloon reclaim: fixed cost per pressure episode.
const RECLAIM_BASE_US: u64 = 5_000;
/// Balloon reclaim: per-page cost (guest free + unmap + release).
const RECLAIM_US_PER_PAGE: u64 = 1;
/// Balloon deflate: per-page cost (allocate + map + zero).
const DEFLATE_US_PER_PAGE: u64 = 1;
/// Evicting one parked VM (release its frozen image).
const EVICT_US: u64 = 2_000;

/// A resident microVM's memory state.
#[derive(Debug)]
struct Vm {
    p2m: P2mTable,
    ctl: BalloonController,
}

/// How a provision attempt got its frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BootKind {
    Cold,
    Warm,
}

/// Aggregated outcome of one cell run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cold-start latency (queue wait + provisioning work) per started VM.
    pub cold_start: LatencyHistogram,
    /// VMs started, total.
    pub provisioned: u64,
    /// Starts served from the warm pool.
    pub warm_hits: u64,
    /// Starts built from scratch.
    pub cold_boots: u64,
    /// Arrivals that had to wait for frames.
    pub queued: u64,
    /// Arrivals dropped at the admission cap.
    pub rejected: u64,
    /// Parked VMs evicted for their frames.
    pub evicted: u64,
    /// Pages taken by balloon reclaim.
    pub reclaimed_pages: u64,
    /// Pages given back by deflate-on-demand.
    pub deflated_pages: u64,
    /// Highest simultaneous resident (active + parked) VM count.
    pub peak_resident: usize,
    /// Time-weighted mean of allocated frames over the run, as a fraction
    /// of machine frames.
    pub mean_utilization: f64,
    /// VMs that ran to completion.
    pub completed: u64,
    /// Events processed (arrivals + departures), the throughput unit.
    pub events: u64,
}

impl CellReport {
    /// P50 cold-start (log-bucket upper bound); zero when nothing started.
    pub fn p50(&self) -> SimDuration {
        self.cold_start
            .percentile(50.0)
            .unwrap_or(SimDuration::ZERO)
    }

    /// P99 cold-start (log-bucket upper bound); zero when nothing started.
    pub fn p99(&self) -> SimDuration {
        self.cold_start
            .percentile(99.0)
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The serverless cell: one overcommitted host, one arrival stream, one
/// provisioning strategy.
#[derive(Debug)]
pub struct CellSimulation {
    cfg: CellConfig,
    ram: MachineMemory,
    /// Running VMs by id (iteration order = reclaim order).
    active: BTreeMap<u64, Vm>,
    /// Warm pool, oldest first; images frozen in place.
    parked: VecDeque<Vm>,
    /// Arrivals waiting for frames: (vm id, arrived, lifetime).
    waiting: VecDeque<(u64, SimTime, SimDuration)>,
    /// Departure events: (time, seq, vm id).
    departures: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    seq: u64,
    next_vm: u64,
    /// Utilization integral state.
    last_at: SimTime,
    util_area: f64,
    report: CellReport,
}

impl CellSimulation {
    /// Builds a cell from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`CellConfig::validate`]'s message for a bad shape.
    pub fn new(cfg: CellConfig) -> Result<Self, String> {
        cfg.validate()?;
        let ram = MachineMemory::new(cfg.host_frames);
        Ok(CellSimulation {
            cfg,
            ram,
            active: BTreeMap::new(),
            parked: VecDeque::new(),
            waiting: VecDeque::new(),
            departures: BinaryHeap::new(),
            seq: 0,
            next_vm: 0,
            last_at: SimTime::ZERO,
            util_area: 0.0,
            report: CellReport {
                cold_start: LatencyHistogram::new(),
                provisioned: 0,
                warm_hits: 0,
                cold_boots: 0,
                queued: 0,
                rejected: 0,
                evicted: 0,
                reclaimed_pages: 0,
                deflated_pages: 0,
                peak_resident: 0,
                mean_utilization: 0.0,
                completed: 0,
                events: 0,
            },
        })
    }

    /// Runs to completion with event logging disabled.
    ///
    /// # Errors
    ///
    /// Propagates memory/P2M failures as messages (none occur for a
    /// validated config; the plumbing keeps the mechanism honest).
    pub fn run(self) -> Result<CellReport, String> {
        let mut log = EventLog::disabled();
        self.run_with_log(&mut log)
    }

    /// Runs to completion, emitting the typed event stream into `log`.
    ///
    /// # Errors
    ///
    /// Propagates memory/P2M failures as messages.
    pub fn run_with_log(mut self, log: &mut EventLog) -> Result<CellReport, String> {
        let rng = SimRng::from_seed(self.cfg.seed);
        let mut workload = SyntheticWorkload::new(self.cfg.workload, self.cfg.horizon, rng.fork(1));
        let mut pending = workload.next_arrival();
        loop {
            // Next event: earlier of the pending arrival and the top
            // departure; arrivals win ties (they carry the earlier seq).
            let next_depart = self.departures.peek().map(|Reverse(k)| *k);
            match (pending, next_depart) {
                (Some(a), d) if d.is_none_or(|(t, _, _)| a.at <= t) => {
                    self.advance_clock(a.at);
                    self.on_arrival(a.at, a.lifetime, log)?;
                    pending = workload.next_arrival();
                }
                (_, Some((t, _, id))) => {
                    self.departures.pop();
                    self.advance_clock(t);
                    self.on_departure(t, id, log)?;
                }
                // `(Some, None)` is captured by the first arm (its guard
                // is vacuously true with no departure pending).
                _ => break,
            }
        }
        let elapsed = self.last_at.as_secs_f64();
        self.report.mean_utilization = if elapsed > 0.0 {
            self.util_area / (elapsed * self.cfg.host_frames as f64)
        } else {
            0.0
        };
        Ok(self.report)
    }

    /// Accrues the utilization integral up to `now`.
    fn advance_clock(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.last_at).as_secs_f64();
        self.util_area += dt * self.ram.allocated_frames() as f64;
        self.last_at = now;
    }

    fn note_resident(&mut self) {
        let resident = self.active.len() + self.parked.len();
        self.report.peak_resident = self.report.peak_resident.max(resident);
    }

    fn on_arrival(
        &mut self,
        at: SimTime,
        lifetime: SimDuration,
        log: &mut EventLog,
    ) -> Result<(), String> {
        self.report.events += 1;
        let id = self.next_vm;
        self.next_vm += 1;
        if self.active.len() + self.waiting.len() >= self.cfg.admission_cap() {
            self.report.rejected += 1;
            log.emit(at, Event::note("cell", format!("vm{id} rejected at cap")));
            return Ok(());
        }
        if self.try_provision(at, id, at, lifetime, log)? {
            return Ok(());
        }
        self.report.queued += 1;
        self.waiting.push_back((id, at, lifetime));
        log.emit(at, Event::note("cell", format!("vm{id} queued for frames")));
        Ok(())
    }

    fn on_departure(&mut self, at: SimTime, id: u64, log: &mut EventLog) -> Result<(), String> {
        self.report.events += 1;
        let Some(mut vm) = self.active.remove(&id) else {
            return Err(format!("cell: departure for unknown vm{id}"));
        };
        self.report.completed += 1;
        let parkable =
            self.cfg.strategy != ProvisionStrategy::Cold && self.parked.len() < self.cfg.warm_pool;
        if parkable {
            vm.ctl.freeze();
            self.parked.push_back(vm);
            log.emit(at, Event::note("cell", format!("vm{id} parked warm")));
        } else {
            self.ram
                .release(&vm.p2m.machine_ranges())
                .map_err(|e| format!("cell: release on depart: {e}"))?;
            log.emit(at, Event::note("cell", format!("vm{id} departed")));
        }
        // Frames (or a pool slot) freed — retry the queue head-of-line.
        while let Some(&(wid, arrived, life)) = self.waiting.front() {
            if !self.try_provision(at, wid, arrived, life, log)? {
                break;
            }
            self.waiting.pop_front();
        }
        Ok(())
    }

    /// Tries to start `id` now; true on success. The cold-start sample is
    /// `at - arrived` (queue wait) plus the provisioning work.
    fn try_provision(
        &mut self,
        at: SimTime,
        id: u64,
        arrived: SimTime,
        lifetime: SimDuration,
        log: &mut EventLog,
    ) -> Result<bool, String> {
        let (vm, work, kind) = match self.acquire(id, log, at)? {
            Some(x) => x,
            None => return Ok(false),
        };
        let wait = at.saturating_duration_since(arrived);
        let latency = wait + work;
        self.report.cold_start.record(latency);
        self.report.provisioned += 1;
        match kind {
            BootKind::Warm => self.report.warm_hits += 1,
            BootKind::Cold => self.report.cold_boots += 1,
        }
        let started = at + work;
        self.active.insert(id, vm);
        self.note_resident();
        self.seq += 1;
        self.departures
            .push(Reverse((started + lifetime, self.seq, id)));
        log.emit(
            started,
            Event::note(
                "cell",
                format!(
                    "vm{id} {} start latency={latency}",
                    match kind {
                        BootKind::Warm => "warm",
                        BootKind::Cold => "cold",
                    }
                ),
            ),
        );
        Ok(true)
    }

    /// Obtains memory for one VM: warm-pool hit, or frames via eviction /
    /// balloon reclaim / plain allocation. `None` means "must wait".
    fn acquire(
        &mut self,
        id: u64,
        log: &mut EventLog,
        at: SimTime,
    ) -> Result<Option<(Vm, SimDuration, BootKind)>, String> {
        // Warm hit: revive the oldest parked image.
        if let Some(mut vm) = self.parked.pop_front() {
            vm.ctl.thaw();
            let resident = vm.p2m.total_pages();
            let mut us = WARM_BASE_US + resident / WARM_VALIDATE_PAGES_PER_US;
            // Grow a squeezed image back toward spec — partial is fine,
            // the VM starts with what the machine can spare right now.
            if resident < self.cfg.vm_pages {
                let got = vm
                    .ctl
                    .deflate_on_demand(&mut vm.p2m, &mut self.ram, self.cfg.vm_pages - resident)
                    .map_err(|e| format!("cell: revive deflate: {e}"))?;
                self.report.deflated_pages += got;
                us += got * DEFLATE_US_PER_PAGE;
            }
            return Ok(Some((vm, SimDuration::from_micros(us), BootKind::Warm)));
        }
        let mut us = COLD_BASE_US + self.cfg.vm_pages * COLD_FILL_US_PER_PAGE;
        // Make room: evict parked images first (all strategies with a
        // pool), then squeeze running VMs (balloon strategy only).
        while self.ram.free_frames() < self.cfg.vm_pages {
            let Some(victim) = self.parked.pop_front() else {
                break;
            };
            self.ram
                .release(&victim.p2m.machine_ranges())
                .map_err(|e| format!("cell: evict release: {e}"))?;
            self.report.evicted += 1;
            us += EVICT_US;
            log.emit(
                at,
                Event::note("cell", format!("evicted parked image for vm{id}")),
            );
        }
        if self.ram.free_frames() < self.cfg.vm_pages
            && self.cfg.strategy == ProvisionStrategy::BalloonReclaim
        {
            let mut want = self.cfg.vm_pages - self.ram.free_frames();
            let mut took = 0;
            for vm in self.active.values_mut() {
                if want == 0 {
                    break;
                }
                let got = vm
                    .ctl
                    .reclaim_under_pressure(&mut vm.p2m, &mut self.ram, want)
                    .map_err(|e| format!("cell: reclaim: {e}"))?;
                want -= got;
                took += got;
            }
            if took > 0 {
                self.report.reclaimed_pages += took;
                us += RECLAIM_BASE_US + took * RECLAIM_US_PER_PAGE;
                log.emit(
                    at,
                    Event::note("cell", format!("reclaimed {took} pages for vm{id}")),
                );
            }
        }
        if self.ram.free_frames() < self.cfg.vm_pages {
            return Ok(None);
        }
        let ranges = self
            .ram
            .allocate(self.cfg.vm_pages)
            .map_err(|e| format!("cell: allocate: {e}"))?;
        let mut p2m = P2mTable::new();
        p2m.map_contiguous(Pfn(0), &ranges)
            .map_err(|e| format!("cell: map: {e}"))?;
        let vm = Vm {
            p2m,
            ctl: BalloonController::new(self.cfg.min_resident),
        };
        Ok(Some((vm, SimDuration::from_micros(us), BootKind::Cold)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(strategy: ProvisionStrategy, overcommit: f64) -> CellReport {
        // lint:allow(unwrap-panic): test helper
        CellSimulation::new(CellConfig::steady(strategy, overcommit))
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn steady_cell_serves_the_workload() {
        let r = run(ProvisionStrategy::Cold, 1.0);
        assert!(r.provisioned > 1_000, "{} provisioned", r.provisioned);
        assert_eq!(r.provisioned, r.completed);
        assert_eq!(r.warm_hits, 0);
        assert!(r.mean_utilization > 0.5, "util {}", r.mean_utilization);
        assert!(r.peak_resident <= 32);
    }

    #[test]
    fn warm_pool_serves_hits_and_balloon_reclaims() {
        let w = run(ProvisionStrategy::Warm, 1.5);
        assert!(w.warm_hits > 0, "no warm hits");
        let b = run(ProvisionStrategy::BalloonReclaim, 1.5);
        assert!(b.reclaimed_pages > 0, "no reclaim at 1.5x overcommit");
        assert!(b.peak_resident > 32, "overcommit never exceeded physical");
    }

    #[test]
    fn balloon_beats_cold_on_p99_at_overcommit() {
        let cold = run(ProvisionStrategy::Cold, 1.5);
        let balloon = run(ProvisionStrategy::BalloonReclaim, 1.5);
        assert!(
            balloon.p99() < cold.p99(),
            "balloon p99 {} !< cold p99 {}",
            balloon.p99(),
            cold.p99()
        );
        assert!(balloon.rejected <= cold.rejected);
    }

    #[test]
    fn runs_replay_byte_identically_with_logs() {
        let go = || {
            let mut log = EventLog::new();
            // lint:allow(unwrap-panic): test closure
            let r = CellSimulation::new(CellConfig::burst(ProvisionStrategy::BalloonReclaim, 1.5))
                .unwrap()
                .run_with_log(&mut log)
                .unwrap();
            (r, log.render())
        };
        let (r1, l1) = go();
        let (r2, l2) = go();
        assert_eq!(r1, r2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn frozen_parked_images_survive_reclaim_pressure() {
        let r = run(ProvisionStrategy::BalloonReclaim, 1.5);
        // Reclaim happened while a warm pool existed; the accounting
        // stayed exact (every page is somewhere): peak resident bounded
        // by the cap, and the run drained cleanly.
        assert!(r.peak_resident <= 48);
        assert_eq!(r.provisioned, r.completed);
    }
}
