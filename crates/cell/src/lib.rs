//! # rh-cell — a serverless microVM cell on an overcommitted host
//!
//! The paper's warm-VM reboot (§4) rejuvenates a consolidated server
//! without losing its VMs; serverless platforms face the same trade from
//! the other side — thousands of tiny, short-lived function VMs whose
//! *cold-start* latency is the SLA. This crate drives that regime against
//! real memory mechanism: every resident microVM holds a
//! [`rh_memory::P2mTable`] on one shared [`rh_memory::MachineMemory`],
//! squeezed by a [`rh_memory::BalloonController`] when the host is
//! overcommitted (pseudo-physical exceeding machine memory, the §4.1
//! ballooning regime).
//!
//! Three provisioning strategies compete
//! ([`ProvisionStrategy`]):
//!
//! | strategy  | on departure       | on pressure                       |
//! |-----------|--------------------|-----------------------------------|
//! | `cold`    | free the image     | queue arrivals until frames free  |
//! | `warm`    | park image frozen  | evict parked images, then queue   |
//! | `balloon` | park image frozen  | evict, then squeeze running VMs   |
//!
//! The cell measures cold-start latency P50/P99 (via
//! [`rh_obs::LatencyHistogram`]), memory utilization, and rejuvenation
//! cost (warm hits, pages reclaimed). The balloon/warm-reboot interaction
//! is protected by two invariants proved exhaustively in `rh-lint
//! balloon`: **I8** (a frozen image is never balloon-reclaimed while a
//! warm reboot is in flight) and **I9** (deflate never maps a frame whose
//! digest was not validated). See DESIGN.md §17.
//!
//! Arrivals come from [`rh_fleet::workload`] — the same Poisson/diurnal
//! [`WorkloadReader`](rh_fleet::WorkloadReader) machinery the fleet uses,
//! so cell and fleet runs are replayable from the same trace files.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod sim;

pub use config::{CellConfig, ProvisionStrategy};
pub use sim::{CellReport, CellSimulation};
