//! Tier-1 determinism contract for the parallel sweep executor
//! (DESIGN.md §10): the same sweep must produce *byte-identical* results at
//! any worker count, and a panicking point must surface as a failed named
//! point instead of tearing the run down.

use rh_bench::exec::{PointError, Sweep, DEFAULT_SEED};
use rh_guest::services::ServiceKind;

/// Renders fig5 rows to the exact text the `fig5` binary prints, so the
/// comparison covers formatting, not just float equality.
fn fig5_text(jobs: usize) -> String {
    let rows = rh_bench::fig45::fig5(1..=5, jobs);
    rh_bench::fig45::render("fig5", "n", &rows).to_string()
}

fn fig6_text(jobs: usize) -> String {
    let rows = rh_bench::fig6::sweep(ServiceKind::Ssh, 1..=4, jobs);
    rh_bench::fig6::render("fig6a", &rows).to_string()
}

#[test]
fn parallel_sweeps_are_byte_identical_to_sequential() {
    assert_eq!(fig5_text(1), fig5_text(4));
    assert_eq!(fig6_text(1), fig6_text(4));
}

#[test]
fn results_come_back_in_submission_order() {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for i in 0..16u64 {
        // Larger indices do less work, so with several workers the later
        // points *finish* first; assembly order must not care.
        sweep.point(format!("point/{i}"), move |mut rng| {
            let mut acc = 0u64;
            for _ in 0..(16 - i) * 1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            (i, acc)
        });
    }
    let results = sweep.run(4);
    let order: Vec<u64> = results
        .iter()
        .map(|r| r.value().expect("no point panicked").0)
        .collect();
    assert_eq!(order, (0..16).collect::<Vec<u64>>());
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.name, format!("point/{i}"));
    }
}

#[test]
fn panicking_point_is_reported_as_failed_named_point() {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    sweep.point("good/before", |_rng| 1u32);
    sweep.point("bad/boom", |_rng| -> u32 { panic!("injected failure") });
    sweep.point("good/after", |_rng| 3u32);
    let results = sweep.run(2);
    assert_eq!(results.len(), 3);

    assert_eq!(results[0].name, "good/before");
    assert_eq!(results[0].value(), Some(&1));

    assert_eq!(results[1].name, "bad/boom");
    match &results[1].outcome {
        Err(PointError::Panicked(msg)) => {
            assert!(
                msg.contains("injected failure"),
                "panic message lost: {msg}"
            );
        }
        other => panic!("expected Panicked, got {other:?}"),
    }

    // The neighbouring points still ran to completion.
    assert_eq!(results[2].name, "good/after");
    assert_eq!(results[2].value(), Some(&3));
}

#[test]
fn per_point_metrics_snapshots_merge_jobs_invariantly() {
    use rh_obs::Metrics;
    use rh_sim::time::SimDuration;

    // The rh-obs aggregation pattern under the executor: every point
    // accumulates into a private registry and returns a snapshot; the
    // caller folds the snapshots in submission order. The folded registry
    // must not depend on the worker count — counters add, timers merge.
    fn merged(jobs: usize) -> Metrics {
        let mut sweep = Sweep::new(DEFAULT_SEED);
        for i in 0..12u64 {
            sweep.point(format!("metrics/{i}"), move |mut rng| {
                let mut m = Metrics::new();
                for _ in 0..=(i % 5) {
                    m.inc("points.work_items");
                }
                m.record(
                    "points.latency",
                    SimDuration::from_micros(rng.below(1_000_000)),
                );
                m.snapshot()
            });
        }
        let mut total = Metrics::new();
        for r in sweep.run(jobs) {
            total.merge(r.value().expect("no point panicked"));
        }
        total
    }

    let seq = merged(1);
    let par = merged(4);
    assert_eq!(seq, par, "metrics registry diverged across worker counts");
    assert_eq!(seq.render(), par.render());
    assert_eq!(
        seq.counter("points.work_items"),
        (0..12u64).map(|i| i % 5 + 1).sum::<u64>()
    );
    assert_eq!(
        seq.timer("points.latency").expect("timer exists").count(),
        12
    );
}
