//! The end-to-end golden test for the serverless cell (DESIGN.md §17):
//! a fixed-seed ~200-VM burst on one small overcommitted host must
//! produce the exact typed `rh_obs` event stream and the exact
//! cold-start percentiles, byte for byte, on every run. Any change to
//! arrival sampling, balloon accounting, provisioning order, or
//! histogram bucketing shows up here first — update the pins only with
//! a deliberate behavior change.

use rh_cell::{CellConfig, CellReport, CellSimulation, ProvisionStrategy};
use rh_obs::EventLog;
use rh_sim::time::SimDuration;

/// One full burst run (seed 2007, 1.5× overcommit) with its event stream.
fn burst_run(strategy: ProvisionStrategy) -> (CellReport, String) {
    let cfg = CellConfig::burst(strategy, 1.5);
    let mut log = EventLog::new();
    let report = CellSimulation::new(cfg)
        .expect("burst config is valid")
        .run_with_log(&mut log)
        .expect("burst run completes");
    (report, log.render())
}

/// The opening of the balloon-reclaim event stream, pinned verbatim.
/// Start events are stamped at boot *completion* (arrival + work), so
/// the stream is in processing order, not timestamp order — vm2's
/// departure at 2.419 s lands after vm8's 2.439 s boot completion.
const BALLOON_STREAM_HEAD: &str = "\
[    0.296s] cell     vm0 cold start latency=0.150s
[    0.393s] cell     vm1 cold start latency=0.150s
[    1.419s] cell     vm2 cold start latency=0.150s
[    1.595s] cell     vm3 cold start latency=0.150s
[    1.624s] cell     vm4 cold start latency=0.150s
[    1.921s] cell     vm5 cold start latency=0.150s
[    1.964s] cell     vm6 cold start latency=0.150s
[    2.295s] cell     vm7 cold start latency=0.150s
[    2.439s] cell     vm8 cold start latency=0.150s
[    2.419s] cell     vm2 parked warm
[    3.018s] cell     vm9 warm start latency=0.015s
[    3.323s] cell     vm10 cold start latency=0.150s
";

#[test]
fn balloon_burst_event_stream_and_percentiles_are_golden() {
    let (r, stream) = burst_run(ProvisionStrategy::BalloonReclaim);

    // The exact ledger of the 204-arrival burst against the 24-VM cap.
    assert_eq!(r.provisioned, 132, "{r:?}");
    assert_eq!(r.warm_hits, 107);
    assert_eq!(r.cold_boots, 25);
    assert_eq!(r.queued, 0, "balloon reclaim never leaves a VM waiting");
    assert_eq!(r.rejected, 71);
    assert_eq!(r.evicted, 0);
    assert_eq!(r.reclaimed_pages, 576);
    assert_eq!(r.deflated_pages, 16);
    assert_eq!(r.peak_resident, 24, "exactly at the 1.5x admission cap");
    assert_eq!(r.completed, r.provisioned, "burst drains completely");
    assert_eq!(r.events, 335);

    // Exact percentiles (log-bucket upper bounds): P50 is a warm hit
    // (16.4 ms bucket), P99 a cold boot (262 ms bucket).
    assert_eq!(r.p50(), SimDuration::from_micros(16_384));
    assert_eq!(r.p99(), SimDuration::from_micros(262_144));
    assert_eq!(r.cold_start.count(), r.provisioned);

    // The typed event stream, line for line at the head and in total.
    assert!(
        stream.starts_with(BALLOON_STREAM_HEAD),
        "stream head drifted:\n{}",
        stream.lines().take(12).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(stream.lines().count(), 344);

    // End to end deterministic: a second full run is equal, report and
    // stream byte for byte.
    let (again, stream_again) = burst_run(ProvisionStrategy::BalloonReclaim);
    assert_eq!(r, again);
    assert_eq!(stream, stream_again);
}

#[test]
fn cold_burst_pays_the_queue_and_pins_its_own_goldens() {
    let (r, stream) = burst_run(ProvisionStrategy::Cold);

    // Same arrival trace (same seed), different ledger: no warm pool,
    // so pressure turns into queueing and seconds-scale tail latency.
    assert_eq!(r.provisioned, 95);
    assert_eq!(r.warm_hits, 0);
    assert_eq!(r.queued, 76);
    assert_eq!(r.rejected, 108);
    assert_eq!(r.reclaimed_pages, 0);
    assert_eq!(r.peak_resident, 16, "cold caps out at physical slots");
    assert_eq!(r.p50(), SimDuration::from_micros(8_388_608));
    assert_eq!(r.p99(), SimDuration::from_micros(16_777_216));
    assert_eq!(stream.lines().count(), 374);

    // The acceptance contrast on the identical workload: balloon beats
    // cold on P99 cold-start by ~64x at 1.5x overcommit.
    let (balloon, _) = burst_run(ProvisionStrategy::BalloonReclaim);
    assert!(balloon.p99() < r.p99());
    assert!(balloon.rejected < r.rejected);
}
