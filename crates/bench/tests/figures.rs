//! End-to-end coverage for the figure pipelines that previously had no
//! integration tests: Fig. 8 (throughput before/after reboot), Fig. 9
//! (cluster throughput under rolling rejuvenation), §5.2 (quick reload
//! vs hardware reset) and §5.3 (availability). Each test drives the full
//! `run()` pipeline on a reduced range and pins the paper's headline
//! numbers, then re-runs it to confirm the pipeline is deterministic
//! end to end (byte-identical rendered report).

use rh_vmm::config::RebootStrategy;

#[test]
fn fig8_cold_degradations_match_paper_warm_loses_nothing() {
    // Reduced corpus (1 200 files instead of 10 000); the degradation is a
    // rate ratio, so the headline fractions are corpus-size-independent.
    let cold = rh_bench::fig8::run(RebootStrategy::Cold, 1_200);
    let warm = rh_bench::fig8::run(RebootStrategy::Warm, 1_200);

    let file_deg = cold.file_read.degradation();
    assert!(
        (file_deg - 0.91).abs() < 0.03,
        "cold file-read degradation {file_deg:.2} (paper: 0.91)"
    );
    let web_deg = cold.web.degradation();
    assert!(
        (web_deg - 0.69).abs() < 0.08,
        "cold web degradation {web_deg:.2} (paper: 0.69)"
    );
    assert!(
        warm.file_read.degradation().abs() < 0.02,
        "warm file-read degradation {:.3} (paper: none)",
        warm.file_read.degradation()
    );
    assert!(
        warm.web.degradation().abs() < 0.05,
        "warm web degradation {:.3} (paper: none)",
        warm.web.degradation()
    );

    // The whole pipeline is deterministic: a second run is equal, field
    // for field (Fig8Result is PartialEq over every measured float).
    assert_eq!(cold, rh_bench::fig8::run(RebootStrategy::Cold, 1_200));
}

#[test]
fn fig9_reduced_cluster_preserves_section_6_ordering() {
    // 3 hosts × 3 VMs instead of the paper's 11-VM hosts: the §6 ordering
    // (warm < cold < migration loss) and the ~17-minute evacuation
    // estimate are configuration-independent headlines.
    let r = rh_bench::fig9::run(3, 215.0, 3);
    assert!(
        r.warm_loss < r.cold_loss,
        "warm loss {} !< cold loss {}",
        r.warm_loss,
        r.cold_loss
    );
    assert!(
        r.cold_loss < r.migration_loss,
        "cold loss {} !< migration loss {}",
        r.cold_loss,
        r.migration_loss
    );
    assert!(
        (r.evacuation_secs / 60.0 - 17.0).abs() < 1.5,
        "evacuation {:.1} min (paper: ~17)",
        r.evacuation_secs / 60.0
    );

    // The live rolling cross-check carries the typed cluster timeline:
    // one HostDown/HostUp pair per rejuvenated host, and matching stats.
    assert!(r.rolling_warm.service_never_fully_down);
    assert_eq!(r.rolling_warm.events.len(), 2 * 3);
    assert_eq!(r.rolling_warm.stats.counter("cluster.reboots.warm"), 3);
    assert_eq!(r.rolling_cold.stats.counter("cluster.reboots.cold"), 3);

    // Rendered report is byte-identical on a second full run.
    let text = rh_bench::fig9::render(&r);
    let again = rh_bench::fig9::run(3, 215.0, 3);
    assert_eq!(text, rh_bench::fig9::render(&again));
}

#[test]
fn sec52_quick_reload_headline_numbers() {
    let r = rh_bench::sec52::run();
    assert!(
        (r.quick_reload - 11.0).abs() < 1.0,
        "quick reload {:.1} s (paper: ~11)",
        r.quick_reload
    );
    assert!(
        (r.hardware_reset - 59.0).abs() < 6.0,
        "hardware reset {:.1} s (paper: ~59)",
        r.hardware_reset
    );
    assert!(
        (r.saving() - 48.0).abs() < 7.0,
        "saving {:.1} s (paper: ~48)",
        r.saving()
    );
    let text = rh_bench::sec52::render(&r);
    assert!(text.contains("quick reload"));
    assert_eq!(text, rh_bench::sec52::render(&rh_bench::sec52::run()));
}

#[test]
fn sec53_availability_gives_warm_four_nines() {
    use rh_rejuv::availability::nines;

    let r = rh_bench::sec53::run();
    assert!(
        (r.os_downtime - 33.6).abs() < 4.0,
        "OS rejuvenation downtime {:.1} s (paper: 33.6)",
        r.os_downtime
    );
    // §5.3's headline: the warm-VM reboot reaches four nines where cold
    // and saved stay at three.
    assert_eq!(nines(r.comparison.warm), 4, "warm {}", r.comparison.warm);
    assert_eq!(nines(r.comparison.cold), 3, "cold {}", r.comparison.cold);
    assert_eq!(nines(r.comparison.saved), 3, "saved {}", r.comparison.saved);
    assert!(r.comparison.warm > r.comparison.cold);
    assert!(r.comparison.cold > r.comparison.saved);
    assert!(rh_bench::sec53::render(&r).contains("four 9s"));
}
