//! Criterion benches, one group per paper table/figure.
//!
//! Each bench runs the figure's underlying simulated experiment at a
//! reduced scale (the `--bin fig*` binaries run the full sweeps), so the
//! bench suite doubles as a regression harness for both the *results* (the
//! returned durations are asserted against the paper's shape) and the
//! *performance* of the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use rh_guest::services::ServiceKind;
use rh_vmm::config::RebootStrategy;
use rh_vmm::harness::booted_host;

fn bench_fig45_task_times(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fig5_task_times");
    g.sample_size(10);
    g.bench_function("measure_tasks_3gib_vm", |b| {
        b.iter(|| {
            let t = rh_bench::fig45::measure_tasks(|| {
                rh_bench::util::booted_single_vm(3, ServiceKind::Ssh)
            });
            assert!(t.onmem_suspend < 0.2);
            assert!(t.save > 3.0 * t.onmem_resume);
            t
        })
    });
    g.bench_function("measure_tasks_4_vms", |b| {
        b.iter(|| {
            let t =
                rh_bench::fig45::measure_tasks(|| rh_bench::util::booted_n_vms(4, ServiceKind::Ssh));
            assert!(t.boot > 10.0);
            t
        })
    });
    g.finish();
}

fn bench_fig6_downtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_downtime");
    g.sample_size(10);
    for strategy in [
        RebootStrategy::Warm,
        RebootStrategy::Cold,
        RebootStrategy::Saved,
    ] {
        g.bench_function(format!("reboot_{strategy}_5vms"), |b| {
            b.iter(|| {
                let mut sim = booted_host(5, ServiceKind::Ssh);
                let report = sim.reboot_and_wait(strategy);
                assert!(report.corrupted.is_empty());
                report.mean_downtime()
            })
        });
    }
    g.finish();
}

fn bench_sec52_quick_reload(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec52_quick_reload");
    g.sample_size(10);
    g.bench_function("quick_vs_reset", |b| {
        b.iter(|| {
            let r = rh_bench::sec52::run();
            assert!(r.saving() > 40.0);
            r
        })
    });
    g.finish();
}

fn bench_sec53_availability(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec53_availability");
    g.sample_size(10);
    g.bench_function("os_rejuvenation", |b| {
        b.iter(|| {
            let mut sim = booted_host(3, ServiceKind::Jboss);
            sim.os_reboot_and_wait(rh_vmm::domain::DomainId(1))
        })
    });
    g.finish();
}

fn bench_fig7_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_trace");
    g.sample_size(10);
    g.bench_function("warm_throughput_trace", |b| {
        b.iter(|| {
            let t = rh_bench::fig7::run(RebootStrategy::Warm);
            assert!(t.after_ratio() > 0.9);
            t.steady_before
        })
    });
    g.finish();
}

fn bench_fig8_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_throughput");
    g.sample_size(10);
    g.bench_function("file_read_cold", |b| {
        b.iter(|| {
            let r = rh_bench::fig8::file_read(RebootStrategy::Cold);
            assert!(r.degradation() > 0.8);
            r
        })
    });
    g.bench_function("web_cold_500_files", |b| {
        b.iter(|| {
            let r = rh_bench::fig8::web(RebootStrategy::Cold, 500);
            assert!(r.degradation() > 0.4);
            r
        })
    });
    g.finish();
}

fn bench_sec56_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec56_model_fit");
    g.sample_size(10);
    g.bench_function("three_point_sweep", |b| {
        b.iter(|| {
            let r = rh_bench::sec56::run([1u32, 5, 9].into_iter());
            assert!(r.fitted.saving(11.0, 0.5) > 0.0);
            r.fitted
        })
    });
    g.finish();
}

fn bench_fig9_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_cluster");
    g.sample_size(10);
    g.bench_function("analytic_plus_rolling", |b| {
        b.iter(|| {
            let r = rh_bench::fig9::run(4, 215.0, 3);
            assert!(r.warm_loss < r.cold_loss);
            r.warm_loss
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig45_task_times,
    bench_fig6_downtime,
    bench_sec52_quick_reload,
    bench_sec53_availability,
    bench_fig7_trace,
    bench_fig8_throughput,
    bench_sec56_fit,
    bench_fig9_cluster,
);
criterion_main!(benches);
