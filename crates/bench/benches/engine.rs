//! Micro-benchmarks of the simulation substrate itself: event throughput
//! of the engine and the two contention models (processor-sharing vs FIFO,
//! the DESIGN.md disk-model ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rh_sim::engine::{Scheduler, Simulation, World};
use rh_sim::queue::FifoResource;
use rh_sim::resource::PsResource;
use rh_sim::time::{SimDuration, SimTime};

struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(1), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("event_chain_100k", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(Chain { remaining: 100_000 });
                sim.scheduler_mut().schedule_in(SimDuration::ZERO, ());
                sim
            },
            |mut sim| {
                sim.run_until_idle();
                assert_eq!(sim.world().remaining, 0);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("schedule_cancel_10k", |b| {
        b.iter_batched(
            || Simulation::new(Chain { remaining: 0 }),
            |mut sim| {
                let handles: Vec<_> = (0..10_000)
                    .map(|i| {
                        sim.scheduler_mut()
                            .schedule_at(SimTime::from_micros(i + 1), ())
                    })
                    .collect();
                for h in handles {
                    sim.scheduler_mut().cancel(h);
                }
                sim.run_until_idle();
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The disk-model ablation: drain 11 × 1 GiB transfers through the
/// processor-sharing model (the paper-calibrated disk) vs a FIFO queue.
fn bench_contention_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_ablation");
    const GIB: f64 = (1u64 << 30) as f64;
    g.bench_function("processor_sharing_11_streams", |b| {
        b.iter(|| {
            let mut disk = PsResource::new(85.0e6).with_contention_penalty(0.0518);
            let mut now = SimTime::ZERO;
            for _ in 0..11 {
                disk.submit(now, GIB);
            }
            while let Some(next) = disk.next_completion(now) {
                now = next;
                disk.take_completed(now);
            }
            now
        })
    });
    g.bench_function("fifo_11_streams", |b| {
        b.iter(|| {
            let mut disk = FifoResource::new(1);
            let service = SimDuration::from_secs_f64(GIB / 85.0e6);
            for _ in 0..11 {
                disk.submit(SimTime::ZERO, service);
            }
            let mut last = SimTime::ZERO;
            while let Some(next) = disk.next_completion() {
                last = next;
                disk.take_completed(next);
            }
            last
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_contention_models);
criterion_main!(benches);
