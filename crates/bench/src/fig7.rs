//! Figure 7: the downtime breakdown and web-server throughput trace.
//!
//! 11 VMs; VM 1 runs Apache serving a cached corpus, hammered by an
//! httperf fleet whose 50-request-window throughput is recorded while the
//! VMM reboots. The phase timeline (dom0 shutdown, suspend, quick reload /
//! hardware reset, boots, resume) is superimposed, reproducing the paper's
//! two headline observations:
//!
//! * the warm path keeps serving ~7 s longer (the VMM suspends guests only
//!   *after* dom0 is down),
//! * after a cold reboot throughput stays degraded while the page cache
//!   refills; after a warm reboot it recovers instantly.

use rh_guest::fs::FileSet;
use rh_guest::services::ServiceKind;
use rh_net::httperf::{AccessPattern, HttperfClient};
use rh_sim::series::TimeSeries;
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::config::{HostConfig, RebootStrategy};
use rh_vmm::domain::{DomainId, DomainSpec};
use rh_vmm::harness::HostSim;
use rh_vmm::metrics::PhaseSpan;

/// Web corpus for the 1 GiB VM: 1 200 × 512 KB (fits the page cache).
pub fn fig7_corpus() -> FileSet {
    FileSet::new(1_200, 512 * 1024)
}

/// One strategy's Fig. 7 trace.
#[derive(Debug, Clone)]
pub struct Fig7Trace {
    /// Strategy.
    pub strategy: RebootStrategy,
    /// When the reboot command was issued.
    pub command_at: SimTime,
    /// 50-request-window throughput (req/s) over the whole run.
    pub series: TimeSeries,
    /// Phase timeline of the reboot.
    pub phases: Vec<PhaseSpan>,
    /// Mean steady throughput before the command.
    pub steady_before: f64,
    /// Instant the web server stopped answering.
    pub stopped_at: SimTime,
    /// Instant it answered again.
    pub restored_at: SimTime,
    /// Mean throughput in the 10 s right after restoration.
    pub just_after: f64,
    /// Mean throughput from 60 s after restoration (fully recovered).
    pub recovered: f64,
}

impl Fig7Trace {
    /// Relative throughput right after restoration vs steady state
    /// (1.0 = no degradation).
    pub fn after_ratio(&self) -> f64 {
        self.just_after / self.steady_before
    }
}

/// Runs the Fig. 7 experiment for one strategy.
///
/// # Errors
///
/// Returns a message when the run does not produce the expected trace —
/// the httperf fleet vanished, the web VM was never metered, or the reboot
/// caused no outage.
pub fn run(strategy: RebootStrategy) -> Result<Fig7Trace, String> {
    let web = DomainSpec::standard("web", ServiceKind::ApacheWeb).with_files(fig7_corpus());
    let cfg = HostConfig::paper_testbed()
        .with_domain(web)
        .with_vms(10, ServiceKind::Ssh)
        .with_trace(false);
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    let target = DomainId(1);
    sim.host_mut().warm_cache(target, fig7_corpus().files);
    sim.attach_httperf(
        target,
        HttperfClient::new(10, fig7_corpus().files, AccessPattern::Cyclic),
    );

    // Steady state before the reboot.
    sim.run_for(SimDuration::from_secs(30));
    let command_at = sim.now();
    sim.reboot_and_wait(strategy);
    // Watch the recovery (cache refill) for a while.
    sim.run_for(SimDuration::from_secs(90));

    let client = sim
        .detach_httperf()
        .ok_or("httperf client detached before the trace was read")?;
    let series = client.throughput_windows(50);
    let meter = sim
        .host()
        .meter(target)
        .ok_or("web vm has no availability meter")?;
    let outage = meter
        .outages()
        .iter()
        .rev()
        .find(|o| o.end >= command_at)
        .copied()
        .ok_or_else(|| format!("{strategy} reboot caused no outage on the web vm"))?;
    let steady_before = series
        .mean_over(SimTime::ZERO, command_at)
        .unwrap_or(f64::NAN);
    let just_after = series
        .mean_over(outage.end, outage.end + SimDuration::from_secs(10))
        .unwrap_or(f64::NAN);
    let recovered = series
        .mean_over(outage.end + SimDuration::from_secs(60), sim.now())
        .unwrap_or(f64::NAN);
    Ok(Fig7Trace {
        strategy,
        command_at,
        series,
        phases: sim.host().metrics.spans().to_vec(),
        steady_before,
        stopped_at: outage.start,
        restored_at: outage.end,
        just_after,
        recovered,
    })
}

/// Renders the phase timeline relative to the reboot command.
pub fn render_phases(trace: &Fig7Trace) -> String {
    let mut out = format!(
        "## fig7 {} reboot (command at t={})\n",
        trace.strategy, trace.command_at
    );
    out.push_str(&format!(
        "steady {:.0} req/s | stopped at +{:.1}s | restored at +{:.1}s | just-after {:.0} req/s ({:.0} %) | recovered {:.0} req/s\n",
        trace.steady_before,
        (trace.stopped_at - trace.command_at).as_secs_f64(),
        (trace.restored_at - trace.command_at).as_secs_f64(),
        trace.just_after,
        trace.after_ratio() * 100.0,
        trace.recovered,
    ));
    for s in &trace.phases {
        if let Some(end) = s.end {
            let rel_s = s.start.saturating_duration_since(trace.command_at);
            let rel_e = end.saturating_duration_since(trace.command_at);
            out.push_str(&format!(
                "  {:<16} +{:>7.1}s .. +{:>7.1}s\n",
                s.name(),
                rel_s.as_secs_f64(),
                rel_e.as_secs_f64()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_keeps_serving_longer_and_recovers_instantly() {
        let warm = run(RebootStrategy::Warm).unwrap();
        let cold = run(RebootStrategy::Cold).unwrap();

        // The paper: web server stopped at +14 s (warm) vs +7 s (cold),
        // i.e. the warm path serves ~7 s longer.
        let warm_stop = (warm.stopped_at - warm.command_at).as_secs_f64();
        let cold_stop = (cold.stopped_at - cold.command_at).as_secs_f64();
        assert!(
            (warm_stop - cold_stop - 7.0).abs() < 1.5,
            "warm stops at +{warm_stop:.1}, cold at +{cold_stop:.1}"
        );

        // Both ran at the same steady state before.
        assert!(warm.steady_before > 150.0, "steady {}", warm.steady_before);
        assert!((warm.steady_before - cold.steady_before).abs() < 20.0);

        // Warm: no degradation after the reboot.
        assert!(
            warm.after_ratio() > 0.9,
            "warm after-ratio {:.2}",
            warm.after_ratio()
        );
        // Cold: significant degradation just after (cache misses), then
        // recovery.
        assert!(
            cold.after_ratio() < 0.6,
            "cold after-ratio {:.2}",
            cold.after_ratio()
        );
        assert!(
            cold.recovered > 0.9 * cold.steady_before,
            "cold recovered to {:.0} of {:.0}",
            cold.recovered,
            cold.steady_before
        );

        // Downtime ordering: warm outage far shorter than cold.
        let warm_outage = (warm.restored_at - warm.stopped_at).as_secs_f64();
        let cold_outage = (cold.restored_at - cold.stopped_at).as_secs_f64();
        assert!(warm_outage * 2.0 < cold_outage);
    }

    #[test]
    fn phase_render_mentions_key_phases() {
        let warm = run(RebootStrategy::Warm).unwrap();
        let rendered = render_phases(&warm);
        for phase in [
            "dom0 shutdown",
            "suspend",
            "quick reload",
            "dom0 boot",
            "resume",
        ] {
            assert!(rendered.contains(phase), "missing {phase} in:\n{rendered}");
        }
    }
}
