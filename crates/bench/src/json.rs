//! Minimal in-tree JSON emission and validation.
//!
//! `BENCH_repro.json` and the frontier run records are consumed by
//! external tooling, so they must be *valid JSON for every input* — point
//! names contain arbitrary panic messages (quotes, backslashes, control
//! characters) and wall-time arithmetic can produce NaN/infinity, which
//! JSON has no literal for. The emission helpers here centralize both
//! hardenings (string escaping per RFC 8259 §7, non-finite numbers →
//! `null`), and [`parse`] is a small validating parser so tests can assert
//! whole-file validity without any external dependency (README §"Hermetic
//! build").

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal
/// (everything RFC 8259 §7 requires: `"` `\` and all control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a number as a JSON value: finite values verbatim, NaN and
/// infinities as `null` (JSON has no literal for them).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One executed point's record for a run document.
#[derive(Debug, Clone)]
pub struct ReproPoint {
    /// Point name, as submitted to the sweep executor.
    pub name: String,
    /// Wall-clock milliseconds the point took.
    pub wall_ms: f64,
    /// Per-phase wall spans, `(label, milliseconds)`.
    pub spans: Vec<(String, f64)>,
    /// Whether the point succeeded.
    pub ok: bool,
}

/// Renders the machine-readable run record shared by the `all` and
/// `frontier` binaries: flags, per-point wall times, and headline figures.
/// Always valid JSON, whatever the inputs contain.
pub fn repro_document(
    flags: &[(&str, String)],
    total_wall_ms: f64,
    points: &[ReproPoint],
    headline: &[(String, f64)],
) -> String {
    let flag_lines: Vec<String> = flags
        .iter()
        .map(|(k, v)| format!("  \"{}\": {}", escape(k), v))
        .collect();
    let point_lines: Vec<String> = points
        .iter()
        .map(|p| {
            let spans: Vec<String> = p
                .spans
                .iter()
                .map(|(label, ms)| format!("\"{}_ms\":{}", escape(label), number(*ms)))
                .collect();
            format!(
                "    {{\"name\":\"{}\",\"wall_ms\":{},\"spans\":{{{}}},\"ok\":{}}}",
                escape(&p.name),
                number(p.wall_ms),
                spans.join(","),
                p.ok
            )
        })
        .collect();
    let headline_lines: Vec<String> = headline
        .iter()
        .map(|(k, v)| format!("    \"{}\": {}", escape(k), number(*v)))
        .collect();
    format!(
        "{{\n{},\n  \"total_wall_ms\": {},\n  \"points\": [\n{}\n  ],\n  \
         \"headline\": {{\n{}\n  }}\n}}\n",
        flag_lines.join(",\n"),
        number(total_wall_ms),
        point_lines.join(",\n"),
        headline_lines.join(",\n"),
    )
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|b| *b as char),
            *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs don't occur in our emitters;
                        // reject rather than mis-decode.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("non-scalar \\u escape at byte {}", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control character at byte {}", *pos));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let s = &input_str(bytes)[*pos..];
                let c = s.chars().next().ok_or("utf8 boundary error")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn input_str(bytes: &[u8]) -> &str {
    // lint:allow(unwrap-panic): parse() entry takes &str, so bytes are valid UTF-8
    std::str::from_utf8(bytes).expect("input was a &str")
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab\rcr"), "line\\nfeed\\ttab\\rcr");
        assert_eq!(escape("bell\u{7}"), "bell\\u0007");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn parse_round_trips_values() {
        let v = parse(r#"{"a": [1, -2.5, null, true], "b": "x\nyA"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-2.5),
                Value::Null,
                Value::Bool(true),
            ]))
        );
        assert_eq!(v.get("b"), Some(&Value::String("x\nyA".to_string())));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"raw \u{1} control\"",
            "nulls",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn repro_document_is_valid_json_for_hostile_inputs() {
        // The whole-file hardening test: point names carrying panic
        // messages (quotes, newlines, control chars) and NaN wall times
        // must still yield a parseable document with nulls in place of
        // the non-finite numbers.
        let points = vec![
            ReproPoint {
                name: "fig6/Ssh/3vms".to_string(),
                wall_ms: 12.25,
                spans: vec![("wait".to_string(), 0.5), ("run".to_string(), 11.75)],
                ok: true,
            },
            ReproPoint {
                name: "panicked: \"index\\bounds\"\n\tat row 3\u{7}".to_string(),
                wall_ms: f64::NAN,
                spans: vec![("run".to_string(), f64::INFINITY)],
                ok: false,
            },
        ];
        let headline = vec![
            ("fig8_cold_web_degradation".to_string(), 0.69),
            ("broken \"metric\"".to_string(), f64::NAN),
        ];
        let doc = repro_document(
            &[("jobs", "4".to_string()), ("quick", "true".to_string())],
            f64::NAN,
            &points,
            &headline,
        );
        let parsed = parse(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        assert_eq!(parsed.get("jobs"), Some(&Value::Number(4.0)));
        assert_eq!(parsed.get("total_wall_ms"), Some(&Value::Null));
        let Some(Value::Array(points)) = parsed.get("points") else {
            panic!("points missing");
        };
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("wall_ms"), Some(&Value::Null));
        let Some(Value::String(name)) = points[1].get("name") else {
            panic!("name missing");
        };
        assert!(name.contains('\n') && name.contains('\u{7}'), "{name:?}");
        assert_eq!(
            parsed
                .get("headline")
                .and_then(|h| h.get("broken \"metric\"")),
            Some(&Value::Null)
        );
    }

    #[test]
    fn empty_points_and_headline_render_valid_json() {
        let doc = repro_document(&[("jobs", "1".to_string())], 0.0, &[], &[]);
        // Degenerate but still parseable (empty arrays/objects collapse to
        // a blank line inside the brackets — the parser must cope).
        assert!(parse(&doc).is_ok(), "invalid: {doc}");
    }
}
