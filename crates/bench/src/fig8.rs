//! Figure 8: throughput of file reads and web accesses before/after the
//! reboot.
//!
//! * **8(a)** — one 11 GiB VM reads a fully cached 512 MB file just before
//!   and just after the reboot: cold loses 91 % of throughput (every block
//!   misses), warm loses nothing.
//! * **8(b)** — Apache serves 10 000 × 512 KB cached files to 10 parallel
//!   httperf processes, each file requested once: cold loses 69 %, warm
//!   nothing.

use rh_guest::fs::FileSet;
use rh_guest::services::ServiceKind;
use rh_net::httperf::{AccessPattern, HttperfClient};
use rh_sim::time::SimDuration;
use rh_vmm::config::{HostConfig, RebootStrategy};
use rh_vmm::domain::{DomainId, DomainSpec};
use rh_vmm::harness::HostSim;

/// Before/after throughput pair (bytes/s for 8a, req/s for 8b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeforeAfter {
    /// Throughput just before the reboot.
    pub before: f64,
    /// Throughput just after the reboot.
    pub after: f64,
}

impl BeforeAfter {
    /// Degradation fraction: 0.91 means −91 %.
    pub fn degradation(&self) -> f64 {
        1.0 - self.after / self.before
    }
}

/// Fig. 8 results for one reboot strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Result {
    /// Strategy measured.
    pub strategy: RebootStrategy,
    /// 8(a): sequential file-read throughput.
    pub file_read: BeforeAfter,
    /// 8(b): web-serving throughput.
    pub web: BeforeAfter,
}

fn big_vm_host(files: FileSet) -> HostSim {
    let spec = DomainSpec::standard("big", ServiceKind::ApacheWeb)
        .with_mem_bytes(11 << 30)
        .with_files(files);
    let cfg = HostConfig::paper_testbed()
        .with_domain(spec)
        .with_trace(false);
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    sim
}

/// Runs the 8(a) file-read comparison for one strategy.
pub fn file_read(strategy: RebootStrategy) -> BeforeAfter {
    let corpus = FileSet::single_large_file();
    let mut sim = big_vm_host(corpus);
    let dom = DomainId(1);
    // Pre-warm: the whole 512 MB file is cached, as in the paper.
    sim.host_mut().warm_cache(dom, 1);
    let before = sim.file_read_and_wait(dom, 0);
    sim.reboot_and_wait(strategy);
    let after = sim.file_read_and_wait(dom, 0);
    BeforeAfter { before, after }
}

/// Measures web throughput by running a fresh 10-process httperf fleet
/// through every file exactly once (the Fig. 8b methodology).
fn web_throughput(sim: &mut HostSim, files: u32) -> f64 {
    sim.attach_httperf(
        DomainId(1),
        HttperfClient::new(10, files, AccessPattern::EachOnce),
    );
    let ok = sim.run_until(SimDuration::from_secs(3600), |h| {
        h.httperf().map(|c| c.is_done()).unwrap_or(true)
    });
    let Some(client) = sim.detach_httperf() else {
        // Attached above, so this cannot happen; NaN keeps the comparisons
        // loud without aborting a whole sweep.
        return f64::NAN;
    };
    if !ok {
        return f64::NAN;
    }
    let log = client.log();
    let count = log.len() as f64;
    let span = log
        .throughput_per_window(log.len())
        .iter()
        .next()
        .map(|(_, rate)| rate)
        .unwrap_or(f64::NAN);
    debug_assert!(count > 0.0);
    span
}

/// Runs the 8(b) web comparison for one strategy. `files` scales the
/// corpus (10 000 in the paper; smaller in quick tests).
pub fn web(strategy: RebootStrategy, files: u32) -> BeforeAfter {
    let corpus = FileSet::new(files, 512 * 1024);
    let mut sim = big_vm_host(corpus);
    let dom = DomainId(1);
    sim.host_mut().warm_cache(dom, files);
    let before = web_throughput(&mut sim, files);
    sim.reboot_and_wait(strategy);
    let after = web_throughput(&mut sim, files);
    BeforeAfter { before, after }
}

/// Runs the full Fig. 8 for one strategy.
pub fn run(strategy: RebootStrategy, web_files: u32) -> Fig8Result {
    Fig8Result {
        strategy,
        file_read: file_read(strategy),
        web: web(strategy, web_files),
    }
}

/// Renders one strategy's results.
pub fn render(r: &Fig8Result) -> String {
    format!(
        "## fig8 ({} reboot)\n\
         file read : before {:>7.1} MB/s, after {:>7.1} MB/s  ({:+.0} %)\n\
         web       : before {:>7.1} req/s, after {:>7.1} req/s  ({:+.0} %)\n",
        r.strategy,
        r.file_read.before / 1e6,
        r.file_read.after / 1e6,
        -100.0 * r.file_read.degradation(),
        r.web.before,
        r.web.after,
        -100.0 * r.web.degradation(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_read_cold_loses_ninety_one_percent() {
        let cold = file_read(RebootStrategy::Cold);
        // Before: memory-speed (640 MB/s); after: seeky disk (~58 MB/s).
        assert!(cold.before > 500e6, "before {:.0} MB/s", cold.before / 1e6);
        let deg = cold.degradation();
        assert!((deg - 0.91).abs() < 0.03, "cold degradation {:.2}", deg);
    }

    #[test]
    fn file_read_warm_loses_nothing() {
        let warm = file_read(RebootStrategy::Warm);
        assert!(
            warm.degradation().abs() < 0.02,
            "warm degradation {:.3}",
            warm.degradation()
        );
    }

    #[test]
    fn web_cold_loses_about_sixty_nine_percent() {
        // A 1 500-file corpus keeps the test fast; the degradation ratio is
        // corpus-size-independent (it is a rate ratio).
        let cold = web(RebootStrategy::Cold, 1_500);
        let deg = cold.degradation();
        assert!((deg - 0.69).abs() < 0.08, "cold web degradation {:.2}", deg);
    }

    #[test]
    fn web_warm_loses_nothing() {
        let warm = web(RebootStrategy::Warm, 1_000);
        assert!(
            warm.degradation().abs() < 0.05,
            "warm web degradation {:.3}",
            warm.degradation()
        );
    }

    #[test]
    fn render_shape() {
        let r = Fig8Result {
            strategy: RebootStrategy::Cold,
            file_read: BeforeAfter {
                before: 640e6,
                after: 57e6,
            },
            web: BeforeAfter {
                before: 215.0,
                after: 66.0,
            },
        };
        let s = render(&r);
        assert!(s.contains("-91 %"));
        assert!(s.contains("cold"));
    }
}
