//! §5.3: availability of the 11-VM JBoss host under weekly OS and
//! four-weekly VMM rejuvenation.
//!
//! Paper: 99.993 % (warm) / 99.985 % (cold) / 99.977 % (saved); the warm-VM
//! reboot achieves four nines where the others achieve three.

use rh_guest::services::ServiceKind;
use rh_rejuv::availability::{nines, percent, AvailabilityComparison, AvailabilityModel};
use rh_vmm::domain::DomainId;

use crate::fig6;
use crate::util::booted_n_vms;

/// §5.3 inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityResult {
    /// Measured VMM-rejuvenation downtimes at 11 VMs with JBoss (s).
    pub downtimes: fig6::DowntimeRow,
    /// Measured single-OS rejuvenation downtime (s). Paper: 33.6 s.
    pub os_downtime: f64,
    /// Resulting availabilities.
    pub comparison: AvailabilityComparison,
}

/// Measures everything live and computes the comparison.
pub fn run() -> AvailabilityResult {
    let downtimes = fig6::measure(11, ServiceKind::Jboss);
    let mut sim = booted_n_vms(11, ServiceKind::Jboss);
    let os_downtime = sim.os_reboot_and_wait(DomainId(1)).as_secs_f64();
    let model = AvailabilityModel {
        os_downtime_secs: os_downtime,
        ..AvailabilityModel::paper()
    };
    let comparison =
        AvailabilityComparison::compute(&model, downtimes.warm, downtimes.cold, downtimes.saved);
    AvailabilityResult {
        downtimes,
        os_downtime,
        comparison,
    }
}

/// Renders the §5.3 summary.
pub fn render(r: &AvailabilityResult) -> String {
    format!(
        "## sec5.3 availability (11 VMs, JBoss, weekly OS / 4-weekly VMM rejuvenation, α=0.5)\n\
         OS rejuvenation downtime : {:.1} s (paper: 33.6)\n\
         VMM downtimes            : warm {:.1} s, cold {:.1} s, saved {:.1} s\n\
         warm  : {} ({} nines)   (paper: 99.993 %, four 9s)\n\
         cold  : {} ({} nines)   (paper: 99.985 %)\n\
         saved : {} ({} nines)   (paper: 99.977 %)\n",
        r.os_downtime,
        r.downtimes.warm,
        r.downtimes.cold,
        r.downtimes.saved,
        percent(r.comparison.warm),
        nines(r.comparison.warm),
        percent(r.comparison.cold),
        nines(r.comparison.cold),
        percent(r.comparison.saved),
        nines(r.comparison.saved),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_achieves_four_nines_the_rest_three() {
        let r = run();
        assert!(
            (r.os_downtime - 33.6).abs() < 6.0,
            "OS downtime {:.1}",
            r.os_downtime
        );
        assert_eq!(nines(r.comparison.warm), 4, "warm {}", r.comparison.warm);
        assert_eq!(nines(r.comparison.cold), 3, "cold {}", r.comparison.cold);
        assert_eq!(nines(r.comparison.saved), 3, "saved {}", r.comparison.saved);
        // Within half a unit in the last printed decimal of the paper.
        assert!((r.comparison.warm - 0.99993).abs() < 1.5e-5);
        assert!((r.comparison.cold - 0.99985).abs() < 3e-5);
        assert!((r.comparison.saved - 0.99977).abs() < 4e-5);
        assert!(render(&r).contains("four"));
    }
}
