//! Shared experiment plumbing: host construction and table rendering.

use rh_guest::services::ServiceKind;
use rh_vmm::config::HostConfig;
use rh_vmm::domain::DomainSpec;
use rh_vmm::harness::HostSim;

/// A booted host with a single VM of `mem_gib` GiB running `service`
/// (the Fig. 4 configuration).
pub fn booted_single_vm(mem_gib: u64, service: ServiceKind) -> HostSim {
    let spec = DomainSpec::standard("vm1", service).with_mem_bytes(mem_gib << 30);
    let cfg = HostConfig::paper_testbed()
        .with_domain(spec)
        .with_trace(false);
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    sim
}

/// A booted host with `n` standard 1 GiB VMs of `service`
/// (the Fig. 5/6 configuration), without tracing for speed.
pub fn booted_n_vms(n: u32, service: ServiceKind) -> HostSim {
    let cfg = HostConfig::paper_testbed()
        .with_vms(n, service)
        .with_trace(false);
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    sim
}

/// A plain-text table with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(hdr.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats seconds with two decimals (for sub-second values).
pub fn secs2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "warm", "cold"]);
        t.row(vec!["1".into(), "38.9".into(), "107.6".into()]);
        t.row(vec!["11".into(), "41.1".into(), "141.8".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let lines: Vec<&str> = r.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(41.13), "41.1");
        assert_eq!(secs2(0.043), "0.04");
    }
}
