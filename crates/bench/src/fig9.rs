//! Figure 9 / §6: total throughput of a cluster under rejuvenation.
//!
//! Combines measured single-host downtimes with the analytic cluster model
//! (and a live rolling-rejuvenation cross-check): warm dips `(m−1)p` for
//! ~42 s; cold dips for ~241 s then runs at `(m−δ)p` while caches refill;
//! migration permanently sacrifices a host and degrades the evacuating one
//! by 12 % for ~17 minutes.

use rh_cluster::analytic::ClusterScenario;
use rh_cluster::migration::MigrationModel;
use rh_cluster::rolling::{rolling_rejuvenation, RollingReport};
use rh_guest::services::ServiceKind;
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::config::RebootStrategy;

use crate::fig6;

/// The Fig. 9 outputs.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The scenario (m hosts, measured downtimes).
    pub scenario: ClusterScenario,
    /// Capacity lost to one warm rejuvenation (requests).
    pub warm_loss: f64,
    /// Capacity lost to one cold rejuvenation (requests).
    pub cold_loss: f64,
    /// Capacity lost to one migration-based rejuvenation (requests),
    /// including the permanently reserved spare.
    pub migration_loss: f64,
    /// Estimated host evacuation time (s) for 11 × 1 GB (paper: ~17 min).
    pub evacuation_secs: f64,
    /// Live rolling cross-check (small cluster).
    pub rolling_warm: RollingReport,
    /// Live rolling cross-check, cold.
    pub rolling_cold: RollingReport,
}

/// Runs Fig. 9: measured downtimes at `n` JBoss VMs feed the analytic
/// model for an `m`-host cluster with per-host throughput `p`.
pub fn run(m: u32, p: f64, n_vms: u32) -> Fig9Result {
    let measured = fig6::measure(n_vms, ServiceKind::Jboss);
    let scenario = ClusterScenario {
        hosts: m,
        per_host_throughput: p,
        vms_per_host: n_vms,
        vm_mem_bytes: 1 << 30,
        warm_downtime_secs: measured.warm,
        cold_downtime_secs: measured.cold,
        delta: 0.69,
        warmup_secs: 60.0,
    };
    let horizon = SimDuration::from_secs(3600);
    let at = SimTime::from_secs(600);
    let migration = MigrationModel::paper();
    let warm_loss = scenario.capacity_loss(&scenario.warm_series(at, horizon), horizon);
    let cold_loss = scenario.capacity_loss(&scenario.cold_series(at, horizon), horizon);
    let migration_loss =
        scenario.capacity_loss(&scenario.migration_series(&migration, at, horizon), horizon);
    let evacuation = migration.evacuate_host(11, 1 << 30).total.as_secs_f64();
    let stagger = SimDuration::from_secs(600);
    let rolling_warm =
        rolling_rejuvenation(3, 3, ServiceKind::Ssh, RebootStrategy::Warm, stagger, p);
    let rolling_cold =
        rolling_rejuvenation(3, 3, ServiceKind::Ssh, RebootStrategy::Cold, stagger, p);
    Fig9Result {
        scenario,
        warm_loss,
        cold_loss,
        migration_loss,
        evacuation_secs: evacuation,
        rolling_warm,
        rolling_cold,
    }
}

/// Renders the Fig. 9 summary.
pub fn render(r: &Fig9Result) -> String {
    format!(
        "## fig9 cluster (m={}, p={:.0} req/s, one VMM rejuvenation per hour)\n\
         measured host downtimes : warm {:.1} s, cold {:.1} s (JBoss, {} VMs)\n\
         capacity lost           : warm {:>9.0}, cold {:>9.0}, migration {:>9.0} requests\n\
         evacuation (11 x 1 GB)  : {:.1} min (paper: ~17 min)\n\
         live rolling (3 hosts)  : warm loses {:>7.0}, cold loses {:>7.0}; \
         service stayed up: warm={}, cold={}\n",
        r.scenario.hosts,
        r.scenario.per_host_throughput,
        r.scenario.warm_downtime_secs,
        r.scenario.cold_downtime_secs,
        r.scenario.vms_per_host,
        r.warm_loss,
        r.cold_loss,
        r.migration_loss,
        r.evacuation_secs / 60.0,
        r.rolling_warm.capacity_loss,
        r.rolling_cold.capacity_loss,
        r.rolling_warm.service_never_fully_down,
        r.rolling_cold.service_never_fully_down,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_ordering_matches_section_6() {
        // A small configuration for test speed; the bin uses 11 VMs.
        let r = run(4, 215.0, 4);
        assert!(
            r.warm_loss < r.cold_loss,
            "warm {} !< cold {}",
            r.warm_loss,
            r.cold_loss
        );
        assert!(
            r.cold_loss < r.migration_loss,
            "cold {} !< migration {}",
            r.cold_loss,
            r.migration_loss
        );
        assert!((r.evacuation_secs / 60.0 - 17.0).abs() < 1.5);
        assert!(r.rolling_warm.service_never_fully_down);
        assert!(r.rolling_warm.capacity_loss < r.rolling_cold.capacity_loss);
        assert!(render(&r).contains("evacuation"));
    }
}
