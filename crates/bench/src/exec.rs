//! Deterministic parallel experiment executor.
//!
//! Every figure in the paper's evaluation is a sweep of **independent
//! deterministic simulations** — one fresh [`HostSim`](rh_vmm::harness::HostSim)
//! per sweep point, each built from a fixed-seed config. That makes sweeps
//! embarrassingly parallel *as long as three invariants hold*:
//!
//! 1. **Per-point seeding.** Each point gets its own [`SimRng`] stream via
//!    [`SimRng::split`]: stream `i` depends only on the sweep seed and the
//!    point's submission index, never on worker count or scheduling order.
//! 2. **Order-independent assembly.** Results are slotted into a vector
//!    indexed by submission order, so the output is byte-identical whether
//!    the points ran on 1 worker or N.
//! 3. **No shared mutable state.** A point closure owns everything it
//!    touches; the only shared structures are the work queue cursor and
//!    the result slots.
//!
//! Worker closures must also never take the whole run down: a panicking
//! point is caught ([`std::panic::catch_unwind`]) and reported as a failed
//! [`PointResult`] carrying the point's name, while every other point
//! completes normally.
//!
//! The executor runs on the shared deterministic worker pool
//! ([`rh_sim::pool`] — std-only `std::thread::scope`, no external crates,
//! README §"Hermetic build") and is the engine behind `--jobs N` in the
//! `all`/`fig4`/`fig5`/`fig6` binaries. See DESIGN.md §10 for the
//! determinism argument.
//!
//! # Examples
//!
//! ```
//! use rh_bench::exec::Sweep;
//!
//! let mut sweep = Sweep::new(42);
//! for n in 1..=4u64 {
//!     sweep.point(format!("square/{n}"), move |_rng| n * n);
//! }
//! let results = sweep.run(2);
//! let values: Vec<u64> = results.iter().filter_map(|r| r.value().copied()).collect();
//! assert_eq!(values, [1, 4, 9, 16]); // submission order, any worker count
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rh_obs::WallProfile;
use rh_sim::rng::SimRng;

/// Default experiment seed for sweeps whose points ignore their RNG
/// (the paper sweeps: every point builds its own fixed-seed host).
pub const DEFAULT_SEED: u64 = 2007;

/// One named experiment point: a closure from an independent RNG stream to
/// a result.
struct Point<T> {
    name: String,
    run: Box<dyn FnOnce(SimRng) -> T + Send + 'static>,
}

/// Why a point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The point's closure panicked; the payload message is attached.
    Panicked(String),
    /// The point was never executed (executor invariant violation — should
    /// be unreachable, kept so assembly never has to panic itself).
    NotRun,
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointError::Panicked(msg) => write!(f, "panicked: {msg}"),
            PointError::NotRun => write!(f, "never executed"),
        }
    }
}

/// The outcome of one executed point.
#[derive(Debug, Clone)]
pub struct PointResult<T> {
    /// The point's name, as submitted.
    pub name: String,
    /// Wall-clock time the point took on its worker.
    pub wall: Duration,
    /// Per-phase wall-clock spans: `"wait"` (batch start to claim) and
    /// `"run"` (the closure itself). Nondeterministic — quarantined to
    /// `BENCH_repro.json`, never stdout (DESIGN.md §10).
    pub profile: WallProfile,
    /// The value, or why the point failed.
    pub outcome: Result<T, PointError>,
}

impl<T> PointResult<T> {
    /// The value, if the point succeeded.
    pub fn value(&self) -> Option<&T> {
        self.outcome.as_ref().ok()
    }

    /// Consumes the result, returning the value if the point succeeded.
    pub fn into_value(self) -> Option<T> {
        self.outcome.ok()
    }
}

/// A batch of named experiment points executed across `jobs` workers.
///
/// Points run in submission order on one worker, or work-stolen across N
/// workers; either way [`run`](Self::run) returns results in submission
/// order with byte-identical values.
pub struct Sweep<T> {
    seed: u64,
    points: Vec<Point<T>>,
}

impl<T> std::fmt::Debug for Sweep<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("seed", &self.seed)
            .field("points", &self.points.len())
            .finish()
    }
}

impl<T: Send + 'static> Sweep<T> {
    /// Creates an empty sweep whose per-point RNG streams derive from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Sweep {
            seed,
            points: Vec::new(),
        }
    }

    /// Number of submitted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been submitted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Submits a named point. `f` receives an independent [`SimRng`] stream
    /// derived from the sweep seed and this point's submission index
    /// (points that need no randomness simply ignore it).
    pub fn point(&mut self, name: impl Into<String>, f: impl FnOnce(SimRng) -> T + Send + 'static) {
        self.points.push(Point {
            name: name.into(),
            run: Box::new(f),
        });
    }

    /// Runs every point across `jobs` workers (clamped to at least 1) and
    /// returns the results in submission order.
    ///
    /// A panicking point becomes a [`PointError::Panicked`] result; it
    /// never poisons the other points or the executor itself.
    pub fn run(self, jobs: usize) -> Vec<PointResult<T>> {
        let n = self.points.len();
        // Names survive outside the task slots so assembly can label even a
        // point that (impossibly) never ran.
        let names: Vec<String> = self.points.iter().map(|p| p.name.clone()).collect();
        let rngs = SimRng::from_seed(self.seed).split(n);
        // Each slot owns (point, rng); the pool worker for index i takes the
        // slot's contents exactly once (`rh_sim::pool` handles the cursor,
        // scoped threads, and submission-order assembly).
        let tasks: Vec<Mutex<Option<(Point<T>, SimRng)>>> = self
            .points
            .into_iter()
            .zip(rngs)
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        let batch_start = Instant::now();

        rh_sim::pool::run_indexed(n, jobs, |i| {
            let Some((point, rng)) = lock_ok(&tasks[i]).take() else {
                return PointResult {
                    name: names[i].clone(),
                    wall: Duration::ZERO,
                    profile: WallProfile::new(),
                    outcome: Err(PointError::NotRun),
                };
            };
            let wait = batch_start.elapsed();
            let start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| (point.run)(rng)))
                .map_err(|payload| PointError::Panicked(panic_message(payload.as_ref())));
            let run = start.elapsed();
            let mut profile = WallProfile::new();
            profile.record("wait", wait);
            profile.record("run", run);
            PointResult {
                name: point.name,
                wall: run,
                profile,
                outcome,
            }
        })
    }

    /// Runs the sweep and returns only the successful values, in submission
    /// order, reporting each failed point on stderr. The convenience
    /// wrapper the sweep modules (`fig45`, `fig6`, `sec56`, `ablations`)
    /// use: a paper sweep with a failing point still renders every other
    /// row.
    pub fn run_values(self, jobs: usize) -> Vec<T> {
        self.run(jobs)
            .into_iter()
            .filter_map(|r| match r.outcome {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("sweep point {:?} failed: {e}", r.name);
                    None
                }
            })
            .collect()
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock. Poisoning is
/// harmless here: every panic inside a worker is already confined to
/// `catch_unwind`, and a poisoned slot still holds valid data.
fn lock_ok<M>(mutex: &Mutex<M>) -> std::sync::MutexGuard<'_, M> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parses a `--jobs N` value: a positive worker count, or `0` meaning
/// "one worker per available CPU".
///
/// # Errors
///
/// Returns a usage message when `value` is not a non-negative integer.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    let n: usize = value
        .parse()
        .map_err(|_| format!("--jobs: expected a non-negative integer, got {value:?}"))?;
    if n == 0 {
        Ok(available_cpus())
    } else {
        Ok(n)
    }
}

/// Worker count for `--jobs 0`: the parallelism the OS reports, or 1.
pub fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses the arguments of a figure binary that accepts only `--jobs N`
/// (default 1, 0 = all CPUs).
///
/// # Errors
///
/// Returns a usage message on an unknown flag or a malformed value.
pub fn jobs_from_args(args: impl Iterator<Item = String>) -> Result<usize, String> {
    let mut jobs = 1;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args
                    .next()
                    .ok_or("--jobs requires a value; usage: --jobs N")?;
                jobs = parse_jobs(&v)?;
            }
            other => return Err(format!("unknown argument {other:?}; usage: --jobs N")),
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_sweep(n: u64) -> Sweep<u64> {
        let mut sweep = Sweep::new(DEFAULT_SEED);
        for i in 1..=n {
            sweep.point(format!("square/{i}"), move |_rng| i * i);
        }
        sweep
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 16] {
            let results = square_sweep(10).run(jobs);
            let values: Vec<u64> = results.iter().filter_map(|r| r.value().copied()).collect();
            assert_eq!(values, (1..=10).map(|i| i * i).collect::<Vec<_>>());
            let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
            assert_eq!(names[0], "square/1");
            assert_eq!(names[9], "square/10");
        }
    }

    #[test]
    fn per_point_rng_is_independent_of_worker_count() {
        let draws = |jobs: usize| -> Vec<u64> {
            let mut sweep = Sweep::new(99);
            for i in 0..8 {
                sweep.point(format!("draw/{i}"), |mut rng: SimRng| rng.next_u64());
            }
            sweep.run_values(jobs)
        };
        let serial = draws(1);
        assert_eq!(serial, draws(4));
        assert_eq!(serial, draws(8));
        // And the streams really are distinct.
        let mut sorted = serial.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), serial.len());
    }

    #[test]
    fn panicking_point_is_reported_not_fatal() {
        let mut sweep = Sweep::new(0);
        sweep.point("ok/1", |_rng| 1u32);
        sweep.point("boom", |_rng| panic!("injected failure"));
        sweep.point("ok/2", |_rng| 2u32);
        let results = sweep.run(2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].value(), Some(&1));
        assert_eq!(results[2].value(), Some(&2));
        assert_eq!(results[1].name, "boom");
        match &results[1].outcome {
            Err(PointError::Panicked(msg)) => assert!(msg.contains("injected failure")),
            other => panic!("expected a panicked point, got {other:?}"),
        }
    }

    #[test]
    fn run_values_drops_failures_keeps_order() {
        let mut sweep = Sweep::new(0);
        sweep.point("a", |_rng| 1u32);
        sweep.point("b", |_rng| panic!("nope"));
        sweep.point("c", |_rng| 3u32);
        assert_eq!(sweep.run_values(3), vec![1, 3]);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let sweep: Sweep<u8> = Sweep::new(1);
        assert!(sweep.is_empty());
        assert!(sweep.run(4).is_empty());
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        // More workers than points (and jobs=0 → cpu count) must not hang
        // or duplicate work.
        let results = square_sweep(3).run(64);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn parse_jobs_accepts_counts_and_zero() {
        assert_eq!(parse_jobs("3"), Ok(3));
        assert_eq!(parse_jobs("0"), Ok(available_cpus()));
        assert!(parse_jobs("many").is_err());
        assert!(parse_jobs("-1").is_err());
    }

    #[test]
    fn jobs_from_args_parses_the_flag() {
        let argv = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from_args(argv(&[]).into_iter()), Ok(1));
        assert_eq!(jobs_from_args(argv(&["--jobs", "4"]).into_iter()), Ok(4));
        assert!(jobs_from_args(argv(&["--jobs"]).into_iter()).is_err());
        assert!(jobs_from_args(argv(&["--bogus"]).into_iter()).is_err());
    }

    #[test]
    fn wall_time_is_recorded() {
        let mut sweep = Sweep::new(0);
        sweep.point("spin", |_rng| {
            let mut acc = 0u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let results = sweep.run(1);
        assert!(results[0].wall > Duration::ZERO);
    }

    #[test]
    fn wall_profile_records_wait_and_run_spans() {
        let results = square_sweep(3).run(2);
        for r in &results {
            assert!(r.profile.duration_of("wait").is_some(), "{}", r.name);
            assert_eq!(r.profile.duration_of("run"), Some(r.wall), "{}", r.name);
        }
    }
}
