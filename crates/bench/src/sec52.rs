//! §5.2: effect of quick reload — VMM reboot time with and without a
//! hardware reset.
//!
//! The paper measures the time from the completion of the shutdown scripts
//! to the completion of the VMM reboot: **11 s** with quick reload versus
//! **59 s** with a hardware reset — a 48 s saving.

use rh_guest::services::ServiceKind;
use rh_obs::Phase;
use rh_vmm::config::RebootStrategy;

use crate::util::booted_single_vm;

/// §5.2 measurements (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuickReloadResult {
    /// VMM reboot via quick reload.
    pub quick_reload: f64,
    /// VMM reboot via hardware reset (reset + VMM init).
    pub hardware_reset: f64,
}

impl QuickReloadResult {
    /// Seconds saved by quick reload.
    pub fn saving(&self) -> f64 {
        self.hardware_reset - self.quick_reload
    }
}

/// Measures both paths on single-VM hosts.
///
/// A phase the reboot failed to record shows up as NaN (and fails the
/// paper-number comparisons loudly) instead of aborting the whole run.
pub fn run() -> QuickReloadResult {
    let mut warm = booted_single_vm(1, ServiceKind::Ssh);
    warm.reboot_and_wait(RebootStrategy::Warm);
    let quick = warm
        .host()
        .metrics
        .duration_of(Phase::QuickReload)
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    let mut cold = booted_single_vm(1, ServiceKind::Ssh);
    cold.reboot_and_wait(RebootStrategy::Cold);
    let cspan = |phase: Phase| {
        cold.host()
            .metrics
            .duration_of(phase)
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    QuickReloadResult {
        quick_reload: quick,
        hardware_reset: cspan(Phase::HardwareReset) + cspan(Phase::VmmBoot),
    }
}

/// Renders the comparison.
pub fn render(r: &QuickReloadResult) -> String {
    format!(
        "## sec5.2 quick reload\n\
         quick reload   : {:>5.1} s   (paper: 11 s)\n\
         hardware reset : {:>5.1} s   (paper: 59 s)\n\
         saving         : {:>5.1} s   (paper: 48 s)\n",
        r.quick_reload,
        r.hardware_reset,
        r.saving()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let r = run();
        assert!(
            (r.quick_reload - 11.0).abs() < 1.0,
            "quick {:.1}",
            r.quick_reload
        );
        assert!(
            (r.hardware_reset - 59.0).abs() < 6.0,
            "hw {:.1}",
            r.hardware_reset
        );
        assert!((r.saving() - 48.0).abs() < 7.0, "saving {:.1}", r.saving());
        assert!(render(&r).contains("quick reload"));
    }
}
