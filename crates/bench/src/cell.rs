//! The serverless-cell sweep behind `cellbench`: arrival load × overcommit
//! × provisioning strategy.
//!
//! Each cell runs one full [`rh_cell::CellSimulation`] — a single
//! overcommitted host serving a Poisson/diurnal stream of short-lived
//! function VMs (DESIGN.md §17) — and reports the cold-start latency
//! percentiles plus the memory ledger: warm-pool hits, balloon reclaim
//! volume, queue/rejection counts, and mean frame utilization. The
//! headline contrast the acceptance gate pins down: at ≥ 1.5×
//! overcommit, balloon-reclaim + warm pool beats cold re-provision on
//! P99 cold-start, because a queued cold boot waits for a departure
//! (seconds) while a reclaim squeezes running guests (milliseconds).
//!
//! Every point is a fixed-seed simulation (`CellConfig::steady` keeps
//! the seed constant across strategies, so every strategy at a given
//! load faces the same arrival trace) — the whole sweep is byte-identical
//! at any `--jobs` count.

use rh_cell::{CellConfig, CellSimulation, ProvisionStrategy};
use rh_sim::time::SimDuration;

use crate::exec::{Sweep, DEFAULT_SEED};
use crate::util::Table;

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCell {
    /// Offered load as a fraction of the host's un-overcommitted VM
    /// capacity (1.0 = arrivals exactly fill the physical slots).
    pub load: f64,
    /// Pseudo-physical overcommit ratio.
    pub overcommit: f64,
    /// Provisioning strategy under test.
    pub strategy: ProvisionStrategy,
    /// Shortened horizon for the quick profile.
    pub quick: bool,
}

/// One measured cell point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPoint {
    /// The swept cell.
    pub cell: CellCell,
    /// Scheduler events processed (arrivals + departures).
    pub events: u64,
    /// VMs provisioned (cold + warm).
    pub provisioned: u64,
    /// Warm-pool hits.
    pub warm_hits: u64,
    /// Arrivals that waited for frames before booting.
    pub queued: u64,
    /// Arrivals turned away at the admission cap.
    pub rejected: u64,
    /// Median cold-start latency.
    pub p50: SimDuration,
    /// Tail cold-start latency.
    pub p99: SimDuration,
    /// Mean machine-frame utilization over the run.
    pub utilization: f64,
    /// Pages squeezed out of running guests under pressure.
    pub reclaimed_pages: u64,
    /// Parked warm images evicted to free frames.
    pub evicted: u64,
}

/// The strategies swept at each (load, overcommit) point, display order.
pub const STRATEGIES: [ProvisionStrategy; 3] = ProvisionStrategy::ALL;

/// The sweep grid. Full: load {0.85, 1.05} × overcommit {1.0, 1.5, 2.0}
/// × every strategy on the steady 1,200 s horizon. Quick: load 1.05 ×
/// overcommit {1.0, 1.5} × every strategy on a 600 s horizon — the
/// determinism smoke `scripts/verify.sh` compares across worker counts.
pub fn grid(quick: bool) -> Vec<CellCell> {
    let mut cells = Vec::new();
    if quick {
        for &overcommit in &[1.0, 1.5] {
            for strategy in STRATEGIES {
                cells.push(CellCell {
                    load: 1.05,
                    overcommit,
                    strategy,
                    quick,
                });
            }
        }
        return cells;
    }
    for &load in &[0.85, 1.05] {
        for &overcommit in &[1.0, 1.5, 2.0] {
            for strategy in STRATEGIES {
                cells.push(CellCell {
                    load,
                    overcommit,
                    strategy,
                    quick,
                });
            }
        }
    }
    cells
}

/// The [`CellConfig`] a cell runs: the steady preset for its strategy
/// and overcommit, with the arrival rate rescaled to the cell's load
/// factor (same seed ⇒ same arrival trace for every strategy) and the
/// quick profile's shortened horizon.
pub fn config(cell: CellCell) -> CellConfig {
    let mut cfg = CellConfig::steady(cell.strategy, cell.overcommit);
    let slots = (cfg.host_frames / cfg.vm_pages) as f64;
    cfg.workload.arrival_rate = slots * cell.load / cfg.workload.mean_lifetime.as_secs_f64();
    if cell.quick {
        cfg.horizon = SimDuration::from_secs(600);
    }
    cfg
}

/// Measures one cell (one fresh deterministic cell run).
pub fn measure(cell: CellCell) -> CellPoint {
    let r = CellSimulation::new(config(cell))
        // lint:allow(unwrap-panic): config() builds from the validated steady preset
        .expect("cell grid configs are valid")
        .run()
        // lint:allow(unwrap-panic): steady runs cannot fail mid-flight
        .expect("cell grid runs complete");
    CellPoint {
        cell,
        events: r.events,
        provisioned: r.provisioned,
        warm_hits: r.warm_hits,
        queued: r.queued,
        rejected: r.rejected,
        p50: r.p50(),
        p99: r.p99(),
        utilization: r.mean_utilization,
        reclaimed_pages: r.reclaimed_pages,
        evicted: r.evicted,
    }
}

/// The cell sweep as executor points, one per grid cell.
pub fn sweep_points(cells: &[CellCell]) -> Sweep<CellPoint> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for &cell in cells {
        sweep.point(
            format!(
                "cell/{:.0}%/{:.1}x/{}",
                cell.load * 100.0,
                cell.overcommit,
                cell.strategy
            ),
            move |_rng| measure(cell),
        );
    }
    sweep
}

/// Runs the whole cell sweep across `jobs` workers.
pub fn sweep(quick: bool, jobs: usize) -> Vec<CellPoint> {
    sweep_points(&grid(quick)).run_values(jobs)
}

/// Renders the sweep table.
pub fn render(rows: &[CellPoint]) -> Table {
    let mut t = Table::new(
        "cell: cold-start latency vs overcommit per provisioning strategy",
        &[
            "load", "oc", "strategy", "vms", "warm", "queued", "rej", "p50", "p99", "util%",
            "reclaim", "evict",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}%", r.cell.load * 100.0),
            format!("{:.1}x", r.cell.overcommit),
            r.cell.strategy.to_string(),
            r.provisioned.to_string(),
            r.warm_hits.to_string(),
            r.queued.to_string(),
            r.rejected.to_string(),
            r.p50.to_string(),
            r.p99.to_string(),
            format!("{:.1}", r.utilization * 100.0),
            r.reclaimed_pages.to_string(),
            r.evicted.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_the_strategy_contrast() {
        let rows = sweep(true, 2);
        assert_eq!(rows.len(), grid(true).len(), "every cell must complete");
        let at = |oc: f64, s| {
            rows.iter()
                .find(|r| r.cell.overcommit == oc && r.cell.strategy == s)
                .unwrap()
        };
        // The acceptance contrast: at 1.5× overcommit balloon-reclaim
        // beats cold re-provision on tail cold-start, because reclaim
        // frees frames in milliseconds while a queued cold boot waits
        // for a departure.
        let cold = at(1.5, ProvisionStrategy::Cold);
        let balloon = at(1.5, ProvisionStrategy::BalloonReclaim);
        assert!(
            balloon.p99 < cold.p99,
            "balloon p99 {} must beat cold p99 {}",
            balloon.p99,
            cold.p99
        );
        assert!(balloon.reclaimed_pages > 0, "{balloon:?}");
        assert!(balloon.warm_hits > 0, "{balloon:?}");
        assert_eq!(cold.warm_hits, 0, "cold never parks images");
        for r in &rows {
            assert!(r.provisioned > 100, "{:?}", r.cell);
        }
    }

    #[test]
    fn quick_sweep_is_identical_for_any_worker_count() {
        let sequential = render(&sweep(true, 1)).render();
        let parallel = render(&sweep(true, 4)).render();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn full_grid_shape_and_shared_traces() {
        let cells = grid(false);
        assert_eq!(cells.len(), 2 * 3 * 3);
        // Every strategy at a given (load, overcommit) must face the
        // same workload: seed and arrival rate are strategy-independent.
        for pair in cells.chunks(3) {
            let a = config(pair[0]);
            let b = config(pair[2]);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.workload.arrival_rate, b.workload.arrival_rate);
        }
    }

    #[test]
    fn render_shape() {
        let rows = vec![CellPoint {
            cell: CellCell {
                load: 1.05,
                overcommit: 1.5,
                strategy: ProvisionStrategy::BalloonReclaim,
                quick: true,
            },
            events: 4000,
            provisioned: 1900,
            warm_hits: 1200,
            queued: 40,
            rejected: 3,
            p50: SimDuration::from_micros(16_000),
            p99: SimDuration::from_micros(180_000),
            utilization: 0.913,
            reclaimed_pages: 52_000,
            evicted: 7,
        }];
        let out = render(&rows).render();
        assert!(out.contains("balloon"), "{out}");
        assert!(out.contains("1.5x"), "{out}");
        assert!(out.contains("91.3"), "{out}");
    }
}
