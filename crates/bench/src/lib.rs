//! # rh-bench — the experiment harness
//!
//! One module (and one binary) per table/figure of the paper's evaluation,
//! regenerating each result from the simulated host. See DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
//!
//! | module | paper result |
//! |--------|--------------|
//! | [`fig45`] | Figs. 4 & 5 — pre/post-reboot task times vs memory size and VM count |
//! | [`sec52`] | §5.2 — quick reload vs hardware reset |
//! | [`fig6`]  | Fig. 6 — service downtime (ssh / JBoss) per strategy |
//! | [`sec53`] | §5.3 — availability (four nines vs three) |
//! | [`fig7`]  | Fig. 7 — downtime breakdown + throughput trace |
//! | [`fig8`]  | Fig. 8 — file-read and web throughput before/after |
//! | [`sec56`] | §5.6 — least-squares model extraction |
//! | [`fig9`]  | Fig. 9 / §6 — cluster total throughput |
//! | [`ablations`] | DESIGN.md ablations (suspend ordering, reservation order, driver domains) |
//! | [`reliability`] | proactive vs adaptive vs reactive rejuvenation under injected aging |
//! | [`frontier`] | DESIGN.md §15 — the 5-strategy downtime/degradation frontier |
//! | [`fleet`] | DESIGN.md §16 — datacenter fleet: placement × campaign SLA sweep |
//! | [`cell`] | DESIGN.md §17 — serverless cell: cold-start latency vs overcommit per strategy |
//!
//! The [`json`] module is the in-tree JSON emitter/validator behind the
//! `BENCH_repro.json` run records (string escaping, NaN→null hardening,
//! and a validating parser for whole-file tests).
//!
//! The [`runner`] module is the in-repo micro-benchmark harness (warmup +
//! timed iterations, median/p95, table + JSON output) driving the
//! `microbench` binary — the hermetic replacement for the former Criterion
//! benches (README §"Hermetic build").
//!
//! The [`core`] module is the engine-throughput suite behind the
//! `corebench` binary: fixed-size DES and digest workloads, the
//! `BENCH_core.json` document, and the regression gate that
//! `scripts/verify.sh` runs against the committed baseline
//! (PERFORMANCE.md).
//!
//! The [`exec`] module is the deterministic parallel experiment executor:
//! every sweep above is a set of independent fixed-seed simulations, so the
//! sweep modules express their points as closures over [`exec::Sweep`] and
//! the binaries accept `--jobs N` — results are byte-identical to a
//! sequential run (DESIGN.md §10).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod cell;
pub mod core;
pub mod exec;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod frontier;
pub mod json;
pub mod reliability;
pub mod runner;
pub mod sec52;
pub mod sec53;
pub mod sec56;
pub mod util;
