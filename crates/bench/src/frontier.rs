//! The five-strategy frontier (DESIGN.md §15): downtime vs post-reboot
//! degradation across memory size × disk bandwidth × streaming locality.
//!
//! The paper's Fig. 6 ranks three strategies on downtime alone. The two
//! disk-image refinements (streamed post-copy restore, incremental delta
//! save) trade that single axis for a frontier: streaming cuts downtime
//! but serves degraded requests while the residual image faults in
//! (Fig. 8-style), and incremental saving cuts downtime in proportion to
//! how clean the delta chain is at reboot time. Each sweep cell boots a
//! two-VM host, warms the Fig. 8(a) benchmark file into vm1's page cache,
//! measures file-read throughput just before and just after the reboot,
//! and reports mean downtime plus the degradation window.

use rh_guest::fs::FileSet;
use rh_guest::services::ServiceKind;
use rh_sim::time::SimDuration;
use rh_vmm::config::{HostConfig, RebootStrategy};
use rh_vmm::domain::{DomainId, DomainSpec};
use rh_vmm::harness::{HostSim, DEFAULT_WAIT_CAP};

use crate::exec::{Sweep, DEFAULT_SEED};
use crate::util::{secs, Table};

/// One cell of the frontier grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierCell {
    /// Reboot strategy under test.
    pub strategy: RebootStrategy,
    /// Memory per VM, GiB.
    pub mem_gib: u64,
    /// Single-stream disk bandwidth, MB/s.
    pub disk_mbps: u64,
    /// Streaming request locality (only observable under `Streamed`).
    pub locality: f64,
}

/// One measured frontier point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// The swept cell.
    pub cell: FrontierCell,
    /// Mean service downtime, seconds.
    pub downtime_s: f64,
    /// Save-phase duration, seconds (the at-reboot disk write).
    pub save_s: f64,
    /// Post-reboot file-read throughput loss, `1 − after/before`.
    pub tput_loss: f64,
    /// Post-copy degradation window: the stream-in phase, seconds.
    pub degraded_s: f64,
}

/// The canonical locality used for the strategies that never stream.
pub const CANONICAL_LOCALITY: f64 = 0.9;

/// The sweep grid: every strategy × memory size × disk bandwidth, with the
/// locality axis swept only under `Streamed` (the only strategy that can
/// observe it). `quick` restricts to 1 GiB VMs for smoke runs.
pub fn grid(quick: bool) -> Vec<FrontierCell> {
    let mem_gib: &[u64] = if quick { &[1] } else { &[1, 2, 4] };
    let disk_mbps: &[u64] = &[85, 170];
    let localities: &[f64] = &[0.6, 0.95];
    let mut cells = Vec::new();
    for &mem in mem_gib {
        for &disk in disk_mbps {
            for strategy in RebootStrategy::ALL {
                if strategy == RebootStrategy::Streamed {
                    for &locality in localities {
                        cells.push(FrontierCell {
                            strategy,
                            mem_gib: mem,
                            disk_mbps: disk,
                            locality,
                        });
                    }
                } else {
                    cells.push(FrontierCell {
                        strategy,
                        mem_gib: mem,
                        disk_mbps: disk,
                        locality: CANONICAL_LOCALITY,
                    });
                }
            }
        }
    }
    cells
}

/// Measures one frontier cell (one fresh deterministic host simulation).
pub fn measure(cell: FrontierCell) -> FrontierPoint {
    let mem = cell.mem_gib << 30;
    // vm1 carries the Fig. 8(a)-style benchmark file (128 MB, fits the
    // page cache of a 1 GiB guest); vm2 adds save/restore bulk.
    let spec1 = DomainSpec::standard("vm1", ServiceKind::ApacheWeb)
        .with_mem_bytes(mem)
        .with_files(FileSet::new(1, 128 << 20));
    let spec2 = DomainSpec::standard("vm2", ServiceKind::ApacheWeb).with_mem_bytes(mem);
    let mut cfg = HostConfig::paper_testbed()
        .with_domain(spec1)
        .with_domain(spec2)
        .with_trace(false)
        .with_stream_locality(cell.locality);
    cfg.timing.disk.bandwidth_bps = cell.disk_mbps as f64 * 1e6;
    if cell.strategy == RebootStrategy::Incremental {
        cfg = cfg.with_snapshot_interval(Some(SimDuration::from_secs(60)));
    }
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    let dom = DomainId(1);
    sim.host_mut().warm_cache(dom, 1);
    let before = sim.file_read_and_wait(dom, 0);
    if cell.strategy == RebootStrategy::Incremental {
        // Give the background ticker time to lay down base snapshots so
        // the at-reboot save writes only dirty extents.
        sim.run_for(SimDuration::from_secs(150));
    }
    let report = sim.reboot_and_wait(cell.strategy);
    // The post-reboot read: under Streamed this lands inside the
    // degradation window, which is the point of the locality axis.
    let after = sim.file_read_and_wait(dom, 0);
    let drained = sim.run_until(DEFAULT_WAIT_CAP, |h| h.streaming_domains().is_empty());
    assert!(drained, "stream-in never drained");
    let phase = |p| {
        sim.host()
            .metrics
            .duration_of(p)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    };
    FrontierPoint {
        cell,
        downtime_s: report.mean_downtime().as_secs_f64(),
        save_s: phase(rh_obs::Phase::Save),
        tput_loss: 1.0 - after / before,
        degraded_s: phase(rh_obs::Phase::StreamIn),
    }
}

/// The frontier sweep as executor points, one per grid cell.
pub fn sweep_points(cells: &[FrontierCell]) -> Sweep<FrontierPoint> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for &cell in cells {
        sweep.point(
            format!(
                "frontier/{}/{}gib/{}mbps/loc{:.2}",
                cell.strategy, cell.mem_gib, cell.disk_mbps, cell.locality
            ),
            move |_rng| measure(cell),
        );
    }
    sweep
}

/// Runs the whole frontier across `jobs` workers.
pub fn sweep(quick: bool, jobs: usize) -> Vec<FrontierPoint> {
    sweep_points(&grid(quick)).run_values(jobs)
}

/// Renders the frontier table.
pub fn render(rows: &[FrontierPoint]) -> Table {
    let mut t = Table::new(
        "frontier: downtime vs post-reboot degradation (2 VMs)",
        &[
            "strategy", "GiB/VM", "MB/s", "loc", "downtime", "save", "loss%", "degraded",
        ],
    );
    for r in rows {
        t.row(vec![
            r.cell.strategy.to_string(),
            r.cell.mem_gib.to_string(),
            r.cell.disk_mbps.to_string(),
            format!("{:.2}", r.cell.locality),
            secs(r.downtime_s),
            secs(r.save_s),
            format!("{:.1}", r.tput_loss * 100.0),
            secs(r.degraded_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_strategy(
        rows: &[FrontierPoint],
        strategy: RebootStrategy,
    ) -> impl Iterator<Item = &FrontierPoint> {
        rows.iter().filter(move |r| r.cell.strategy == strategy)
    }

    #[test]
    fn quick_frontier_orders_the_strategies() {
        let rows = sweep(true, 2);
        assert_eq!(rows.len(), grid(true).len(), "every cell must complete");
        for disk in [85u64, 170] {
            let at = |s| {
                by_strategy(&rows, s)
                    .find(|r| r.cell.disk_mbps == disk)
                    .unwrap()
            };
            let warm = at(RebootStrategy::Warm);
            let saved = at(RebootStrategy::Saved);
            let streamed = at(RebootStrategy::Streamed);
            let incremental = at(RebootStrategy::Incremental);
            // Downtime: warm beats every disk-image strategy; streaming
            // and incremental saving both beat the full saved reboot.
            assert!(warm.downtime_s < streamed.downtime_s, "disk {disk}");
            assert!(
                streamed.downtime_s < saved.downtime_s,
                "disk {disk}: streamed {} !< saved {}",
                streamed.downtime_s,
                saved.downtime_s
            );
            assert!(
                incremental.downtime_s < saved.downtime_s,
                "disk {disk}: incremental {} !< saved {}",
                incremental.downtime_s,
                saved.downtime_s
            );
            // The trade: only streaming serves a degradation window.
            assert!(streamed.degraded_s > 0.0);
            assert_eq!(warm.degraded_s, 0.0);
            assert_eq!(saved.degraded_s, 0.0);
            // The incremental save phase is a fraction of the full one.
            assert!(
                incremental.save_s < 0.25 * saved.save_s,
                "disk {disk}: save {} !<< {}",
                incremental.save_s,
                saved.save_s
            );
        }
        // Lower locality ⇒ bigger post-reboot throughput loss.
        let streamed: Vec<&FrontierPoint> = by_strategy(&rows, RebootStrategy::Streamed)
            .filter(|r| r.cell.disk_mbps == 85)
            .collect();
        assert_eq!(streamed.len(), 2);
        assert!(
            streamed[0].tput_loss > streamed[1].tput_loss + 0.05,
            "loc 0.60 loss {:.2} !> loc 0.95 loss {:.2}",
            streamed[0].tput_loss,
            streamed[1].tput_loss
        );
    }

    #[test]
    fn sweep_is_identical_for_any_worker_count() {
        // The determinism contract behind `--jobs`: byte-identical tables.
        let sequential = render(&sweep(true, 1)).render();
        let parallel = render(&sweep(true, 4)).render();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn full_grid_has_the_locality_axis_only_for_streamed() {
        let cells = grid(false);
        assert_eq!(cells.len(), 3 * 2 * 6);
        for c in &cells {
            if c.strategy != RebootStrategy::Streamed {
                assert_eq!(c.locality, CANONICAL_LOCALITY, "{c:?}");
            }
        }
    }

    #[test]
    fn render_shape() {
        let rows = vec![FrontierPoint {
            cell: FrontierCell {
                strategy: RebootStrategy::Streamed,
                mem_gib: 1,
                disk_mbps: 85,
                locality: 0.6,
            },
            downtime_s: 81.25,
            save_s: 25.3,
            tput_loss: 0.42,
            degraded_s: 17.8,
        }];
        let r = render(&rows).render();
        assert!(r.contains("streamed"), "{r}");
        assert!(r.contains("81.2"), "{r}");
        assert!(r.contains("42.0"), "{r}");
    }
}
