//! A lightweight, zero-dependency micro-benchmark runner.
//!
//! Replaces the Criterion dev-dependency (unfetchable in the offline build
//! environment — README §"Hermetic build") with the subset the project
//! needs: per-benchmark **warmup** iterations, **N timed** iterations, and
//! **median / p95 / mean / min / max** summaries printed as an aligned
//! table and as machine-readable JSON. It is wired as a normal binary
//! (`cargo run --release -p rh-bench --bin microbench`), so it builds with
//! the workspace and needs no custom test harness.
//!
//! Unlike Criterion this runner does no outlier rejection or statistical
//! resampling — with a deterministic simulated workload, iteration-time
//! spread comes only from the OS scheduler, and median/p95 over a fixed
//! iteration count is enough to spot regressions.
//!
//! # Examples
//!
//! ```
//! use rh_bench::runner::{BenchOptions, Runner};
//!
//! let mut runner = Runner::new(BenchOptions { iters: 5, warmup: 1, ..BenchOptions::default() });
//! runner.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! let report = runner.finish();
//! assert_eq!(report.results.len(), 1);
//! assert!(report.results[0].median_ns > 0);
//! println!("{}", report.render_table());
//! println!("{}", report.to_json());
//! ```

use std::hint::black_box;
use std::time::Instant;

/// Options controlling every benchmark in a [`Runner`].
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Timed iterations per benchmark.
    pub iters: u32,
    /// Untimed warmup iterations per benchmark (cache/branch-predictor
    /// settling).
    pub warmup: u32,
    /// Only run benchmarks whose name contains this substring.
    pub filter: Option<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            iters: 20,
            warmup: 3,
            filter: None,
        }
    }
}

/// Usage string returned alongside every [`BenchOptions::from_args`] error.
pub const USAGE: &str = "usage: microbench [--iters N] [--warmup N] [--filter SUBSTR]";

impl BenchOptions {
    /// Parses options from command-line arguments:
    /// `--iters N`, `--warmup N`, `--filter SUBSTR`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on an unknown flag, a missing or malformed
    /// value, or `--iters 0`.
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = BenchOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value; {USAGE}"))
            };
            match arg.as_str() {
                "--iters" => {
                    opts.iters = value("--iters")?
                        .parse()
                        .map_err(|_| format!("--iters: not a number; {USAGE}"))?
                }
                "--warmup" => {
                    opts.warmup = value("--warmup")?
                        .parse()
                        .map_err(|_| format!("--warmup: not a number; {USAGE}"))?
                }
                "--filter" => opts.filter = Some(value("--filter")?),
                other => return Err(format!("unknown argument {other:?}; {USAGE}")),
            }
        }
        if opts.iters == 0 {
            return Err(format!("--iters must be at least 1; {USAGE}"));
        }
        Ok(opts)
    }
}

/// Summary statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/case` by convention).
    pub name: String,
    /// Timed iterations actually run.
    pub iters: u32,
    /// Median iteration time in nanoseconds.
    pub median_ns: u128,
    /// 95th-percentile iteration time in nanoseconds (nearest-rank).
    pub p95_ns: u128,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: u128,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u128,
    /// Slowest iteration in nanoseconds.
    pub max_ns: u128,
}

impl BenchResult {
    fn from_samples(name: &str, mut samples: Vec<u128>) -> Self {
        assert!(!samples.is_empty(), "no samples for {name}");
        samples.sort_unstable();
        let n = samples.len();
        // Nearest-rank percentiles over the sorted samples.
        let rank = |p: f64| samples[(((p / 100.0) * n as f64).ceil() as usize).clamp(1, n) - 1];
        BenchResult {
            name: name.to_string(),
            iters: n as u32,
            median_ns: rank(50.0),
            p95_ns: rank(95.0),
            mean_ns: samples.iter().sum::<u128>() / n as u128,
            min_ns: samples[0],
            max_ns: samples[n - 1],
        }
    }
}

/// A completed benchmark run: results in execution order.
#[derive(Debug, Clone)]
pub struct Report {
    /// One entry per executed (non-filtered) benchmark.
    pub results: Vec<BenchResult>,
}

impl Report {
    /// Renders the aligned human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::from("## microbench (times per iteration)\n");
        let name_w = self
            .results
            .iter()
            .map(|r| r.name.len())
            .chain(["benchmark".len()])
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "{:<name_w$}  {:>6}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}\n",
            "benchmark", "iters", "median", "p95", "mean", "min", "max"
        ));
        for r in &self.results {
            out.push_str(&format!(
                "{:<name_w$}  {:>6}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                r.name,
                r.iters,
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
            ));
        }
        out
    }

    /// Serializes the results as a JSON array (hand-rolled: benchmark
    /// names are the only strings, and the standard control/quote escapes
    /// are applied).
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"iters\":{},\"median_ns\":{},\"p95_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                    json_escape(&r.name), r.iters, r.median_ns, r.p95_ns, r.mean_ns, r.min_ns, r.max_ns
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collects benchmarks and times them as they are registered.
///
/// Each [`bench`](Self::bench) call runs immediately (warmup + timed
/// iterations) and prints a one-line progress note to stderr; call
/// [`finish`](Self::finish) to obtain the [`Report`].
#[derive(Debug)]
pub struct Runner {
    opts: BenchOptions,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Creates a runner with the given options.
    pub fn new(opts: BenchOptions) -> Self {
        Runner {
            opts,
            results: Vec::new(),
        }
    }

    /// Runs one benchmark: `warmup` untimed then `iters` timed calls of
    /// `f`. The return value is passed through [`black_box`] so the
    /// optimizer cannot elide the work. Skipped (silently) when a
    /// `--filter` is set and `name` does not contain it.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.opts.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        for _ in 0..self.opts.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.opts.iters as usize);
        for _ in 0..self.opts.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos());
        }
        let result = BenchResult::from_samples(name, samples);
        eprintln!(
            "  {:<40} median {:>10}  p95 {:>10}",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns)
        );
        self.results.push(result);
    }

    /// Consumes the runner and returns the collected [`Report`].
    pub fn finish(self) -> Report {
        Report {
            results: self.results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_summarizes() {
        let mut r = Runner::new(BenchOptions {
            iters: 8,
            warmup: 1,
            filter: None,
        });
        r.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let report = r.finish();
        assert_eq!(report.results.len(), 1);
        let b = &report.results[0];
        assert_eq!(b.iters, 8);
        assert!(b.min_ns <= b.median_ns);
        assert!(b.median_ns <= b.p95_ns);
        assert!(b.p95_ns <= b.max_ns);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = Runner::new(BenchOptions {
            iters: 2,
            warmup: 0,
            filter: Some("engine".into()),
        });
        r.bench("engine/chain", || 1);
        r.bench("figures/fig6", || 2);
        let report = r.finish();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].name, "engine/chain");
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = Runner::new(BenchOptions {
            iters: 2,
            warmup: 0,
            filter: None,
        });
        r.bench("a", || 0);
        r.bench("b", || 0);
        let json = r.finish().to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert_eq!(json.matches("\"median_ns\"").count(), 2);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn table_renders_every_row() {
        let mut r = Runner::new(BenchOptions {
            iters: 2,
            warmup: 0,
            filter: None,
        });
        r.bench("one", || 0);
        r.bench("two", || 0);
        let table = r.finish().render_table();
        assert!(table.contains("one") && table.contains("two"));
        assert!(table.contains("median") && table.contains("p95"));
    }

    #[test]
    fn from_args_parses_flags() {
        let opts = BenchOptions::from_args(
            ["--iters", "7", "--warmup", "2", "--filter", "fig"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.iters, 7);
        assert_eq!(opts.warmup, 2);
        assert_eq!(opts.filter.as_deref(), Some("fig"));
    }

    #[test]
    fn from_args_rejects_bad_input_with_usage() {
        for bad in [
            vec!["--bogus"],
            vec!["--iters"],
            vec!["--iters", "many"],
            vec!["--iters", "0"],
            vec!["--warmup", "x"],
        ] {
            let err = BenchOptions::from_args(bad.iter().map(|s| s.to_string()))
                .expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.contains("usage:"), "{bad:?} error lacks usage: {err}");
        }
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
