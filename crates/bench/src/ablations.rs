//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Suspend ordering** — RootHammer lets the VMM suspend guests *after*
//!    dom0 has shut down; the original Xen suspends them earlier, while
//!    dom0 is still shutting down. The paper credits ~7 s of downtime to
//!    this ordering (Fig. 7).
//! 2. **P2M re-reservation order** — quick reload must re-reserve frozen
//!    domain memory *before* VMM init writes anywhere; the wrong order
//!    corrupts images, and the content digests catch it.

use rh_guest::services::ServiceKind;
use rh_memory::contents::FrameContents;
use rh_memory::frame::FRAMES_PER_GIB;
use rh_vmm::config::{HostConfig, RebootStrategy, SuspendOrder};
use rh_vmm::domain::{Domain, DomainId, DomainSpec};
use rh_vmm::harness::HostSim;
use rh_vmm::vmm::{Vmm, VmmError};

use crate::exec::{Sweep, DEFAULT_SEED};

/// Result of the suspend-ordering ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspendOrderResult {
    /// Warm downtime with the paper's ordering (s).
    pub paper_order: f64,
    /// Warm downtime with the original-Xen ordering (s).
    pub xen_order: f64,
}

impl SuspendOrderResult {
    /// Extra downtime caused by the original ordering.
    pub fn penalty(&self) -> f64 {
        self.xen_order - self.paper_order
    }
}

fn measure_suspend_order(n: u32, order: SuspendOrder) -> f64 {
    let cfg = HostConfig::paper_testbed()
        .with_vms(n, ServiceKind::Ssh)
        .with_suspend_order(order)
        .with_trace(false);
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    sim.reboot_and_wait(RebootStrategy::Warm)
        .mean_downtime()
        .as_secs_f64()
}

/// The suspend-ordering ablation as executor points (one per ordering).
pub fn suspend_order_points(n: u32) -> Sweep<f64> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    sweep.point(format!("ablations/suspend-order/paper/{n}vms"), move |_| {
        measure_suspend_order(n, SuspendOrder::VmmAfterDom0Shutdown)
    });
    sweep.point(format!("ablations/suspend-order/xen/{n}vms"), move |_| {
        measure_suspend_order(n, SuspendOrder::Dom0DuringShutdown)
    });
    sweep
}

/// Measures warm downtime at `n` VMs under both suspend orderings, across
/// `jobs` workers. A failed point shows up as NaN rather than a panic.
pub fn suspend_order(n: u32, jobs: usize) -> SuspendOrderResult {
    let results = suspend_order_points(n).run(jobs);
    let value = |i: usize| {
        results
            .get(i)
            .and_then(|r| r.value().copied())
            .unwrap_or(f64::NAN)
    };
    SuspendOrderResult {
        paper_order: value(0),
        xen_order: value(1),
    }
}

/// Result of the reservation-ordering ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservationOrderResult {
    /// Whether the correct order preserved the image.
    pub correct_order_preserved: bool,
    /// Whether the buggy order corrupted the image (and was detected).
    pub wrong_order_corrupted: bool,
}

/// Demonstrates, at the mechanism level, that reserving P2M memory before
/// VMM init preserves the frozen image while the reverse order corrupts it.
///
/// # Errors
///
/// Propagates any [`VmmError`] from domain creation, suspend, or reload —
/// none is expected on this fixed scenario.
pub fn reservation_order() -> Result<ReservationOrderResult, VmmError> {
    let make = || -> Result<_, VmmError> {
        let mut vmm = Vmm::new(2 * FRAMES_PER_GIB);
        let mut contents = FrameContents::new();
        let mut dom = Domain::new(
            DomainId(1),
            DomainSpec::standard("vm1", ServiceKind::Ssh),
            0,
        );
        vmm.create_domain(&mut dom, &mut contents)?;
        vmm.on_memory_suspend(&mut dom, 16 * 1024)?;
        let digest = vmm.domain_digest(&dom, &contents);
        Ok((vmm, contents, dom, digest))
    };

    // Correct order.
    let (mut vmm, contents, dom, before) = make()?;
    let id = dom.id;
    let mut domains = std::collections::BTreeMap::from([(id, dom)]);
    vmm.stage_next_image(rh_vmm::xexec::XexecImage::build(2));
    vmm.quick_reload(&mut domains, &[id])?;
    let correct_order_preserved = vmm.domain_digest(&domains[&id], &contents) == before;

    // Wrong order: VMM init scribbles before the tables are replayed.
    let (mut vmm, mut contents, dom, before) = make()?;
    let id = dom.id;
    let scratch = vmm.ram().free_frames() + FRAMES_PER_GIB / 2;
    let mut domains = std::collections::BTreeMap::from([(id, dom)]);
    vmm.quick_reload_wrong_order(&mut domains, &[id], &mut contents, scratch)?;
    let wrong_order_corrupted = vmm.domain_digest(&domains[&id], &contents) != before;

    Ok(ReservationOrderResult {
        correct_order_preserved,
        wrong_order_corrupted,
    })
}

/// Result of the driver-domain experiment (paper §7).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverDomainResult {
    /// Per-count mean downtime of ordinary guests during a warm reboot.
    pub ordinary_downtime: Vec<(u32, f64)>,
    /// Per-count mean downtime of the driver domains themselves.
    pub driver_downtime: Vec<(u32, f64)>,
}

/// Measures one driver-domain point: `(k, ordinary mean, driver mean)`
/// downtime across a warm reboot with `k` driver domains among `n` guests.
pub fn measure_driver_domains(n: u32, k: u32) -> (u32, f64, f64) {
    let mut cfg = HostConfig::paper_testbed()
        .with_vms(n - k, ServiceKind::Ssh)
        .with_trace(false);
    for i in 0..k {
        cfg = cfg.with_domain(
            DomainSpec::standard(format!("drv{i}"), ServiceKind::Ssh).as_driver_domain(),
        );
    }
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    let report = sim.reboot_and_wait(RebootStrategy::Warm);
    let ids = sim.host().domu_ids();
    let (drv_ids, ord_ids): (Vec<_>, Vec<_>) = ids.iter().partition(|id| {
        sim.host()
            .domain(**id)
            .map(|d| d.spec.driver_domain)
            .unwrap_or(false)
    });
    let mean = |set: &[&rh_vmm::domain::DomainId]| -> f64 {
        if set.is_empty() {
            return f64::NAN;
        }
        set.iter()
            .map(|id| report.downtime[id].as_secs_f64())
            .sum::<f64>()
            / set.len() as f64
    };
    (
        k,
        mean(&ord_ids.iter().collect::<Vec<_>>()),
        mean(&drv_ids.iter().collect::<Vec<_>>()),
    )
}

/// The driver-domain experiment as executor points: one per driver count.
pub fn driver_domain_points(n: u32, max_drivers: u32) -> Sweep<(u32, f64, f64)> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for k in 0..=max_drivers {
        sweep.point(format!("ablations/driver-domains/{k}of{n}"), move |_rng| {
            measure_driver_domains(n, k)
        });
    }
    sweep
}

/// Warm-reboot downtime with 0..=`max_drivers` driver domains among `n`
/// guests, across `jobs` workers: driver domains cannot be suspended, so
/// they pay cold-reboot downtime even on the warm path.
pub fn driver_domains(n: u32, max_drivers: u32, jobs: usize) -> DriverDomainResult {
    let mut ordinary = Vec::new();
    let mut drivers = Vec::new();
    for (k, ord, drv) in driver_domain_points(n, max_drivers).run_values(jobs) {
        ordinary.push((k, ord));
        drivers.push((k, drv));
    }
    DriverDomainResult {
        ordinary_downtime: ordinary,
        driver_downtime: drivers,
    }
}

/// Renders all ablations.
pub fn render(s: &SuspendOrderResult, r: &ReservationOrderResult) -> String {
    format!(
        "## ablations\n\
         suspend ordering (warm, 11 VMs): paper order {:.1} s, original-Xen order {:.1} s \
         (penalty {:.1} s; paper credits ~7 s)\n\
         P2M reservation order: correct preserves image = {}, wrong order corrupts = {}\n",
        s.paper_order,
        s.xen_order,
        s.penalty(),
        r.correct_order_preserved,
        r.wrong_order_corrupted,
    )
}

/// Renders the driver-domain experiment.
pub fn render_driver_domains(r: &DriverDomainResult) -> String {
    let mut out = String::from(
        "## driver domains during a warm reboot (paper \u{a7}7)\n\
         drivers  ordinary-guest downtime  driver-domain downtime\n",
    );
    for ((k, ord), (_, drv)) in r.ordinary_downtime.iter().zip(&r.driver_downtime) {
        let drv_s = if drv.is_nan() {
            "-".to_string()
        } else {
            format!("{drv:.1} s")
        };
        out.push_str(&format!("{k:>7}  {ord:>22.1} s  {drv_s:>21}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_xen_ordering_costs_about_seven_seconds() {
        let r = suspend_order(5, 2);
        assert!(
            (r.penalty() - 7.0).abs() < 1.5,
            "ordering penalty {:.1}s (paper: ~7)",
            r.penalty()
        );
        assert!(r.xen_order > r.paper_order);
    }

    #[test]
    fn driver_domains_increase_warm_downtime() {
        let r = driver_domains(4, 2, 2);
        // "The existence of driver domains increases the downtime" (§7):
        // even ordinary guests wait for the driver shutdown before the
        // quick reload — but stay far below cold-reboot scale.
        let base = r.ordinary_downtime[0].1;
        assert!(base < 45.0, "pure-warm baseline {base:.1}");
        for (k, dt) in r.ordinary_downtime.iter().skip(1) {
            assert!(
                *dt > base,
                "k={k}: ordinary downtime {dt:.1} vs baseline {base:.1}"
            );
            assert!(
                *dt < 80.0,
                "k={k}: ordinary downtime {dt:.1} should stay warm-scale"
            );
        }
        // Driver domains themselves pay shutdown + boot on top (though no
        // hardware reset — the warm path still spares them that).
        for ((k, dt), (_, ord)) in r
            .driver_downtime
            .iter()
            .skip(1)
            .zip(r.ordinary_downtime.iter().skip(1))
        {
            assert!(*dt > 50.0, "k={k}: driver downtime {dt:.1}");
            assert!(
                dt > ord,
                "k={k}: driver {dt:.1} must exceed ordinary {ord:.1}"
            );
        }
        assert!(r.driver_downtime[0].1.is_nan(), "no drivers at k=0");
    }

    #[test]
    fn reservation_order_matters_and_is_detected() {
        let r = reservation_order().unwrap();
        assert!(r.correct_order_preserved);
        assert!(r.wrong_order_corrupted);
        let s = render(
            &SuspendOrderResult {
                paper_order: 41.0,
                xen_order: 48.0,
            },
            &r,
        );
        assert!(s.contains("penalty"));
    }
}
