//! The fleet sweep behind `fleetbench`: placement × campaign × fleet size.
//!
//! Each cell runs one full [`rh_fleet::FleetSimulation`] — a datacenter of
//! host cells under the synthetic Poisson/diurnal workload, rolling a
//! rejuvenation campaign across the fleet — and reports the SLA ledger:
//! minimum serving fraction, seconds below the floor, replica pairs lost,
//! migrations, and when the campaign finished. The headline contrast the
//! acceptance gate pins down: `RejuvAntiAffinity` placement with streamed
//! reboots holds the 97 % floor at the default 2 % wave width, while
//! `FirstFit` (which packs full hosts for the early waves to take down)
//! with cold reboots violates it.
//!
//! Workloads are seeded per fleet *size* (`FleetConfig::datacenter`), so
//! every placement/campaign combination at a given size faces the same
//! arrival trace — the comparison is pure policy, and the whole sweep is
//! byte-identical at any `--jobs` count.

use rh_fleet::config::{CampaignConfig, CampaignMode, FleetConfig};
use rh_fleet::placement::PlacementKind;
use rh_fleet::sim::FleetSimulation;
use rh_sim::time::SimTime;
use rh_vmm::config::RebootStrategy;

use crate::exec::{Sweep, DEFAULT_SEED};
use crate::util::{secs, Table};

/// One cell of the fleet grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetCell {
    /// Fleet size in hosts.
    pub hosts: u32,
    /// Placement algorithm.
    pub placement: PlacementKind,
    /// Campaign mode (in-place or evacuate-first).
    pub mode: CampaignMode,
    /// Reboot strategy each host uses.
    pub strategy: RebootStrategy,
    /// Shortened horizon for the quick profile.
    pub quick: bool,
}

/// One measured fleet point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPoint {
    /// The swept cell.
    pub cell: FleetCell,
    /// Scheduler events fired.
    pub events: u64,
    /// VM placement attempts.
    pub arrivals: u64,
    /// High-water mark of live VMs.
    pub peak_vms: u32,
    /// Minimum serving fraction after the transient.
    pub min_capacity: f64,
    /// Seconds spent below the SLA floor.
    pub sla_violation_s: f64,
    /// Replica pairs with both halves down at once.
    pub pair_losses: u64,
    /// Completed live migrations.
    pub migrations: u64,
    /// Campaign finish time, seconds (None: horizon hit first).
    pub finished_s: Option<f64>,
}

/// The campaign combinations swept at each size, in display order.
pub const CAMPAIGNS: [(CampaignMode, RebootStrategy); 4] = [
    (CampaignMode::InPlace, RebootStrategy::Cold),
    (CampaignMode::InPlace, RebootStrategy::Warm),
    (CampaignMode::InPlace, RebootStrategy::Streamed),
    (CampaignMode::Evacuate, RebootStrategy::Warm),
];

/// The sweep grid. Full: {1000, 5000} hosts × every placement × every
/// campaign combination. Quick: 200 hosts × {first-fit, anti-affinity} ×
/// in-place {cold, streamed} on a 6,000 s horizon — the determinism smoke
/// `scripts/verify.sh` compares across worker counts.
pub fn grid(quick: bool) -> Vec<FleetCell> {
    let mut cells = Vec::new();
    if quick {
        for placement in [PlacementKind::FirstFit, PlacementKind::AntiAffinity] {
            for strategy in [RebootStrategy::Cold, RebootStrategy::Streamed] {
                cells.push(FleetCell {
                    hosts: 200,
                    placement,
                    mode: CampaignMode::InPlace,
                    strategy,
                    quick,
                });
            }
        }
        return cells;
    }
    for &hosts in &[1000u32, 5000] {
        for placement in PlacementKind::ALL {
            for (mode, strategy) in CAMPAIGNS {
                cells.push(FleetCell {
                    hosts,
                    placement,
                    mode,
                    strategy,
                    quick,
                });
            }
        }
    }
    cells
}

/// The [`FleetConfig`] a cell runs: the calibrated datacenter shape for
/// its size (same seed ⇒ same workload for every policy at that size),
/// plus the cell's campaign starting after the fill-up transient.
pub fn config(cell: FleetCell) -> FleetConfig {
    let mut cfg = FleetConfig::datacenter(cell.hosts).with_placement(cell.placement);
    let start = if cell.quick { 500 } else { 1000 };
    let mut campaign =
        CampaignConfig::in_place(cell.strategy, cell.hosts, SimTime::from_secs(start));
    campaign.mode = cell.mode;
    cfg.campaign = Some(campaign);
    if cell.quick {
        cfg.horizon = rh_sim::time::SimDuration::from_secs(6000);
    }
    cfg
}

/// Measures one cell (one fresh deterministic fleet run).
pub fn measure(cell: FleetCell) -> FleetPoint {
    let r = FleetSimulation::new(config(cell))
        // lint:allow(unwrap-panic): config() builds from the validated datacenter preset
        .expect("fleet grid configs are valid")
        .run();
    assert!(
        r.max_used <= config(cell).slots_per_host,
        "capacity invariant violated: {} slots used",
        r.max_used
    );
    FleetPoint {
        cell,
        events: r.events,
        arrivals: r.arrivals,
        peak_vms: r.peak_vms,
        min_capacity: r.min_capacity,
        sla_violation_s: r.sla_violation.as_secs_f64(),
        pair_losses: r.pair_losses,
        migrations: r.migrations,
        finished_s: r.campaign_finished.map(|t| t.as_secs_f64()),
    }
}

/// The fleet sweep as executor points, one per grid cell.
pub fn sweep_points(cells: &[FleetCell]) -> Sweep<FleetPoint> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for &cell in cells {
        sweep.point(
            format!(
                "fleet/{}h/{}/{}-{}",
                cell.hosts, cell.placement, cell.mode, cell.strategy
            ),
            move |_rng| measure(cell),
        );
    }
    sweep
}

/// Runs the whole fleet sweep across `jobs` workers.
pub fn sweep(quick: bool, jobs: usize) -> Vec<FleetPoint> {
    sweep_points(&grid(quick)).run_values(jobs)
}

/// Renders the sweep table.
pub fn render(rows: &[FleetPoint]) -> Table {
    let mut t = Table::new(
        "fleet: SLA-aware rolling campaigns at datacenter scale",
        &[
            "hosts",
            "placement",
            "campaign",
            "events",
            "peak",
            "min%",
            "viol",
            "pairs",
            "migr",
            "finish",
        ],
    );
    for r in rows {
        t.row(vec![
            r.cell.hosts.to_string(),
            r.cell.placement.to_string(),
            format!("{}-{}", r.cell.mode, r.cell.strategy),
            r.events.to_string(),
            r.peak_vms.to_string(),
            format!("{:.2}", r.min_capacity * 100.0),
            secs(r.sla_violation_s),
            r.pair_losses.to_string(),
            r.migrations.to_string(),
            r.finished_s.map_or_else(|| "-".into(), secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_the_policy_contrast() {
        let rows = sweep(true, 2);
        assert_eq!(rows.len(), grid(true).len(), "every cell must complete");
        let at = |p, s| {
            rows.iter()
                .find(|r| r.cell.placement == p && r.cell.strategy == s)
                .unwrap()
        };
        let bad = at(PlacementKind::FirstFit, RebootStrategy::Cold);
        let good = at(PlacementKind::AntiAffinity, RebootStrategy::Streamed);
        // First-fit packs full hosts: each wave suspends ~3.6 % of VMs,
        // breaching the 97 % floor; spreading keeps waves at ~2 %.
        assert!(bad.sla_violation_s > 0.0, "bad {:?}", bad);
        assert!(bad.min_capacity < 0.97);
        assert_eq!(good.sla_violation_s, 0.0, "good {:?}", good);
        assert!(good.min_capacity >= 0.97);
        for r in &rows {
            assert!(r.arrivals > 1000, "{:?}", r.cell);
        }
    }

    #[test]
    fn quick_sweep_is_identical_for_any_worker_count() {
        let sequential = render(&sweep(true, 1)).render();
        let parallel = render(&sweep(true, 4)).render();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn full_grid_shape_and_event_floor() {
        let cells = grid(false);
        assert_eq!(cells.len(), 2 * 3 * 4);
        assert!(cells.iter().all(|c| c.hosts >= 1000));
        // The acceptance floor: ≥ 100k VM lifecycle events per point.
        // Arrivals alone: 0.55 · 8 · hosts / 900 s · 15,000 s ≈ 73 k VMs
        // at 1,000 hosts, each with a departure — ~146 k events minimum.
        let cfg = config(cells[0]);
        let expected = cfg.workload.arrival_rate * cfg.horizon.as_secs_f64() * 2.0;
        assert!(expected > 100_000.0, "expected ~{expected:.0} events");
    }

    #[test]
    fn render_shape() {
        let rows = vec![FleetPoint {
            cell: FleetCell {
                hosts: 1000,
                placement: PlacementKind::AntiAffinity,
                mode: CampaignMode::InPlace,
                strategy: RebootStrategy::Streamed,
                quick: false,
            },
            events: 150_000,
            arrivals: 73_000,
            peak_vms: 4900,
            min_capacity: 0.979,
            sla_violation_s: 0.0,
            pair_losses: 0,
            migrations: 0,
            finished_s: Some(7350.5),
        }];
        let out = render(&rows).render();
        assert!(out.contains("anti-affinity"), "{out}");
        assert!(out.contains("in-place-streamed"), "{out}");
        assert!(out.contains("97.90"), "{out}");
    }
}
