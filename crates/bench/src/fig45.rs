//! Figures 4 and 5: time for pre- and post-reboot tasks.
//!
//! * **Fig. 4** — one VM, memory size swept 1..=11 GiB: on-memory
//!   suspend/resume is flat, Xen's save/restore grows linearly with memory,
//!   shutdown/boot is flat.
//! * **Fig. 5** — 1..=11 VMs of 1 GiB: everything grows with `n`, but
//!   on-memory suspend/resume stays orders of magnitude below the rest.

use rh_guest::services::ServiceKind;
use rh_obs::Phase;
use rh_vmm::config::RebootStrategy;
use rh_vmm::harness::HostSim;

use crate::exec::{Sweep, DEFAULT_SEED};
use crate::util::{booted_n_vms, booted_single_vm, secs2, Table};

/// Pre/post-reboot task times (seconds) for one configuration, one row of
/// Fig. 4 or 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTimes {
    /// On-memory suspend of all VMs (warm pre-reboot task).
    pub onmem_suspend: f64,
    /// On-memory resume of all VMs (warm post-reboot task).
    pub onmem_resume: f64,
    /// Xen-style save to disk (saved pre-reboot task).
    pub save: f64,
    /// Xen-style restore from disk (saved post-reboot task).
    pub restore: f64,
    /// Guest OS shutdown (cold pre-reboot task).
    pub shutdown: f64,
    /// Guest OS boot including service start (cold post-reboot task).
    pub boot: f64,
}

fn span(sim: &HostSim, phase: Phase) -> f64 {
    sim.host()
        .metrics
        .duration_of(phase)
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN)
}

/// Measures all six task times by running one reboot of each strategy on
/// fresh hosts built by `make`.
pub fn measure_tasks(make: impl Fn() -> HostSim) -> TaskTimes {
    let mut warm = make();
    warm.reboot_and_wait(RebootStrategy::Warm);
    let mut saved = make();
    saved.reboot_and_wait(RebootStrategy::Saved);
    let mut cold = make();
    cold.reboot_and_wait(RebootStrategy::Cold);
    TaskTimes {
        onmem_suspend: span(&warm, Phase::Suspend),
        onmem_resume: span(&warm, Phase::Resume),
        save: span(&saved, Phase::Save),
        restore: span(&saved, Phase::Restore),
        shutdown: span(&cold, Phase::GuestShutdown),
        boot: span(&cold, Phase::GuestBoot),
    }
}

/// Fig. 4 as executor points: one per memory size.
pub fn fig4_sweep(sizes: impl Iterator<Item = u64>) -> Sweep<(u64, TaskTimes)> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for gib in sizes {
        sweep.point(format!("fig4/{gib}gib"), move |_rng| {
            (
                gib,
                measure_tasks(|| booted_single_vm(gib, ServiceKind::Ssh)),
            )
        });
    }
    sweep
}

/// Fig. 4 sweep: `(mem_gib, times)` for 1..=11 GiB, single VM, across
/// `jobs` workers.
pub fn fig4(sizes: impl Iterator<Item = u64>, jobs: usize) -> Vec<(u64, TaskTimes)> {
    fig4_sweep(sizes).run_values(jobs)
}

/// Fig. 5 as executor points: one per VM count.
pub fn fig5_sweep(counts: impl Iterator<Item = u32>) -> Sweep<(u32, TaskTimes)> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for n in counts {
        sweep.point(format!("fig5/{n}vms"), move |_rng| {
            (n, measure_tasks(|| booted_n_vms(n, ServiceKind::Ssh)))
        });
    }
    sweep
}

/// Fig. 5 sweep: `(n, times)` for 1..=11 VMs of 1 GiB, across `jobs`
/// workers.
pub fn fig5(counts: impl Iterator<Item = u32>, jobs: usize) -> Vec<(u32, TaskTimes)> {
    fig5_sweep(counts).run_values(jobs)
}

/// Renders a sweep as a table with the given x-axis label.
pub fn render<T: std::fmt::Display>(title: &str, x_label: &str, rows: &[(T, TaskTimes)]) -> Table {
    let mut t = Table::new(
        title,
        &[
            x_label,
            "onmem-suspend",
            "onmem-resume",
            "xen-save",
            "xen-restore",
            "shutdown",
            "boot",
        ],
    );
    for (x, v) in rows {
        t.row(vec![
            x.to_string(),
            secs2(v.onmem_suspend),
            secs2(v.onmem_resume),
            secs2(v.save),
            secs2(v.restore),
            secs2(v.shutdown),
            secs2(v.boot),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_suspend_flat_save_linear() {
        // Three points are enough to check the shape in a unit test; the
        // bench binary runs the full 1..=11 sweep.
        let rows = fig4([1u64, 6, 11].into_iter(), 2);
        let (_, t1) = rows[0];
        let (_, t11) = rows[2];
        // On-memory suspend/resume hardly depends on memory size.
        assert!(t1.onmem_suspend < 0.2 && t11.onmem_suspend < 0.2);
        assert!((t11.onmem_resume - t1.onmem_resume).abs() < 1.0);
        // Xen's save/restore is memory-proportional: ~12.6 s/GiB.
        assert!(t11.save / t1.save > 8.0, "save {} -> {}", t1.save, t11.save);
        assert!(
            (t11.save - 139.0).abs() < 10.0,
            "save(11GiB) = {}",
            t11.save
        );
        assert!((t11.restore - 139.0).abs() < 10.0);
        // Shutdown/boot do not depend on memory size.
        assert!((t11.shutdown - t1.shutdown).abs() < 1.0);
        assert!((t11.boot - t1.boot).abs() < 1.0);
    }

    #[test]
    fn fig5_shape_everything_grows_but_onmem_stays_tiny() {
        let rows = fig5([1u32, 11].into_iter(), 2);
        let (_, t1) = rows[0];
        let (_, t11) = rows[1];
        // Paper: at 11 VMs suspend 0.04 s, resume 4.2 s.
        assert!(
            t11.onmem_suspend < 0.2,
            "suspend(11) = {}",
            t11.onmem_suspend
        );
        assert!(
            (t11.onmem_resume - 4.2).abs() < 1.0,
            "resume(11) = {}",
            t11.onmem_resume
        );
        // Save ≈ 200 s and restore ≈ 156 s at 11 VMs (paper Fig. 5).
        assert!((t11.save - 200.0).abs() < 30.0, "save(11) = {}", t11.save);
        assert!(
            (t11.restore - 156.0).abs() < 30.0,
            "restore(11) = {}",
            t11.restore
        );
        // Boot grows largely with n.
        assert!(
            t11.boot > t1.boot + 20.0,
            "boot {} -> {}",
            t1.boot,
            t11.boot
        );
        // On-memory resume is ~2.7 % of Xen's restore (paper: 2.7 %).
        let ratio = t11.onmem_resume / t11.restore;
        assert!(ratio < 0.05, "resume/restore ratio {ratio:.3}");
    }

    #[test]
    fn render_produces_full_rows() {
        let rows = vec![(
            1u32,
            TaskTimes {
                onmem_suspend: 0.03,
                onmem_resume: 0.4,
                save: 12.6,
                restore: 12.6,
                shutdown: 10.8,
                boot: 7.0,
            },
        )];
        let t = render("fig5", "n", &rows);
        let s = t.render();
        assert!(s.contains("onmem-suspend"));
        assert!(s.contains("12.60"));
    }
}
