//! The reliability experiment: why rejuvenate at all, and how.
//!
//! The paper motivates rejuvenation with crash failures from software
//! aging (§2) but evaluates only the rejuvenation mechanisms. This
//! experiment closes the loop on our simulated host: under an injected
//! VMM-heap leak, compare three operating modes over the same horizon —
//!
//! * **reactive** — do nothing; the heap exhausts, domain operations fail,
//!   a watchdog crash-reboots the host (cold, with all state lost),
//! * **time-based proactive** — warm-rejuvenate on a fixed cadence,
//! * **adaptive proactive** — warm-rejuvenate only when the trend
//!   detector projects exhaustion (fewest rejuvenations).

use rh_guest::services::ServiceKind;
use rh_rejuv::adaptive::{run_adaptive, AdaptivePolicy};
use rh_sim::time::SimDuration;
use rh_vmm::config::RebootStrategy;
use rh_vmm::harness::{booted_host, HostSim};

/// Outcome of one operating mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeOutcome {
    /// VMM rejuvenations (or crash recoveries) performed.
    pub rejuvenations: u64,
    /// VMM-level errors observed (heap exhaustion, ...).
    pub vmm_errors: usize,
    /// Total per-service downtime over the horizon (s).
    pub downtime_secs: f64,
}

/// The three modes side by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityResult {
    /// Do-nothing-until-it-wedges.
    pub reactive: ModeOutcome,
    /// Fixed-cadence warm rejuvenation.
    pub time_based: ModeOutcome,
    /// Trend-triggered warm rejuvenation.
    pub adaptive: ModeOutcome,
}

const LEAK_PER_TEARDOWN: u64 = 1536 * 1024;
const CHURN: SimDuration = SimDuration::from_secs(600);

fn leaky_host(vms: u32) -> HostSim {
    let mut sim = booted_host(vms, ServiceKind::Ssh);
    sim.host_mut().vmm_mut().leak_per_domain_destroy = LEAK_PER_TEARDOWN;
    sim
}

fn policy() -> AdaptivePolicy {
    AdaptivePolicy {
        sample_interval: SimDuration::from_secs(600),
        lead: SimDuration::from_secs(1800),
        window: 6,
    }
}

fn total_downtime(sim: &HostSim, horizon: SimDuration) -> f64 {
    let end = rh_sim::time::SimTime::ZERO + horizon;
    sim.host()
        .domu_ids()
        .iter()
        .filter_map(|g| sim.host().meter(*g))
        .map(|m| {
            let closed: f64 = m.outages().iter().map(|o| o.duration().as_secs_f64()).sum();
            let open = m
                .down_since()
                .map(|t| end.saturating_duration_since(t).as_secs_f64())
                .unwrap_or(0.0);
            closed + open
        })
        .sum()
}

/// Runs all three modes over `horizon` on `vms`-guest hosts.
pub fn run(vms: u32, horizon: SimDuration) -> ReliabilityResult {
    // Reactive: churn with no policy; when the heap wedges (errors
    // appear), crash-recover, then keep churning.
    let reactive = {
        let mut sim = leaky_host(vms);
        let mut recoveries = 0u64;
        let outcome = run_adaptive(&mut sim, &policy(), CHURN, horizon, false);
        // The control run leaves wedged guests; a watchdog would crash
        // the host. Count one recovery per error burst observed.
        if outcome.vmm_errors > 0 {
            sim.crash_and_recover();
            recoveries += 1;
        }
        ModeOutcome {
            rejuvenations: recoveries,
            vmm_errors: outcome.vmm_errors,
            downtime_secs: total_downtime(&sim, horizon),
        }
    };
    // Time-based: warm-rejuvenate hourly regardless of actual aging —
    // the cadence must out-run the worst-case leak, so it overshoots.
    let time_based = {
        let mut sim = leaky_host(vms);
        let end = horizon;
        let mut elapsed = SimDuration::ZERO;
        let step = SimDuration::from_secs(3600);
        let mut count = 0u64;
        let mut churn_round = 0usize;
        while elapsed + step <= end {
            // Churn within the window.
            let churns = step.as_micros() / CHURN.as_micros();
            for _ in 0..churns {
                let guests = sim.host().domu_ids();
                let victim = guests[churn_round % guests.len()];
                churn_round += 1;
                sim.run_for(CHURN);
                let errors_before = sim.host().errors().len();
                {
                    let (host, sched) = sim.simulation_mut().parts_mut();
                    if !host.reboot_in_progress() {
                        host.os_reboot(sched, victim);
                    }
                }
                sim.run_until(SimDuration::from_secs(600), |h| {
                    h.domain(victim).map(|d| d.service_up()).unwrap_or(false)
                        || h.errors().len() > errors_before
                });
            }
            sim.reboot_and_wait(RebootStrategy::Warm);
            count += 1;
            elapsed += step;
        }
        ModeOutcome {
            rejuvenations: count,
            vmm_errors: sim.host().errors().len(),
            downtime_secs: total_downtime(&sim, horizon),
        }
    };
    // Adaptive: rejuvenate on the trend.
    let adaptive = {
        let mut sim = leaky_host(vms);
        let outcome = run_adaptive(&mut sim, &policy(), CHURN, horizon, true);
        ModeOutcome {
            rejuvenations: outcome.rejuvenations,
            vmm_errors: outcome.vmm_errors,
            downtime_secs: outcome.total_downtime.as_secs_f64(),
        }
    };
    ReliabilityResult {
        reactive,
        time_based,
        adaptive,
    }
}

/// Renders the comparison.
pub fn render(r: &ReliabilityResult) -> String {
    let row = |name: &str, m: &ModeOutcome| {
        format!(
            "{name:<12} {:>14} {:>12} {:>16.0}\n",
            m.rejuvenations, m.vmm_errors, m.downtime_secs
        )
    };
    format!(
        "## reliability under an injected VMM heap leak\n\
         mode         rejuvenations   vmm errors   downtime (s)\n{}{}{}",
        row("reactive", &r.reactive),
        row("time-based", &r.time_based),
        row("adaptive", &r.adaptive),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proactive_modes_avoid_errors_reactive_does_not() {
        let r = run(3, SimDuration::from_secs(24 * 3600));
        assert!(r.reactive.vmm_errors > 0, "reactive must hit exhaustion");
        assert_eq!(r.time_based.vmm_errors, 0, "time-based prevents exhaustion");
        assert_eq!(r.adaptive.vmm_errors, 0, "adaptive prevents exhaustion");
        // Adaptive fires no more often than the fixed cadence.
        assert!(r.adaptive.rejuvenations <= r.time_based.rejuvenations);
        assert!(r.adaptive.rejuvenations >= 1);
        // Both proactive modes beat the reactive downtime.
        assert!(r.adaptive.downtime_secs < r.reactive.downtime_secs);
        assert!(r.time_based.downtime_secs < r.reactive.downtime_secs);
        assert!(render(&r).contains("adaptive"));
    }
}
