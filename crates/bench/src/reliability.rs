//! The reliability experiment: why rejuvenate at all, and how.
//!
//! The paper motivates rejuvenation with crash failures from software
//! aging (§2) but evaluates only the rejuvenation mechanisms. This
//! experiment closes the loop on our simulated host: under an injected
//! VMM-heap leak, compare three operating modes over the same horizon —
//!
//! * **reactive** — do nothing; the heap exhausts, domain operations fail,
//!   a watchdog crash-reboots the host (cold, with all state lost),
//! * **time-based proactive** — warm-rejuvenate on a fixed cadence,
//! * **adaptive proactive** — warm-rejuvenate only when the trend
//!   detector projects exhaustion (fewest rejuvenations).

//!
//! The **fault sweep** ([`fault_sweep`]) closes a second loop: VMM crash
//! failures arrive as a Poisson process (rh-faults), and the host is
//! recovered either ReHype-style (micro-reboot + salvage) or by cold
//! reboot — producing availability and MTTR curves vs fault rate.

use rh_faults::plan::{FaultKind, FaultPlan, Trigger};
use rh_faults::recovery::{watch_and_recover, RecoveryConfig, RecoveryPolicy};
use rh_faults::Injector;
use rh_guest::services::ServiceKind;
use rh_rejuv::adaptive::{run_adaptive, AdaptivePolicy};
use rh_sim::rng::SimRng;
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::config::RebootStrategy;
use rh_vmm::harness::{booted_host, HostSim};
use rh_vmm::{DomainId, InjectPoint};

use crate::exec::Sweep;

/// Outcome of one operating mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeOutcome {
    /// VMM rejuvenations (or crash recoveries) performed.
    pub rejuvenations: u64,
    /// VMM-level errors observed (heap exhaustion, ...).
    pub vmm_errors: usize,
    /// Total per-service downtime over the horizon (s).
    pub downtime_secs: f64,
}

/// The three modes side by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityResult {
    /// Do-nothing-until-it-wedges.
    pub reactive: ModeOutcome,
    /// Fixed-cadence warm rejuvenation.
    pub time_based: ModeOutcome,
    /// Trend-triggered warm rejuvenation.
    pub adaptive: ModeOutcome,
}

const LEAK_PER_TEARDOWN: u64 = 1536 * 1024;
const CHURN: SimDuration = SimDuration::from_secs(600);

fn leaky_host(vms: u32) -> HostSim {
    let mut sim = booted_host(vms, ServiceKind::Ssh);
    sim.host_mut().vmm_mut().leak_per_domain_destroy = LEAK_PER_TEARDOWN;
    sim
}

fn policy() -> AdaptivePolicy {
    AdaptivePolicy {
        sample_interval: SimDuration::from_secs(600),
        lead: SimDuration::from_secs(1800),
        window: 6,
    }
}

fn total_downtime(sim: &HostSim, horizon: SimDuration) -> f64 {
    let end = rh_sim::time::SimTime::ZERO + horizon;
    sim.host()
        .domu_ids()
        .iter()
        .filter_map(|g| sim.host().meter(*g))
        .map(|m| {
            let closed: f64 = m.outages().iter().map(|o| o.duration().as_secs_f64()).sum();
            let open = m
                .down_since()
                .map(|t| end.saturating_duration_since(t).as_secs_f64())
                .unwrap_or(0.0);
            closed + open
        })
        .sum()
}

/// Runs all three modes over `horizon` on `vms`-guest hosts.
pub fn run(vms: u32, horizon: SimDuration) -> ReliabilityResult {
    // Reactive: churn with no policy; when the heap wedges (errors
    // appear), crash-recover, then keep churning.
    let reactive = {
        let mut sim = leaky_host(vms);
        let mut recoveries = 0u64;
        let outcome = run_adaptive(&mut sim, &policy(), CHURN, horizon, false);
        // The control run leaves wedged guests; a watchdog would crash
        // the host. Count one recovery per error burst observed.
        if outcome.vmm_errors > 0 {
            sim.crash_and_recover();
            recoveries += 1;
        }
        ModeOutcome {
            rejuvenations: recoveries,
            vmm_errors: outcome.vmm_errors,
            downtime_secs: total_downtime(&sim, horizon),
        }
    };
    // Time-based: warm-rejuvenate hourly regardless of actual aging —
    // the cadence must out-run the worst-case leak, so it overshoots.
    let time_based = {
        let mut sim = leaky_host(vms);
        let end = horizon;
        let mut elapsed = SimDuration::ZERO;
        let step = SimDuration::from_secs(3600);
        let mut count = 0u64;
        let mut churn_round = 0usize;
        while elapsed + step <= end {
            // Churn within the window.
            let churns = step.as_micros() / CHURN.as_micros();
            for _ in 0..churns {
                let guests = sim.host().domu_ids();
                let victim = guests[churn_round % guests.len()];
                churn_round += 1;
                sim.run_for(CHURN);
                let errors_before = sim.host().errors().len();
                {
                    let (host, sched) = sim.simulation_mut().parts_mut();
                    if !host.reboot_in_progress() {
                        host.os_reboot(sched, victim);
                    }
                }
                sim.run_until(SimDuration::from_secs(600), |h| {
                    h.domain(victim).map(|d| d.service_up()).unwrap_or(false)
                        || h.errors().len() > errors_before
                });
            }
            sim.reboot_and_wait(RebootStrategy::Warm);
            count += 1;
            elapsed += step;
        }
        ModeOutcome {
            rejuvenations: count,
            vmm_errors: sim.host().errors().len(),
            downtime_secs: total_downtime(&sim, horizon),
        }
    };
    // Adaptive: rejuvenate on the trend.
    let adaptive = {
        let mut sim = leaky_host(vms);
        let outcome = run_adaptive(&mut sim, &policy(), CHURN, horizon, true);
        ModeOutcome {
            rejuvenations: outcome.rejuvenations,
            vmm_errors: outcome.vmm_errors,
            downtime_secs: outcome.total_downtime.as_secs_f64(),
        }
    };
    ReliabilityResult {
        reactive,
        time_based,
        adaptive,
    }
}

/// Renders the comparison.
pub fn render(r: &ReliabilityResult) -> String {
    let row = |name: &str, m: &ModeOutcome| {
        format!(
            "{name:<12} {:>14} {:>12} {:>16.0}\n",
            m.rejuvenations, m.vmm_errors, m.downtime_secs
        )
    };
    format!(
        "## reliability under an injected VMM heap leak\n\
         mode         rejuvenations   vmm errors   downtime (s)\n{}{}{}",
        row("reactive", &r.reactive),
        row("time-based", &r.time_based),
        row("adaptive", &r.adaptive),
    )
}

/// One point of the fault sweep: a fault rate handled by one recovery
/// policy over the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPointResult {
    /// Mean VMM crash arrivals per hour (Poisson).
    pub rate_per_hour: f64,
    /// How incidents were recovered.
    pub policy: RecoveryPolicy,
    /// Crash incidents that actually arrived within the horizon.
    pub incidents: u64,
    /// Mean time to repair across incidents (s); 0 with no incidents.
    pub mean_mttr_secs: f64,
    /// Fraction of affected guests salvaged with state intact.
    pub salvage_fraction: f64,
    /// Per-service availability over the horizon, in `[0, 1]`.
    pub availability: f64,
}

/// Per-service downtime overlapping the `[start, end]` window (s).
fn downtime_in_window(sim: &HostSim, start: SimTime, end: SimTime) -> f64 {
    sim.host()
        .domu_ids()
        .iter()
        .filter_map(|g| sim.host().meter(*g))
        .map(|m| {
            let closed: f64 = m
                .outages()
                .iter()
                .map(|o| {
                    let s = o.start.max(start);
                    let e = o.end.min(end);
                    if e > s {
                        (e - s).as_secs_f64()
                    } else {
                        0.0
                    }
                })
                .sum();
            let open = m
                .down_since()
                .map(|t| {
                    let s = t.max(start);
                    if end > s {
                        (end - s).as_secs_f64()
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            closed + open
        })
        .sum()
}

/// Runs one fault-sweep point: crashes arrive with exponential gaps of
/// mean `3600 / rate_per_hour` seconds, each recovered under `policy`.
///
/// One in four incidents also corrupts a random frozen guest's memory
/// while the replacement VMM loads (a [`FaultPlan`] armed for the
/// incident), exercising the validation fallback on the micro-reboot
/// path. All randomness — gaps, victims, corruption masks — comes from
/// `rng`, so the point replays identically for a given stream.
pub fn run_fault_point(
    vms: u32,
    rate_per_hour: f64,
    policy: RecoveryPolicy,
    horizon: SimDuration,
    mut rng: SimRng,
) -> FaultPointResult {
    let mut sim = booted_host(vms, ServiceKind::Ssh);
    let start = sim.now();
    let end = start + horizon;
    let mean_gap_secs = 3600.0 / rate_per_hour;
    let cfg = RecoveryConfig::new(policy);

    let mut incidents = 0u64;
    let mut mttr_total = 0.0f64;
    let mut salvaged = 0u64;
    let mut affected = 0u64;
    loop {
        let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap_secs));
        if sim.now() + gap >= end {
            break;
        }
        sim.run_for(gap);
        let corrupting = rng.chance(0.25);
        if corrupting {
            let victim = DomainId(1 + rng.below(u64::from(vms)) as u32);
            let plan = FaultPlan::new(rng.next_u64()).arm(
                InjectPoint::QuickReload,
                Trigger::Always,
                FaultKind::FrameCorruption(victim),
            );
            sim.host_mut()
                .arm_fault_hook(Box::new(Injector::new(&plan)));
        }
        {
            let (host, sched) = sim.simulation_mut().parts_mut();
            host.fault_vmm_crash(sched);
        }
        let Some(report) = watch_and_recover(&mut sim, &cfg) else {
            break; // unrecoverable within the cap; stop the point
        };
        if corrupting {
            sim.host_mut().disarm_fault_hook();
        }
        incidents += 1;
        mttr_total += report.mttr().as_secs_f64();
        salvaged += report.salvaged.len() as u64;
        affected += (report.salvaged.len() + report.lost.len()) as u64;
    }
    if sim.now() < end {
        sim.run_for(end - sim.now());
    }

    let down = downtime_in_window(&sim, start, end);
    let service_seconds = f64::from(vms) * horizon.as_secs_f64();
    FaultPointResult {
        rate_per_hour,
        policy,
        incidents,
        mean_mttr_secs: if incidents > 0 {
            mttr_total / incidents as f64
        } else {
            0.0
        },
        salvage_fraction: if affected > 0 {
            salvaged as f64 / affected as f64
        } else {
            1.0
        },
        availability: 1.0 - down / service_seconds,
    }
}

/// Sweeps fault rates × both recovery policies across `jobs` workers,
/// deterministically: point `i` sees only stream `i` of `seed`, so the
/// output is byte-identical at any worker count.
pub fn fault_sweep(
    vms: u32,
    rates_per_hour: &[f64],
    horizon: SimDuration,
    seed: u64,
    jobs: usize,
) -> Vec<FaultPointResult> {
    let mut sweep = Sweep::new(seed);
    for &rate in rates_per_hour {
        for policy in [RecoveryPolicy::Microreboot, RecoveryPolicy::ColdReboot] {
            sweep.point(format!("faults/{rate}per_h/{policy}"), move |rng| {
                run_fault_point(vms, rate, policy, horizon, rng)
            });
        }
    }
    sweep.run_values(jobs)
}

/// Renders the fault sweep as availability/MTTR curves vs fault rate.
pub fn render_fault_sweep(points: &[FaultPointResult], vms: u32, horizon: SimDuration) -> String {
    let mut out = format!(
        "## availability under Poisson VMM crashes ({vms} guests, {:.1} h horizon)\n\
         rate (1/h)   recovery       incidents   mean MTTR (s)   salvaged   availability\n",
        horizon.as_secs_f64() / 3600.0
    );
    for p in points {
        out.push_str(&format!(
            "{:<12.2} {:<14} {:>9} {:>15.1} {:>9.2} {:>14.6}\n",
            p.rate_per_hour,
            p.policy.to_string(),
            p.incidents,
            p.mean_mttr_secs,
            p.salvage_fraction,
            p.availability,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proactive_modes_avoid_errors_reactive_does_not() {
        let r = run(3, SimDuration::from_secs(24 * 3600));
        assert!(r.reactive.vmm_errors > 0, "reactive must hit exhaustion");
        assert_eq!(r.time_based.vmm_errors, 0, "time-based prevents exhaustion");
        assert_eq!(r.adaptive.vmm_errors, 0, "adaptive prevents exhaustion");
        // Adaptive fires no more often than the fixed cadence.
        assert!(r.adaptive.rejuvenations <= r.time_based.rejuvenations);
        assert!(r.adaptive.rejuvenations >= 1);
        // Both proactive modes beat the reactive downtime.
        assert!(r.adaptive.downtime_secs < r.reactive.downtime_secs);
        assert!(r.time_based.downtime_secs < r.reactive.downtime_secs);
        assert!(render(&r).contains("adaptive"));
    }

    #[test]
    fn fault_sweep_is_deterministic_across_worker_counts() {
        let rates = [2.0];
        let horizon = SimDuration::from_secs(2 * 3600);
        let serial = fault_sweep(3, &rates, horizon, 7, 1);
        let parallel = fault_sweep(3, &rates, horizon, 7, 2);
        assert_eq!(serial, parallel, "results must not depend on --jobs");
        assert_eq!(
            render_fault_sweep(&serial, 3, horizon),
            render_fault_sweep(&parallel, 3, horizon)
        );
    }

    #[test]
    fn microreboot_beats_cold_reboot_on_availability_and_mttr() {
        let points = fault_sweep(3, &[4.0], SimDuration::from_secs(4 * 3600), 2007, 2);
        let warm = points
            .iter()
            .find(|p| p.policy == RecoveryPolicy::Microreboot)
            .expect("warm point");
        let cold = points
            .iter()
            .find(|p| p.policy == RecoveryPolicy::ColdReboot)
            .expect("cold point");
        assert!(warm.incidents > 0, "faults must actually arrive");
        assert!(
            warm.mean_mttr_secs * 2.0 < cold.mean_mttr_secs,
            "warm MTTR {} vs cold {}",
            warm.mean_mttr_secs,
            cold.mean_mttr_secs
        );
        assert!(warm.availability > cold.availability);
        // Micro-reboot salvages most guests; cold reboot salvages none.
        assert!(warm.salvage_fraction > 0.5);
        assert_eq!(cold.salvage_fraction, 0.0);
    }
}
