//! Regenerates §5.2: quick reload vs hardware reset.
fn main() {
    let r = rh_bench::sec52::run();
    println!("{}", rh_bench::sec52::render(&r));
}
