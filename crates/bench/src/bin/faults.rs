//! Availability and MTTR vs VMM fault rate: ReHype-style micro-reboot
//! recovery against cold-reboot-on-failure, under Poisson crash
//! arrivals. Deterministic at any `--jobs` worker count.
//!
//! Usage: `faults [--jobs N] [--quick]`
use rh_bench::exec::{parse_jobs, DEFAULT_SEED};
use rh_bench::reliability::{fault_sweep, render_fault_sweep};
use rh_sim::time::SimDuration;

fn main() {
    let mut jobs = 1;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                match parse_jobs(&v) {
                    Ok(n) => jobs = n,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument {other:?}; usage: faults [--jobs N] [--quick]");
                std::process::exit(2);
            }
        }
    }
    let (vms, rates, horizon): (u32, &[f64], SimDuration) = if quick {
        (3, &[1.0, 4.0], SimDuration::from_secs(2 * 3600))
    } else {
        (4, &[0.5, 1.0, 2.0, 4.0], SimDuration::from_secs(6 * 3600))
    };
    let points = fault_sweep(vms, rates, horizon, DEFAULT_SEED, jobs);
    print!("{}", render_fault_sweep(&points, vms, horizon));
}
