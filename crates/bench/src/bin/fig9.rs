//! Regenerates Figure 9 / §6: cluster total throughput under rejuvenation.
fn main() {
    let r = rh_bench::fig9::run(4, 215.0, 11);
    println!("{}", rh_bench::fig9::render(&r));
    let horizon = rh_sim::time::SimDuration::from_secs(3600);
    let at = rh_sim::time::SimTime::from_secs(600);
    let m = rh_cluster::migration::MigrationModel::paper();
    println!(
        "warm series CSV:\n{}",
        r.scenario.warm_series(at, horizon).to_csv()
    );
    println!(
        "cold series CSV:\n{}",
        r.scenario.cold_series(at, horizon).to_csv()
    );
    println!(
        "migration series CSV:\n{}",
        r.scenario.migration_series(&m, at, horizon).to_csv()
    );
}
