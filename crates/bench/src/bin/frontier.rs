//! Regenerates the five-strategy frontier (DESIGN.md §15): downtime vs
//! post-reboot degradation across memory size × disk bandwidth × locality.
//!
//! Flags:
//!
//! * `--jobs N` — sweep workers (default 1, 0 = all CPUs). Stdout is
//!   byte-identical for every worker count (the verify.sh gate).
//! * `--quick` — 1 GiB VMs only (smoke grid).
//! * `--json PATH` — machine-readable run record (same hardened format as
//!   `BENCH_repro.json`); `-` disables. Default off.

use rh_bench::exec;
use rh_bench::frontier;
use rh_vmm::config::RebootStrategy;

const USAGE: &str = "usage: frontier [--jobs N] [--quick] [--json PATH]";

fn main() {
    let mut jobs = 1;
    let mut quick = false;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value; {USAGE}"))
        };
        let parsed = match arg.as_str() {
            "--jobs" => value("--jobs")
                .and_then(|v| exec::parse_jobs(&v))
                .map(|j| jobs = j),
            "--quick" => {
                quick = true;
                Ok(())
            }
            "--json" => value("--json").map(|path| {
                json = if path == "-" { None } else { Some(path) };
            }),
            other => Err(format!("unknown argument {other:?}; {USAGE}")),
        };
        if let Err(e) = parsed {
            eprintln!("frontier: {e}");
            std::process::exit(2);
        }
    }

    let start = std::time::Instant::now();
    let results = frontier::sweep_points(&frontier::grid(quick)).run(jobs);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for r in &results {
        points.push(rh_bench::json::ReproPoint {
            name: r.name.clone(),
            wall_ms: r.wall.as_secs_f64() * 1e3,
            spans: r
                .profile
                .spans()
                .iter()
                .map(|s| (s.label.clone(), s.elapsed.as_secs_f64() * 1e3))
                .collect(),
            ok: r.outcome.is_ok(),
        });
        match &r.outcome {
            Ok(p) => rows.push(*p),
            Err(e) => println!("!! point {:?} failed: {e}\n", r.name),
        }
    }
    println!("{}", frontier::render(&rows));

    if let Some(path) = &json {
        let headline: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| r.cell.mem_gib == 1 && r.cell.disk_mbps == 85)
            .map(|r| {
                let suffix = if r.cell.strategy == RebootStrategy::Streamed {
                    format!("_loc{:.2}", r.cell.locality)
                } else {
                    String::new()
                };
                (
                    format!("frontier_{}{suffix}_downtime_s", r.cell.strategy),
                    r.downtime_s,
                )
            })
            .collect();
        let doc = rh_bench::json::repro_document(
            &[("jobs", jobs.to_string()), ("quick", quick.to_string())],
            start.elapsed().as_secs_f64() * 1e3,
            &points,
            &headline,
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("frontier: failed to write {path}: {e}");
        }
    }
}
