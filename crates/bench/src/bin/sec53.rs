//! Regenerates §5.3: availability comparison.
fn main() {
    let r = rh_bench::sec53::run();
    println!("{}", rh_bench::sec53::render(&r));
}
