//! Engine-throughput suite with a committed baseline and a regression
//! gate (`cargo run --release -p rh-bench --bin corebench`).
//!
//! Times the DES hot path and the rh-memory digest machinery (see
//! [`rh_bench::core`] and PERFORMANCE.md), prints a summary table to
//! stdout, and optionally:
//!
//! * `--json PATH` — writes the `BENCH_core.json` document to `PATH`
//!   (`-` for stdout);
//! * `--gate BASELINE` — diffs this run against a committed baseline and
//!   exits 1 if any benchmark's throughput dropped more than the
//!   tolerance;
//! * `--tolerance PCT` — gate tolerance in percent (default 15);
//! * `--quick` — 5 samples per benchmark (verify-time profile);
//! * `--iters N` — explicit sample count (default 10, the full profile).
//!
//! Workload sizes never change with the profile, so a `--quick` run is
//! directly comparable against the committed full-profile baseline.

use std::process::ExitCode;

use rh_bench::core::{gate_against, render_table, run_suite, to_json};

const USAGE: &str =
    "usage: corebench [--iters N] [--quick] [--json PATH] [--gate BASELINE] [--tolerance PCT]";

struct Options {
    samples: u32,
    profile: &'static str,
    json: Option<String>,
    gate: Option<String>,
    tolerance: f64,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        samples: 10,
        profile: "full",
        json: None,
        gate: None,
        tolerance: 15.0,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value; {USAGE}"))
        };
        match arg.as_str() {
            "--iters" => {
                opts.samples = value("--iters")?
                    .parse()
                    .map_err(|_| format!("--iters: not a number; {USAGE}"))?;
                if opts.samples == 0 {
                    return Err(format!("--iters must be at least 1; {USAGE}"));
                }
            }
            "--quick" => {
                opts.samples = 5;
                opts.profile = "quick";
            }
            "--json" => opts.json = Some(value("--json")?),
            "--gate" => opts.gate = Some(value("--gate")?),
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| format!("--tolerance: not a number; {USAGE}"))?;
                if !(opts.tolerance > 0.0) {
                    return Err(format!("--tolerance must be positive; {USAGE}"));
                }
            }
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("corebench: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "corebench: {} profile, {} samples per benchmark",
        opts.profile, opts.samples
    );
    let results = run_suite(opts.samples);
    print!("{}", render_table(&results));

    if let Some(path) = &opts.json {
        let json = to_json(&results, opts.profile, opts.samples);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("corebench: cannot write {path}: {e}");
            return ExitCode::from(2);
        } else {
            eprintln!("corebench: wrote {path}");
        }
    }

    if let Some(baseline_path) = &opts.gate {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("corebench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = gate_against(&results, &baseline, opts.tolerance);
        println!(
            "## bench gate vs {baseline_path} (tolerance {}%)",
            opts.tolerance
        );
        print!("{}", report.table);
        if !report.passed() {
            eprintln!(
                "corebench: throughput regression beyond {}%: {}",
                opts.tolerance,
                report.regressions.join(", ")
            );
            return ExitCode::FAILURE;
        }
        println!("bench gate: ok");
    }
    ExitCode::SUCCESS
}
