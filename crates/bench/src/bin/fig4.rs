//! Regenerates Figure 4: pre/post-reboot task times vs VM memory size.
fn main() {
    let rows = rh_bench::fig45::fig4(1..=11);
    println!(
        "{}",
        rh_bench::fig45::render("fig4: task times vs memory size (1 VM, GiB)", "GiB", &rows)
    );
}
