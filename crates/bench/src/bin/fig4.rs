//! Regenerates Figure 4: pre/post-reboot task times vs VM memory size.
//! Accepts `--jobs N` (default 1, 0 = all CPUs).
fn main() {
    let jobs = match rh_bench::exec::jobs_from_args(std::env::args().skip(1)) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("fig4: {e}");
            std::process::exit(2);
        }
    };
    let rows = rh_bench::fig45::fig4(1..=11, jobs);
    println!(
        "{}",
        rh_bench::fig45::render("fig4: task times vs memory size (1 VM, GiB)", "GiB", &rows)
    );
}
