//! Regenerates Figure 5: pre/post-reboot task times vs number of VMs.
//! Accepts `--jobs N` (default 1, 0 = all CPUs).
fn main() {
    let jobs = match rh_bench::exec::jobs_from_args(std::env::args().skip(1)) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("fig5: {e}");
            std::process::exit(2);
        }
    };
    let rows = rh_bench::fig45::fig5(1..=11, jobs);
    println!(
        "{}",
        rh_bench::fig45::render("fig5: task times vs number of VMs (1 GiB each)", "n", &rows)
    );
}
