//! Regenerates Figure 5: pre/post-reboot task times vs number of VMs.
fn main() {
    let rows = rh_bench::fig45::fig5(1..=11);
    println!(
        "{}",
        rh_bench::fig45::render("fig5: task times vs number of VMs (1 GiB each)", "n", &rows)
    );
}
