//! Runs the reliability experiment: reactive vs time-based vs adaptive
//! rejuvenation under an injected VMM heap leak.
use rh_sim::time::SimDuration;
fn main() {
    let r = rh_bench::reliability::run(4, SimDuration::from_secs(24 * 3600));
    println!("{}", rh_bench::reliability::render(&r));
}
