//! Regenerates every table and figure in one run (EXPERIMENTS.md source).
use rh_guest::services::ServiceKind;
use rh_vmm::config::RebootStrategy;

fn main() {
    println!("RootHammer-RS: full reproduction run\n=====================================\n");
    let rows = rh_bench::fig45::fig4(1..=11);
    println!(
        "{}",
        rh_bench::fig45::render("fig4: task times vs memory size (1 VM, GiB)", "GiB", &rows)
    );
    let rows = rh_bench::fig45::fig5(1..=11);
    println!(
        "{}",
        rh_bench::fig45::render("fig5: task times vs number of VMs (1 GiB each)", "n", &rows)
    );
    println!("{}", rh_bench::sec52::render(&rh_bench::sec52::run()));
    let ssh = rh_bench::fig6::sweep(ServiceKind::Ssh, 1..=11);
    println!(
        "{}",
        rh_bench::fig6::render("fig6a: ssh downtime (s)", &ssh)
    );
    let fates = rh_bench::fig6::session_fates(ssh.last().unwrap(), 60);
    println!(
        "ssh session with 60 s client timeout at n=11: warm {}, saved {}, cold {}\n",
        fates.warm, fates.saved, fates.cold
    );
    let jboss = rh_bench::fig6::sweep(ServiceKind::Jboss, 1..=11);
    println!(
        "{}",
        rh_bench::fig6::render("fig6b: JBoss downtime (s)", &jboss)
    );
    println!("{}", rh_bench::sec53::render(&rh_bench::sec53::run()));
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        println!(
            "{}",
            rh_bench::fig7::render_phases(&rh_bench::fig7::run(strategy))
        );
    }
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        println!(
            "{}",
            rh_bench::fig8::render(&rh_bench::fig8::run(strategy, 10_000))
        );
    }
    println!("{}", rh_bench::sec56::render(&rh_bench::sec56::run(1..=11)));
    println!(
        "{}",
        rh_bench::fig9::render(&rh_bench::fig9::run(4, 215.0, 11))
    );
    let s = rh_bench::ablations::suspend_order(11);
    let r = rh_bench::ablations::reservation_order();
    println!("{}", rh_bench::ablations::render(&s, &r));
    let d = rh_bench::ablations::driver_domains(11, 2);
    println!("{}", rh_bench::ablations::render_driver_domains(&d));
    let rel = rh_bench::reliability::run(4, rh_sim::time::SimDuration::from_secs(24 * 3600));
    println!("{}", rh_bench::reliability::render(&rel));
}
