//! Regenerates every table and figure in one run (EXPERIMENTS.md source).
//!
//! Flags:
//!
//! * `--jobs N` — workers for the sweep executor (default 1; 0 = all CPUs).
//!   Output on stdout is byte-identical for every worker count
//!   (DESIGN.md §10).
//! * `--max-n N` — cap the swept VM count / memory size (default 11, the
//!   paper's range). Smaller values make smoke runs fast.
//! * `--quick` — reduced fig8 corpus (500 files instead of 10 000) and a
//!   6 h reliability horizon instead of 24 h.
//! * `--json PATH` — machine-readable run record (per-point wall time +
//!   per-phase wall spans + headline figures). Default `BENCH_repro.json`;
//!   `-` disables. Wall times are the only nondeterministic output, and
//!   they go only here, never to stdout.
//! * `--trace-jsonl PATH` — dump the typed rh-obs event stream of a
//!   canonical 2-domain warm and cold reboot as JSON Lines. Byte-identical
//!   for every `--jobs` count (the traced reboots run through the same
//!   deterministic executor).

use std::time::{Duration, Instant};

use rh_bench::exec::{self, PointResult, Sweep, DEFAULT_SEED};
use rh_guest::services::ServiceKind;
use rh_vmm::config::RebootStrategy;

const USAGE: &str =
    "usage: all [--jobs N] [--max-n N] [--quick] [--json PATH] [--trace-jsonl PATH]";

struct Options {
    jobs: usize,
    max_n: u32,
    quick: bool,
    json: Option<String>,
    trace_jsonl: Option<String>,
}

impl Options {
    fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = Options {
            jobs: 1,
            max_n: 11,
            quick: false,
            json: Some("BENCH_repro.json".to_string()),
            trace_jsonl: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value; {USAGE}"))
            };
            match arg.as_str() {
                "--jobs" => opts.jobs = exec::parse_jobs(&value("--jobs")?)?,
                "--max-n" => {
                    opts.max_n = value("--max-n")?
                        .parse()
                        .map_err(|_| format!("--max-n: not a number; {USAGE}"))?;
                    if opts.max_n == 0 {
                        return Err(format!("--max-n must be at least 1; {USAGE}"));
                    }
                }
                "--quick" => opts.quick = true,
                "--json" => {
                    let path = value("--json")?;
                    opts.json = if path == "-" { None } else { Some(path) };
                }
                "--trace-jsonl" => opts.trace_jsonl = Some(value("--trace-jsonl")?),
                other => return Err(format!("unknown argument {other:?}; {USAGE}")),
            }
        }
        Ok(opts)
    }
}

/// One executed point's record for BENCH_repro.json.
struct Record {
    name: String,
    wall: Duration,
    profile: rh_obs::WallProfile,
    ok: bool,
}

/// Appends every point's wall time to `records` and prints failed points
/// to stdout (deterministically).
fn record<T>(records: &mut Vec<Record>, results: &[PointResult<T>]) {
    for r in results {
        records.push(Record {
            name: r.name.clone(),
            wall: r.wall,
            profile: r.profile.clone(),
            ok: r.outcome.is_ok(),
        });
        if let Err(e) = &r.outcome {
            println!("!! point {:?} failed: {e}\n", r.name);
        }
    }
}

/// Runs a sweep, records every point, and returns the successful values in
/// submission order.
fn run_sweep<T: Send + 'static>(records: &mut Vec<Record>, sweep: Sweep<T>, jobs: usize) -> Vec<T> {
    let mut results = sweep.run(jobs);
    record(records, &results);
    results.drain(..).filter_map(|r| r.into_value()).collect()
}

/// Runs a non-sweep experiment as a single named point so its wall time
/// still lands in the run record.
fn one<T: Send + 'static>(
    records: &mut Vec<Record>,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> Option<T> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    sweep.point(name, move |_rng| f());
    run_sweep(records, sweep, 1).pop()
}

fn write_repro_json(
    path: &str,
    opts: &Options,
    records: &[Record],
    headline: &[(String, f64)],
    total: Duration,
) {
    // The shared emitter hardens the document (escaped names, NaN→null);
    // rh_bench::json::tests prove whole-file validity for hostile inputs.
    let points: Vec<rh_bench::json::ReproPoint> = records
        .iter()
        .map(|r| rh_bench::json::ReproPoint {
            name: r.name.clone(),
            wall_ms: r.wall.as_secs_f64() * 1e3,
            spans: r
                .profile
                .spans()
                .iter()
                .map(|s| (s.label.clone(), s.elapsed.as_secs_f64() * 1e3))
                .collect(),
            ok: r.ok,
        })
        .collect();
    let json = rh_bench::json::repro_document(
        &[
            ("jobs", opts.jobs.to_string()),
            ("max_n", opts.max_n.to_string()),
            ("quick", opts.quick.to_string()),
        ],
        total.as_secs_f64() * 1e3,
        &points,
        headline,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("all: failed to write {path}: {e}");
    }
}

fn main() {
    let opts = match Options::from_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("all: {e}");
            std::process::exit(2);
        }
    };
    let total = Instant::now();
    let mut records: Vec<Record> = Vec::new();
    let mut headline: Vec<(String, f64)> = Vec::new();
    let jobs = opts.jobs;
    let max_n = opts.max_n;

    println!("RootHammer-RS: full reproduction run\n=====================================\n");

    let rows = run_sweep(
        &mut records,
        rh_bench::fig45::fig4_sweep(1..=u64::from(max_n)),
        jobs,
    );
    println!(
        "{}",
        rh_bench::fig45::render("fig4: task times vs memory size (1 VM, GiB)", "GiB", &rows)
    );
    let rows = run_sweep(&mut records, rh_bench::fig45::fig5_sweep(1..=max_n), jobs);
    println!(
        "{}",
        rh_bench::fig45::render("fig5: task times vs number of VMs (1 GiB each)", "n", &rows)
    );

    if let Some(r) = one(&mut records, "sec52", rh_bench::sec52::run) {
        println!("{}", rh_bench::sec52::render(&r));
        headline.push(("sec52_saving_s".to_string(), r.saving()));
    }

    let ssh = run_sweep(
        &mut records,
        rh_bench::fig6::sweep_points(ServiceKind::Ssh, 1..=max_n),
        jobs,
    );
    println!(
        "{}",
        rh_bench::fig6::render("fig6a: ssh downtime (s)", &ssh)
    );
    if let Some(last) = ssh.last() {
        let fates = rh_bench::fig6::session_fates(last, 60);
        println!(
            "ssh session with 60 s client timeout at n={}: warm {}, saved {}, cold {}\n",
            last.n, fates.warm, fates.saved, fates.cold
        );
        headline.push((format!("fig6a_warm_downtime_s_at_{}vms", last.n), last.warm));
        headline.push((
            format!("fig6a_saved_downtime_s_at_{}vms", last.n),
            last.saved,
        ));
        headline.push((format!("fig6a_cold_downtime_s_at_{}vms", last.n), last.cold));
    }
    let jboss = run_sweep(
        &mut records,
        rh_bench::fig6::sweep_points(ServiceKind::Jboss, 1..=max_n),
        jobs,
    );
    println!(
        "{}",
        rh_bench::fig6::render("fig6b: JBoss downtime (s)", &jboss)
    );

    if let Some(r) = one(&mut records, "sec53", rh_bench::sec53::run) {
        println!("{}", rh_bench::sec53::render(&r));
    }

    let mut fig7 = Sweep::new(DEFAULT_SEED);
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        fig7.point(format!("fig7/{strategy}"), move |_rng| {
            rh_bench::fig7::run(strategy)
        });
    }
    for trace in run_sweep(&mut records, fig7, jobs) {
        match trace {
            Ok(t) => println!("{}", rh_bench::fig7::render_phases(&t)),
            Err(e) => println!("!! fig7 trace failed: {e}\n"),
        }
    }

    let web_files = if opts.quick { 500 } else { 10_000 };
    let mut fig8 = Sweep::new(DEFAULT_SEED);
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        fig8.point(format!("fig8/{strategy}"), move |_rng| {
            rh_bench::fig8::run(strategy, web_files)
        });
    }
    for r in run_sweep(&mut records, fig8, jobs) {
        println!("{}", rh_bench::fig8::render(&r));
        if r.strategy == RebootStrategy::Cold {
            headline.push((
                "fig8_cold_file_read_degradation".to_string(),
                r.file_read.degradation(),
            ));
            headline.push(("fig8_cold_web_degradation".to_string(), r.web.degradation()));
        }
    }

    let points = run_sweep(&mut records, rh_bench::sec56::sweep_points(1..=max_n), jobs);
    match rh_bench::sec56::fit_points(&points) {
        Ok(r) => {
            println!("{}", rh_bench::sec56::render(&r));
            headline.push((
                format!("sec56_saving_s_at_{max_n}vms_alpha05"),
                r.fitted.saving(f64::from(max_n), 0.5),
            ));
        }
        Err(e) => println!("!! sec56 model fit failed: {e}\n"),
    }

    if let Some(r) = one(&mut records, "fig9", move || {
        rh_bench::fig9::run(4, 215.0, max_n)
    }) {
        println!("{}", rh_bench::fig9::render(&r));
    }

    let suspend_results = rh_bench::ablations::suspend_order_points(max_n).run(jobs);
    record(&mut records, &suspend_results);
    let suspend_value = |i: usize| {
        suspend_results
            .get(i)
            .and_then(|r| r.value().copied())
            .unwrap_or(f64::NAN)
    };
    let suspend = rh_bench::ablations::SuspendOrderResult {
        paper_order: suspend_value(0),
        xen_order: suspend_value(1),
    };
    match one(
        &mut records,
        "ablations/reservation-order",
        rh_bench::ablations::reservation_order,
    ) {
        Some(Ok(r)) => println!("{}", rh_bench::ablations::render(&suspend, &r)),
        Some(Err(e)) => println!("!! reservation-order ablation failed: {e}\n"),
        None => {}
    }
    let drivers = run_sweep(
        &mut records,
        rh_bench::ablations::driver_domain_points(max_n, 2.min(max_n - 1)),
        jobs,
    );
    let mut d = rh_bench::ablations::DriverDomainResult {
        ordinary_downtime: Vec::new(),
        driver_downtime: Vec::new(),
    };
    for (k, ord, drv) in drivers {
        d.ordinary_downtime.push((k, ord));
        d.driver_downtime.push((k, drv));
    }
    println!("{}", rh_bench::ablations::render_driver_domains(&d));

    let horizon_secs = if opts.quick { 6 * 3600 } else { 24 * 3600 };
    if let Some(rel) = one(&mut records, "reliability", move || {
        rh_bench::reliability::run(4, rh_sim::time::SimDuration::from_secs(horizon_secs))
    }) {
        println!("{}", rh_bench::reliability::render(&rel));
    }

    if let Some(path) = &opts.trace_jsonl {
        // Typed event streams of a canonical warm and cold reboot, dumped
        // as JSON Lines. Runs through the executor so any `--jobs` count
        // produces byte-identical output (the verify.sh determinism gate).
        let mut sweep = Sweep::new(DEFAULT_SEED);
        for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
            sweep.point(format!("trace/{strategy}"), move |_rng| {
                let mut sim = rh_vmm::harness::booted_host(2, ServiceKind::Ssh);
                sim.reboot_and_wait(strategy);
                sim.host().trace.to_jsonl()
            });
        }
        let logs = run_sweep(&mut records, sweep, jobs);
        if let Err(e) = std::fs::write(path, logs.concat()) {
            eprintln!("all: failed to write {path}: {e}");
        }
    }

    if let Some(path) = &opts.json {
        write_repro_json(path, &opts, &records, &headline, total.elapsed());
    }
}
