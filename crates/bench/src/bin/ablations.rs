//! Runs the DESIGN.md ablations. Accepts `--jobs N` (default 1, 0 = all
//! CPUs).
fn main() {
    let jobs = match rh_bench::exec::jobs_from_args(std::env::args().skip(1)) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("ablations: {e}");
            std::process::exit(2);
        }
    };
    let s = rh_bench::ablations::suspend_order(11, jobs);
    let r = match rh_bench::ablations::reservation_order() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ablations: reservation-order ablation failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", rh_bench::ablations::render(&s, &r));
    let d = rh_bench::ablations::driver_domains(11, 2, jobs);
    println!("{}", rh_bench::ablations::render_driver_domains(&d));
}
