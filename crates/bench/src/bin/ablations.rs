//! Runs the DESIGN.md ablations.
fn main() {
    let s = rh_bench::ablations::suspend_order(11);
    let r = rh_bench::ablations::reservation_order();
    println!("{}", rh_bench::ablations::render(&s, &r));
    let d = rh_bench::ablations::driver_domains(11, 2);
    println!("{}", rh_bench::ablations::render_driver_domains(&d));
}
