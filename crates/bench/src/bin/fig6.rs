//! Regenerates Figure 6: service downtime per strategy (ssh and JBoss).
//! Accepts `--jobs N` (default 1, 0 = all CPUs).
use rh_guest::services::ServiceKind;
fn main() {
    let jobs = match rh_bench::exec::jobs_from_args(std::env::args().skip(1)) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("fig6: {e}");
            std::process::exit(2);
        }
    };
    let ssh = rh_bench::fig6::sweep(ServiceKind::Ssh, 1..=11, jobs);
    println!(
        "{}",
        rh_bench::fig6::render("fig6a: ssh downtime (s)", &ssh)
    );
    if let Some(last) = ssh.last() {
        let fates = rh_bench::fig6::session_fates(last, 60);
        println!(
            "ssh session with 60 s client timeout at n={}: warm {}, saved {}, cold {}\n",
            last.n, fates.warm, fates.saved, fates.cold
        );
    }
    let jboss = rh_bench::fig6::sweep(ServiceKind::Jboss, 1..=11, jobs);
    println!(
        "{}",
        rh_bench::fig6::render("fig6b: JBoss downtime (s)", &jboss)
    );
}
