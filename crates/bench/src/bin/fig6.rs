//! Regenerates Figure 6: service downtime per strategy (ssh and JBoss).
use rh_guest::services::ServiceKind;
fn main() {
    let ssh = rh_bench::fig6::sweep(ServiceKind::Ssh, 1..=11);
    println!(
        "{}",
        rh_bench::fig6::render("fig6a: ssh downtime (s)", &ssh)
    );
    let fates = rh_bench::fig6::session_fates(ssh.last().unwrap(), 60);
    println!(
        "ssh session with 60 s client timeout at n=11: warm {}, saved {}, cold {}\n",
        fates.warm, fates.saved, fates.cold
    );
    let jboss = rh_bench::fig6::sweep(ServiceKind::Jboss, 1..=11);
    println!(
        "{}",
        rh_bench::fig6::render("fig6b: JBoss downtime (s)", &jboss)
    );
}
