//! Regenerates Figure 7: reboot phase breakdown + web throughput trace.
use rh_vmm::config::RebootStrategy;
fn main() {
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        match rh_bench::fig7::run(strategy) {
            Ok(trace) => {
                println!("{}", rh_bench::fig7::render_phases(&trace));
                println!("throughput trace (50-request windows), CSV:");
                println!("{}", trace.series.to_csv());
            }
            Err(e) => {
                eprintln!("fig7: {strategy} trace failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
