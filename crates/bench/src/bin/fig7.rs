//! Regenerates Figure 7: reboot phase breakdown + web throughput trace.
use rh_vmm::config::RebootStrategy;
fn main() {
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        let trace = rh_bench::fig7::run(strategy);
        println!("{}", rh_bench::fig7::render_phases(&trace));
        println!("throughput trace (50-request windows), CSV:");
        println!("{}", trace.series.to_csv());
    }
}
