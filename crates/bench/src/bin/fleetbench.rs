//! Datacenter fleet sweep: placement × campaign × fleet size, reporting
//! the SLA ledger of each combination (see `rh_bench::fleet`).
//!
//! Flags:
//!
//! * `--jobs N` — sweep workers (default 1, 0 = all CPUs). Stdout is
//!   byte-identical for every worker count (the verify.sh gate).
//! * `--quick` — 200-host smoke grid on a short horizon.
//! * `--json PATH` — machine-readable run record (same hardened format as
//!   `BENCH_repro.json`); `-` disables. Default off.

use rh_bench::exec;
use rh_bench::fleet;
use rh_fleet::config::CampaignMode;
use rh_fleet::placement::PlacementKind;
use rh_vmm::config::RebootStrategy;

const USAGE: &str = "usage: fleetbench [--jobs N] [--quick] [--json PATH]";

fn main() {
    let mut jobs = 1;
    let mut quick = false;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value; {USAGE}"))
        };
        let parsed = match arg.as_str() {
            "--jobs" => value("--jobs")
                .and_then(|v| exec::parse_jobs(&v))
                .map(|j| jobs = j),
            "--quick" => {
                quick = true;
                Ok(())
            }
            "--json" => value("--json").map(|path| {
                json = if path == "-" { None } else { Some(path) };
            }),
            other => Err(format!("unknown argument {other:?}; {USAGE}")),
        };
        if let Err(e) = parsed {
            eprintln!("fleetbench: {e}");
            std::process::exit(2);
        }
    }

    let start = std::time::Instant::now();
    let results = fleet::sweep_points(&fleet::grid(quick)).run(jobs);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for r in &results {
        points.push(rh_bench::json::ReproPoint {
            name: r.name.clone(),
            wall_ms: r.wall.as_secs_f64() * 1e3,
            spans: r
                .profile
                .spans()
                .iter()
                .map(|s| (s.label.clone(), s.elapsed.as_secs_f64() * 1e3))
                .collect(),
            ok: r.outcome.is_ok(),
        });
        match &r.outcome {
            Ok(p) => rows.push(*p),
            Err(e) => println!("!! point {:?} failed: {e}\n", r.name),
        }
    }
    println!("{}", fleet::render(&rows));

    if let Some(path) = &json {
        // Headline: the acceptance contrast at the smallest full-grid
        // size (or the quick grid's 200 hosts) — anti-affinity+streamed
        // vs first-fit+cold SLA violation seconds.
        let size = rows.iter().map(|r| r.cell.hosts).min().unwrap_or(0);
        let headline: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| {
                r.cell.hosts == size
                    && r.cell.mode == CampaignMode::InPlace
                    && ((r.cell.placement == PlacementKind::FirstFit
                        && r.cell.strategy == RebootStrategy::Cold)
                        || (r.cell.placement == PlacementKind::AntiAffinity
                            && r.cell.strategy == RebootStrategy::Streamed))
            })
            .map(|r| {
                (
                    format!(
                        "fleet_{}h_{}_{}_sla_violation_s",
                        r.cell.hosts, r.cell.placement, r.cell.strategy
                    ),
                    r.sla_violation_s,
                )
            })
            .collect();
        let doc = rh_bench::json::repro_document(
            &[("jobs", jobs.to_string()), ("quick", quick.to_string())],
            start.elapsed().as_secs_f64() * 1e3,
            &points,
            &headline,
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("fleetbench: failed to write {path}: {e}");
        }
    }
}
