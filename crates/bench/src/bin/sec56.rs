//! Regenerates §5.6: least-squares extraction of the downtime model.
fn main() {
    let r = rh_bench::sec56::run(1..=11);
    println!("{}", rh_bench::sec56::render(&r));
}
