//! Regenerates §5.6: least-squares extraction of the downtime model.
//! Accepts `--jobs N` (default 1, 0 = all CPUs).
fn main() {
    let jobs = match rh_bench::exec::jobs_from_args(std::env::args().skip(1)) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("sec56: {e}");
            std::process::exit(2);
        }
    };
    match rh_bench::sec56::run(1..=11, jobs) {
        Ok(r) => println!("{}", rh_bench::sec56::render(&r)),
        Err(e) => {
            eprintln!("sec56: model fit failed: {e}");
            std::process::exit(1);
        }
    }
}
