//! Regenerates Figure 8: file-read and web throughput before/after reboot.
use rh_vmm::config::RebootStrategy;
fn main() {
    for strategy in [RebootStrategy::Warm, RebootStrategy::Cold] {
        let r = rh_bench::fig8::run(strategy, 10_000);
        println!("{}", rh_bench::fig8::render(&r));
    }
}
