//! Serverless-cell sweep: arrival load × overcommit × provisioning
//! strategy, reporting cold-start percentiles and the memory ledger of
//! each combination (see `rh_bench::cell`).
//!
//! Flags:
//!
//! * `--jobs N` — sweep workers (default 1, 0 = all CPUs). Stdout is
//!   byte-identical for every worker count (the verify.sh gate).
//! * `--quick` — six-point smoke grid on a 600 s horizon.
//! * `--json PATH` — machine-readable run record (same hardened format as
//!   `BENCH_repro.json`); `-` disables. Default off.

use rh_bench::cell;
use rh_bench::exec;
use rh_cell::ProvisionStrategy;

const USAGE: &str = "usage: cellbench [--jobs N] [--quick] [--json PATH]";

fn main() {
    let mut jobs = 1;
    let mut quick = false;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value; {USAGE}"))
        };
        let parsed = match arg.as_str() {
            "--jobs" => value("--jobs")
                .and_then(|v| exec::parse_jobs(&v))
                .map(|j| jobs = j),
            "--quick" => {
                quick = true;
                Ok(())
            }
            "--json" => value("--json").map(|path| {
                json = if path == "-" { None } else { Some(path) };
            }),
            other => Err(format!("unknown argument {other:?}; {USAGE}")),
        };
        if let Err(e) = parsed {
            eprintln!("cellbench: {e}");
            std::process::exit(2);
        }
    }

    let start = std::time::Instant::now();
    let results = cell::sweep_points(&cell::grid(quick)).run(jobs);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for r in &results {
        points.push(rh_bench::json::ReproPoint {
            name: r.name.clone(),
            wall_ms: r.wall.as_secs_f64() * 1e3,
            spans: r
                .profile
                .spans()
                .iter()
                .map(|s| (s.label.clone(), s.elapsed.as_secs_f64() * 1e3))
                .collect(),
            ok: r.outcome.is_ok(),
        });
        match &r.outcome {
            Ok(p) => rows.push(*p),
            Err(e) => println!("!! point {:?} failed: {e}\n", r.name),
        }
    }
    println!("{}", cell::render(&rows));

    if let Some(path) = &json {
        // Headline: the acceptance contrast at the highest swept load —
        // P99 cold-start of cold re-provision vs balloon-reclaim at
        // 1.5× overcommit (milliseconds).
        let load = rows.iter().map(|r| r.cell.load).fold(0.0, f64::max);
        let headline: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| {
                // Grid cells carry exact literal constants, so a plain
                // equality on the 1.5x column would be sound — but the
                // float-eq lint is right that drift would be silent, so
                // match with a tolerance well under the grid spacing.
                r.cell.load == load
                    && (r.cell.overcommit - 1.5).abs() < 0.01
                    && (r.cell.strategy == ProvisionStrategy::Cold
                        || r.cell.strategy == ProvisionStrategy::BalloonReclaim)
            })
            .map(|r| {
                (
                    format!("cell_1.5x_{}_p99_cold_start_ms", r.cell.strategy),
                    r.p99.as_secs_f64() * 1e3,
                )
            })
            .collect();
        let doc = rh_bench::json::repro_document(
            &[("jobs", jobs.to_string()), ("quick", quick.to_string())],
            start.elapsed().as_secs_f64() * 1e3,
            &points,
            &headline,
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cellbench: failed to write {path}: {e}");
        }
    }
}
