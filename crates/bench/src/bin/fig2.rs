//! Renders Figure 2: the timing interaction between OS and VMM
//! rejuvenation under the warm (a) and cold (b) semantics.
use rh_rejuv::policy::{render_timeline, TimeBasedPolicy};
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::domain::DomainId;

fn main() {
    let policy = TimeBasedPolicy::paper();
    let guests: Vec<DomainId> = (1..=3).map(DomainId).collect();
    let horizon = SimDuration::from_secs(8 * 7 * 24 * 3600);
    let tick = SimDuration::from_secs(7 * 24 * 3600);
    println!("fig2(a): warm-VM reboot — OS rejuvenation keeps its weekly cadence");
    let warm = policy.schedule(&guests, SimTime::ZERO, horizon, false);
    println!("{}", render_timeline(&warm, &guests, horizon, tick));
    println!("fig2(b): cold-VM reboot — the VMM rejuvenation resets every OS timer");
    let cold = policy.schedule(&guests, SimTime::ZERO, horizon, true);
    println!("{}", render_timeline(&cold, &guests, horizon, tick));
    println!("(columns are weeks; V = VMM rejuvenation, O = OS rejuvenation)");
}
