//! Micro-benchmarks, run with the in-repo [`rh_bench::runner`]
//! (`cargo run --release -p rh-bench --bin microbench`).
//!
//! Two groups, ported from the former Criterion benches:
//!
//! * `engine/*` — throughput of the simulation substrate itself: event
//!   chains, schedule/cancel churn, and the DESIGN.md disk-model ablation
//!   (processor-sharing vs FIFO contention).
//! * `figures/*` — each paper table/figure's underlying experiment at
//!   reduced scale, doubling as a regression harness for both the
//!   *results* (shape assertions fire every iteration) and the
//!   *performance* of the simulator.
//!
//! Flags: `--iters N` (default 20), `--warmup N` (default 3),
//! `--filter SUBSTR`. Prints an aligned table and a JSON array to stdout.

use rh_bench::runner::{BenchOptions, Runner};
use rh_guest::services::ServiceKind;
use rh_sim::engine::{Scheduler, Simulation, World};
use rh_sim::queue::FifoResource;
use rh_sim::resource::PsResource;
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::config::RebootStrategy;
use rh_vmm::harness::booted_host;

struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(1), ());
        }
    }
}

fn engine_benches(r: &mut Runner) {
    r.bench("engine/event_chain_100k", || {
        let mut sim = Simulation::new(Chain { remaining: 100_000 });
        sim.scheduler_mut().schedule_in(SimDuration::ZERO, ());
        sim.run_until_idle();
        assert_eq!(sim.world().remaining, 0);
        sim.now()
    });
    r.bench("engine/schedule_cancel_10k", || {
        let mut sim = Simulation::new(Chain { remaining: 0 });
        let handles: Vec<_> = (0..10_000)
            .map(|i| {
                sim.scheduler_mut()
                    .schedule_at(SimTime::from_micros(i + 1), ())
            })
            .collect();
        for h in handles {
            sim.scheduler_mut().cancel(h);
        }
        sim.run_until_idle();
        sim.now()
    });

    // The disk-model ablation: drain 11 × 1 GiB transfers through the
    // processor-sharing model (the paper-calibrated disk) vs a FIFO queue.
    const GIB: f64 = (1u64 << 30) as f64;
    r.bench("engine/processor_sharing_11_streams", || {
        let mut disk = PsResource::new(85.0e6).with_contention_penalty(0.0518);
        let mut now = SimTime::ZERO;
        for _ in 0..11 {
            disk.submit(now, GIB);
        }
        while let Some(next) = disk.next_completion(now) {
            now = next;
            disk.take_completed(now);
        }
        now
    });
    r.bench("engine/fifo_11_streams", || {
        let mut disk = FifoResource::new(1);
        let service = SimDuration::from_secs_f64(GIB / 85.0e6);
        for _ in 0..11 {
            disk.submit(SimTime::ZERO, service);
        }
        let mut last = SimTime::ZERO;
        while let Some(next) = disk.next_completion() {
            last = next;
            disk.take_completed(next);
        }
        last
    });
}

fn figure_benches(r: &mut Runner) {
    r.bench("figures/fig45_measure_tasks_3gib_vm", || {
        let t = rh_bench::fig45::measure_tasks(|| {
            rh_bench::util::booted_single_vm(3, ServiceKind::Ssh)
        });
        assert!(t.onmem_suspend < 0.2);
        assert!(t.save > 3.0 * t.onmem_resume);
        t
    });
    r.bench("figures/fig45_measure_tasks_4_vms", || {
        let t =
            rh_bench::fig45::measure_tasks(|| rh_bench::util::booted_n_vms(4, ServiceKind::Ssh));
        assert!(t.boot > 10.0);
        t
    });
    for strategy in [
        RebootStrategy::Warm,
        RebootStrategy::Cold,
        RebootStrategy::Saved,
    ] {
        r.bench(&format!("figures/fig6_reboot_{strategy}_5vms"), || {
            let mut sim = booted_host(5, ServiceKind::Ssh);
            let report = sim.reboot_and_wait(strategy);
            assert!(report.corrupted.is_empty());
            report.mean_downtime()
        });
    }
    r.bench("figures/sec52_quick_vs_reset", || {
        let res = rh_bench::sec52::run();
        assert!(res.saving() > 40.0);
        res
    });
    r.bench("figures/sec53_os_rejuvenation", || {
        let mut sim = booted_host(3, ServiceKind::Jboss);
        sim.os_reboot_and_wait(rh_vmm::domain::DomainId(1))
    });
    r.bench("figures/fig7_warm_throughput_trace", || {
        let t = rh_bench::fig7::run(RebootStrategy::Warm).ok();
        let ratio = t.as_ref().map(|t| t.after_ratio()).unwrap_or(f64::NAN);
        assert!(ratio > 0.9);
        t.map(|t| t.steady_before)
    });
    r.bench("figures/fig8_file_read_cold", || {
        let res = rh_bench::fig8::file_read(RebootStrategy::Cold);
        assert!(res.degradation() > 0.8);
        res
    });
    r.bench("figures/fig8_web_cold_500_files", || {
        let res = rh_bench::fig8::web(RebootStrategy::Cold, 500);
        assert!(res.degradation() > 0.4);
        res
    });
    r.bench("figures/sec56_three_point_sweep", || {
        let res = rh_bench::sec56::run([1u32, 5, 9].into_iter(), 1).ok();
        let saving = res
            .as_ref()
            .map(|r| r.fitted.saving(11.0, 0.5))
            .unwrap_or(f64::NAN);
        assert!(saving > 0.0);
        saving
    });
    r.bench("figures/fig9_analytic_plus_rolling", || {
        let res = rh_bench::fig9::run(4, 215.0, 3);
        assert!(res.warm_loss < res.cold_loss);
        res.warm_loss
    });
}

fn main() {
    let opts = match BenchOptions::from_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("microbench: {e}");
            std::process::exit(2);
        }
    };
    let mut runner = Runner::new(opts);
    eprintln!("running microbench groups: engine, figures");
    engine_benches(&mut runner);
    figure_benches(&mut runner);
    let report = runner.finish();
    print!("{}", report.render_table());
    println!("{}", report.to_json());
}
