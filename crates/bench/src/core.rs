//! Engine-throughput suite behind the `corebench` binary.
//!
//! Where [`runner`](crate::runner) times whole experiments, this module
//! times the *simulator substrate* — the DES hot path and the rh-memory
//! digest machinery — and turns the timings into the headline numbers
//! tracked in `BENCH_core.json` (see PERFORMANCE.md):
//!
//! * `events_per_sec` / `ns_per_event` — self-scheduling event chain
//!   through the default engine (binary-heap queue, slab slots);
//! * `digest_frames_per_sec` — full `logical_digest` rehash throughput;
//! * `digest_early_out_ops_per_sec` — the epoch-stamp check that lets the
//!   warm path skip the rehash entirely;
//! * `peak_rss_bytes` — VmHWM of the benchmark process (context, not
//!   gated).
//!
//! Every workload runs at a **fixed size** regardless of profile; quick
//! and full runs differ only in sample count, so their per-op numbers are
//! directly comparable and the verify-time regression gate
//! ([`gate_against`]) can diff a `--quick` run against the committed
//! full-profile baseline. Each benchmark reports its **best** (minimum)
//! sample: with deterministic workloads, min-of-N is the least noisy
//! estimator of the true cost.
//!
//! # Examples
//!
//! ```
//! use rh_bench::core::{run_suite, to_json, bench_per_sec};
//!
//! let results = run_suite(1);
//! let json = to_json(&results, "quick", 1);
//! for r in &results {
//!     // The JSON rounds per_sec to one decimal place.
//!     let scanned = bench_per_sec(&json, &r.name).expect("bench row present");
//!     assert!((scanned - r.per_sec()).abs() < 0.1);
//! }
//! ```

use std::hint::black_box;
use std::time::Instant;

use rh_memory::contents::FrameContents;
use rh_memory::frame::Pfn;
use rh_memory::machine::MachineMemory;
use rh_memory::p2m::P2mTable;
use rh_sim::engine::{Scheduler, Simulation, World};
use rh_sim::equeue::QueueKind;
use rh_sim::flat::{FlatScheduler, FlatSimulation, FlatWorld};
use rh_sim::time::{SimDuration, SimTime};
use rh_storage::image::logical_digest;

/// Events per chain workload.
const CHAIN_EVENTS: u64 = 200_000;
/// Events scheduled (half then cancelled) per churn workload.
const CHURN_EVENTS: u64 = 50_000;
/// Frames in the digest workload's guest (256 MiB at 4 KiB/frame).
const DIGEST_FRAMES: u64 = 65_536;
/// `unchanged_since` calls per early-out sample.
const EARLY_OUT_CALLS: u64 = 1_000_000;
/// Full digests per rehash sample (keeps each sample ≥ 1 ms so the
/// best-of-N estimate is stable against scheduler jitter).
const DIGEST_REPS: u64 = 8;
/// Hosts in the `fleet/steady` workload (~22k VM arrivals over its
/// horizon; event count measured by an untimed run).
const FLEET_HOSTS: u32 = 300;

/// One timed benchmark: its best sample and the work done per sample.
#[derive(Debug, Clone)]
pub struct CoreBenchResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Operations performed per sample (events fired, frames hashed, ...).
    pub ops: u64,
    /// What one operation is ("events", "frames", "ops").
    pub unit: &'static str,
    /// Fastest sample, in nanoseconds (floor 1 to keep rates finite).
    pub best_ns: u128,
    /// Samples taken.
    pub samples: u32,
}

impl CoreBenchResult {
    /// Operations per second, from the best sample.
    pub fn per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.best_ns as f64
    }

    /// Nanoseconds per operation, from the best sample.
    pub fn ns_per_op(&self) -> f64 {
        self.best_ns as f64 / self.ops as f64
    }
}

/// A self-scheduling chain through the general engine: the purest
/// back-to-back schedule→pop→dispatch loop the host world drives.
struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(1), ());
        }
    }
}

struct FlatChain {
    remaining: u64,
}

impl FlatWorld for FlatChain {
    type Event = ();
    fn handle(&mut self, sched: &mut FlatScheduler<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(SimDuration::from_micros(1), ());
        }
    }
}

fn chain(kind: QueueKind) -> u64 {
    let mut sim = Simulation::with_queue(
        Chain {
            remaining: CHAIN_EVENTS,
        },
        kind,
    );
    sim.scheduler_mut().schedule_in(SimDuration::ZERO, ());
    sim.run_until_idle();
    sim.scheduler().fired()
}

fn flat_chain() -> u64 {
    let mut sim = FlatSimulation::new(FlatChain {
        remaining: CHAIN_EVENTS,
    });
    sim.scheduler_mut().schedule_in(SimDuration::ZERO, ());
    sim.run_until_idle();
    sim.scheduler().fired()
}

/// Schedule-then-cancel churn: every second event is cancelled, so the
/// stale-entry skim and the slab free list both stay hot.
fn churn(kind: QueueKind) -> u64 {
    let mut sim = Simulation::with_queue(Chain { remaining: 0 }, kind);
    let handles: Vec<_> = (0..CHURN_EVENTS)
        .map(|i| {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_micros(i + 1), ())
        })
        .collect();
    for h in handles.iter().step_by(2) {
        sim.scheduler_mut().cancel(*h);
    }
    sim.run_until_idle();
    sim.scheduler().fired()
}

/// A digest workload shaped like a real guest: mostly pattern-filled
/// extents with a sprinkling of explicit writes.
fn digest_fixture() -> (P2mTable, FrameContents) {
    let mut ram = MachineMemory::new(DIGEST_FRAMES + 4096);
    let mut contents = FrameContents::new();
    let mut p2m = P2mTable::new();
    // Allocate in chunks separated by holes so the table holds several
    // extents and the digest's extent walk is exercised, not just one run.
    let mut ranges = Vec::new();
    let mut holes = Vec::new();
    for _ in 0..8 {
        ranges.extend(ram.allocate(DIGEST_FRAMES / 8).unwrap_or_default());
        holes.extend(ram.allocate(64).unwrap_or_default());
    }
    let _ = ram.release(&holes);
    let mut pfn = 0u64;
    for r in &ranges {
        let _ = p2m.map_contiguous(Pfn(pfn), std::slice::from_ref(r));
        contents.fill_pattern(*r, 0xC0DE ^ pfn);
        pfn += r.count;
    }
    // Explicit writes every 1024th page, overriding the fill pattern.
    for i in (0..DIGEST_FRAMES).step_by(1024) {
        if let Some(mfn) = p2m.lookup(Pfn(i)) {
            contents.write(mfn, 0x5EED_0000 + i);
        }
    }
    (p2m, contents)
}

/// Runs the whole suite, `samples` timed samples per benchmark.
///
/// The workload sizes are fixed; only the sample count varies between
/// quick and full profiles.
pub fn run_suite(samples: u32) -> Vec<CoreBenchResult> {
    let samples = samples.max(1);
    let mut results = Vec::new();
    let mut timed = |name: &str, ops: u64, unit: &'static str, f: &mut dyn FnMut() -> u64| {
        // One untimed warmup settles allocator and cache state.
        black_box(f());
        let mut best = u128::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_nanos());
        }
        results.push(CoreBenchResult {
            name: name.to_string(),
            ops,
            unit,
            best_ns: best.max(1),
            samples,
        });
    };

    timed("engine/chain/heap", CHAIN_EVENTS, "events", &mut || {
        chain(QueueKind::BinaryHeap)
    });
    timed("engine/chain/calendar", CHAIN_EVENTS, "events", &mut || {
        chain(QueueKind::Calendar)
    });
    timed("flat/chain", CHAIN_EVENTS, "events", &mut || flat_chain());
    timed("engine/churn/heap", CHURN_EVENTS, "events", &mut || {
        churn(QueueKind::BinaryHeap)
    });
    timed("engine/churn/calendar", CHURN_EVENTS, "events", &mut || {
        churn(QueueKind::Calendar)
    });

    let (p2m, contents) = digest_fixture();
    let frames = p2m.total_pages() * DIGEST_REPS;
    timed("digest/full_rehash", frames, "frames", &mut || {
        let mut acc = 0u64;
        for _ in 0..DIGEST_REPS {
            acc ^= black_box(logical_digest(&p2m, &contents));
        }
        acc
    });
    let ranges = p2m.machine_ranges();
    let epoch = contents.epoch();
    timed("digest/early_out", EARLY_OUT_CALLS, "ops", &mut || {
        let mut hits = 0u64;
        for _ in 0..EARLY_OUT_CALLS {
            if black_box(contents.unchanged_since(epoch, &ranges)) {
                hits += 1;
            }
        }
        hits
    });

    // A steady-state fleet workload (arrivals, placements, departures,
    // aging crashes across FLEET_HOSTS cells) — the rh-fleet layer's
    // cost on top of the flat core. One untimed run counts the events.
    let fleet_events = fleet_steady();
    timed("fleet/steady", fleet_events, "events", &mut || {
        fleet_steady()
    });

    // A steady-state serverless cell (function-VM arrivals on one
    // overcommitted host with balloon reclaim and a warm pool) — the
    // rh-cell layer's cost, dominated by real P2M map/unmap traffic.
    let cell_events = cell_steady();
    timed("cell/steady", cell_events, "events", &mut || cell_steady());
    results
}

/// One deterministic campaign-free fleet run; returns events fired.
fn fleet_steady() -> u64 {
    let cfg = rh_fleet::config::FleetConfig::datacenter(FLEET_HOSTS);
    let report = rh_fleet::sim::FleetSimulation::new(cfg)
        // lint:allow(unwrap-panic): FleetConfig::datacenter always validates
        .expect("datacenter config is valid")
        .run();
    report.events
}

/// One deterministic cell run (balloon-reclaim at 1.5× overcommit);
/// returns events processed.
fn cell_steady() -> u64 {
    let cfg = rh_cell::CellConfig::steady(rh_cell::ProvisionStrategy::BalloonReclaim, 1.5);
    let report = rh_cell::CellSimulation::new(cfg)
        // lint:allow(unwrap-panic): the steady preset always validates
        .expect("steady cell config is valid")
        .run()
        // lint:allow(unwrap-panic): steady runs cannot fail mid-flight
        .expect("steady cell run completes");
    report.events
}

/// Reads this process's peak resident set size (VmHWM) in bytes.
///
/// Returns 0 when `/proc/self/status` is unavailable (non-Linux), so the
/// field is always present in the JSON but never meaningful off-Linux.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Renders the human-readable summary table.
pub fn render_table(results: &[CoreBenchResult]) -> String {
    let mut out = String::from("## corebench (best of N samples)\n");
    let name_w = results
        .iter()
        .map(|r| r.name.len())
        .chain(["benchmark".len()])
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "{:<name_w$}  {:>12}  {:>14}  {:>12}\n",
        "benchmark", "ops", "per second", "ns/op"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<name_w$}  {:>5} {:>6}  {:>14.0}  {:>12.1}\n",
            r.name,
            r.ops,
            r.unit,
            r.per_sec(),
            r.ns_per_op(),
        ));
    }
    out
}

/// Serializes the suite as the `BENCH_core.json` document (hand-rolled;
/// the schema is documented in PERFORMANCE.md).
pub fn to_json(results: &[CoreBenchResult], profile: &str, samples: u32) -> String {
    let find = |name: &str| results.iter().find(|r| r.name == name);
    let headline_events = find("engine/chain/heap");
    let headline_digest = find("digest/full_rehash");
    let headline_early = find("digest/early_out");
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"rh-corebench/v1\",\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"headline\": {\n");
    out.push_str(&format!(
        "    \"events_per_sec\": {:.1},\n",
        headline_events.map(|r| r.per_sec()).unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "    \"ns_per_event\": {:.2},\n",
        headline_events.map(|r| r.ns_per_op()).unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "    \"digest_frames_per_sec\": {:.1},\n",
        headline_digest.map(|r| r.per_sec()).unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "    \"digest_early_out_ops_per_sec\": {:.1},\n",
        headline_early.map(|r| r.per_sec()).unwrap_or(0.0)
    ));
    out.push_str(&format!("    \"peak_rss_bytes\": {}\n", peak_rss_bytes()));
    out.push_str("  },\n");
    out.push_str("  \"benches\": [\n");
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"unit\":\"{}\",\"ops\":{},\"best_ns\":{},\"samples\":{},\"per_sec\":{:.1},\"ns_per_op\":{:.2}}}",
                r.name, r.unit, r.ops, r.best_ns, r.samples, r.per_sec(), r.ns_per_op()
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts one benchmark's `per_sec` from a corebench JSON document.
///
/// A minimal fixed-schema scanner, not a JSON parser: it relies on each
/// bench object carrying `"name"` before `"per_sec"`, which [`to_json`]
/// guarantees. Returns `None` if the name or the field is absent.
pub fn bench_per_sec(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\":\"{name}\"");
    let at = json.find(&needle)?;
    number_after(&json[at..], "\"per_sec\":")
}

/// Extracts a headline field (e.g. `events_per_sec`) from a corebench
/// JSON document.
pub fn headline_value(json: &str, field: &str) -> Option<f64> {
    number_after(json, &format!("\"{field}\": "))
}

fn number_after(s: &str, key: &str) -> Option<f64> {
    let at = s.find(key)?;
    let tail = &s[at + key.len()..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The verdict of one gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// The rendered delta table (one line per compared benchmark).
    pub table: String,
    /// Benchmarks whose throughput dropped more than the tolerance.
    pub regressions: Vec<String>,
}

impl GateReport {
    /// True when no benchmark regressed past the tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against a baseline `BENCH_core.json`, flagging any
/// benchmark whose throughput dropped by more than `tolerance_pct`.
///
/// Only throughput (`per_sec`) is gated — RSS varies with allocator and
/// kernel version and is tracked as context only. Benchmarks absent from
/// the baseline are reported as `new` and never fail the gate, so adding
/// a benchmark does not require regenerating the baseline in the same
/// commit.
pub fn gate_against(
    current: &[CoreBenchResult],
    baseline_json: &str,
    tolerance_pct: f64,
) -> GateReport {
    let mut table = format!(
        "{:<24}  {:>14}  {:>14}  {:>8}  status\n",
        "benchmark", "baseline/s", "current/s", "delta"
    );
    let mut regressions = Vec::new();
    for r in current {
        let cur = r.per_sec();
        match bench_per_sec(baseline_json, &r.name) {
            Some(base) if base > 0.0 => {
                let delta = (cur - base) / base * 100.0;
                let status = if delta < -tolerance_pct {
                    regressions.push(r.name.clone());
                    "FAIL"
                } else {
                    "ok"
                };
                table.push_str(&format!(
                    "{:<24}  {:>14.0}  {:>14.0}  {:>+7.1}%  {}\n",
                    r.name, base, cur, delta, status
                ));
            }
            _ => {
                table.push_str(&format!(
                    "{:<24}  {:>14}  {:>14.0}  {:>8}  new\n",
                    r.name, "-", cur, "-"
                ));
            }
        }
    }
    GateReport { table, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_results() -> Vec<CoreBenchResult> {
        vec![
            CoreBenchResult {
                name: "engine/chain/heap".into(),
                ops: 1000,
                unit: "events",
                best_ns: 1_000_000,
                samples: 2,
            },
            CoreBenchResult {
                name: "digest/full_rehash".into(),
                ops: 4096,
                unit: "frames",
                best_ns: 2_000_000,
                samples: 2,
            },
        ]
    }

    #[test]
    fn per_sec_and_ns_per_op_are_consistent() {
        let r = &tiny_results()[0];
        // 1000 ops in 1 ms → 1M ops/s, 1000 ns/op.
        assert!((r.per_sec() - 1_000_000.0).abs() < 1e-6);
        assert!((r.ns_per_op() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrips_through_the_scanner() {
        let results = tiny_results();
        let json = to_json(&results, "full", 2);
        for r in &results {
            let got = bench_per_sec(&json, &r.name).expect("bench present");
            assert!((got - r.per_sec()).abs() / r.per_sec() < 1e-3);
        }
        assert!(headline_value(&json, "events_per_sec").is_some());
        assert!(headline_value(&json, "digest_frames_per_sec").is_some());
        assert!(headline_value(&json, "peak_rss_bytes").is_some());
        assert_eq!(bench_per_sec(&json, "no/such/bench"), None);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = to_json(&tiny_results(), "full", 2);
        // Identical run: passes.
        let same = gate_against(&tiny_results(), &baseline, 15.0);
        assert!(same.passed(), "{}", same.table);
        // 10% slower: still passes at 15% tolerance.
        let mut slower = tiny_results();
        slower[0].best_ns = slower[0].best_ns * 110 / 100;
        let ok = gate_against(&slower, &baseline, 15.0);
        assert!(ok.passed(), "{}", ok.table);
        // 30% slower: fails, and names the offender.
        let mut bad = tiny_results();
        bad[0].best_ns = bad[0].best_ns * 143 / 100;
        let fail = gate_against(&bad, &baseline, 15.0);
        assert!(!fail.passed());
        assert_eq!(fail.regressions, vec!["engine/chain/heap".to_string()]);
        assert!(fail.table.contains("FAIL"), "{}", fail.table);
    }

    #[test]
    fn unknown_benchmarks_never_fail_the_gate() {
        let baseline = to_json(&tiny_results(), "full", 2);
        let mut with_new = tiny_results();
        with_new.push(CoreBenchResult {
            name: "brand/new".into(),
            ops: 10,
            unit: "ops",
            best_ns: 10,
            samples: 1,
        });
        let report = gate_against(&with_new, &baseline, 15.0);
        assert!(report.passed(), "{}", report.table);
        assert!(report.table.contains("new"));
    }

    #[test]
    fn suite_runs_at_minimum_size() {
        // Smoke: one sample of every workload completes and fires the
        // advertised number of operations.
        let results = run_suite(1);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"engine/chain/heap"));
        assert!(names.contains(&"engine/chain/calendar"));
        assert!(names.contains(&"flat/chain"));
        assert!(names.contains(&"digest/full_rehash"));
        assert!(names.contains(&"digest/early_out"));
        for r in &results {
            assert!(r.best_ns >= 1, "{}: zero-time sample", r.name);
            assert!(r.ops > 0, "{}: no work recorded", r.name);
        }
        let table = render_table(&results);
        assert!(table.contains("digest/early_out"));
    }

    #[test]
    fn digest_fixture_is_digestible_and_stable() {
        let (p2m, contents) = digest_fixture();
        assert_eq!(p2m.total_pages(), DIGEST_FRAMES);
        let a = logical_digest(&p2m, &contents);
        let b = logical_digest(&p2m, &contents);
        assert_eq!(a, b, "digest must be deterministic");
        // The untouched fixture always early-outs at its own epoch.
        assert!(contents.unchanged_since(contents.epoch(), &p2m.machine_ranges()));
    }
}
