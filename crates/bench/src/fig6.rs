//! Figure 6: downtime of networked services across the three reboots.
//!
//! Sweeps 1..=11 VMs for ssh (6a) and JBoss (6b), measuring the per-service
//! outage of every strategy, and reproduces the §5.3 ssh-session fate
//! analysis (TCP retransmission vs 60 s client timeout vs reset).

use rh_guest::services::ServiceKind;
use rh_guest::session::{SessionFate, TcpSession};
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::config::RebootStrategy;

use crate::exec::{Sweep, DEFAULT_SEED};
use crate::util::{booted_n_vms, secs, Table};

/// Downtimes (seconds) for one VM count and one service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DowntimeRow {
    /// VM count.
    pub n: u32,
    /// Warm-VM reboot mean downtime.
    pub warm: f64,
    /// Saved-VM reboot mean downtime.
    pub saved: f64,
    /// Cold-VM reboot mean downtime.
    pub cold: f64,
}

/// Measures one (service, n) cell of Fig. 6.
pub fn measure(n: u32, service: ServiceKind) -> DowntimeRow {
    let run = |strategy| {
        booted_n_vms(n, service)
            .reboot_and_wait(strategy)
            .mean_downtime()
            .as_secs_f64()
    };
    DowntimeRow {
        n,
        warm: run(RebootStrategy::Warm),
        saved: run(RebootStrategy::Saved),
        cold: run(RebootStrategy::Cold),
    }
}

/// One service's Fig. 6 sweep as executor points: one per VM count.
pub fn sweep_points(service: ServiceKind, counts: impl Iterator<Item = u32>) -> Sweep<DowntimeRow> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for n in counts {
        sweep.point(format!("fig6/{service:?}/{n}vms"), move |_rng| {
            measure(n, service)
        });
    }
    sweep
}

/// Full sweep for one service, across `jobs` workers.
pub fn sweep(
    service: ServiceKind,
    counts: impl Iterator<Item = u32>,
    jobs: usize,
) -> Vec<DowntimeRow> {
    sweep_points(service, counts).run_values(jobs)
}

/// Renders one panel of Fig. 6.
pub fn render(title: &str, rows: &[DowntimeRow]) -> Table {
    let mut t = Table::new(title, &["n", "warm", "saved", "cold"]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            secs(r.warm),
            secs(r.saved),
            secs(r.cold),
        ]);
    }
    t
}

/// §5.3's ssh-session outcome for each strategy given measured downtimes
/// and a client-side timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionFates {
    /// Fate across a warm reboot.
    pub warm: SessionFate,
    /// Fate across a saved reboot.
    pub saved: SessionFate,
    /// Fate across a cold reboot.
    pub cold: SessionFate,
}

/// Computes session fates: warm/saved preserve the server process
/// (generation unchanged), cold restarts it.
pub fn session_fates(row: &DowntimeRow, client_timeout_secs: u64) -> SessionFates {
    let session = TcpSession::open(SimTime::ZERO, 1)
        .with_client_timeout(SimDuration::from_secs(client_timeout_secs));
    SessionFates {
        warm: session.fate(SimDuration::from_secs_f64(row.warm), 1),
        saved: session.fate(SimDuration::from_secs_f64(row.saved), 1),
        cold: session.fate(SimDuration::from_secs_f64(row.cold), 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_vm_row_matches_paper() {
        let row = measure(11, ServiceKind::Ssh);
        // Paper: warm 42, saved 429, cold 157; warm is 9.8 % of saved and
        // cold is 3.7× warm.
        assert!((row.warm - 42.0).abs() < 5.0, "warm {}", row.warm);
        assert!((row.saved - 429.0).abs() < 60.0, "saved {}", row.saved);
        assert!((row.cold - 157.0).abs() < 20.0, "cold {}", row.cold);
        let warm_vs_saved = row.warm / row.saved;
        assert!(
            (warm_vs_saved - 0.098).abs() < 0.03,
            "ratio {warm_vs_saved:.3}"
        );
        let cold_vs_warm = row.cold / row.warm;
        assert!((cold_vs_warm - 3.7).abs() < 0.6, "ratio {cold_vs_warm:.2}");
    }

    #[test]
    fn saved_downtime_grows_fastest_with_n() {
        let rows = sweep(ServiceKind::Ssh, [2u32, 8].into_iter(), 2);
        let slope = |f: fn(&DowntimeRow) -> f64| (f(&rows[1]) - f(&rows[0])) / 6.0;
        let warm_slope = slope(|r| r.warm);
        let saved_slope = slope(|r| r.saved);
        let cold_slope = slope(|r| r.cold);
        assert!(warm_slope < 1.0, "warm slope {warm_slope:.2}");
        assert!(saved_slope > 20.0, "saved slope {saved_slope:.2}");
        assert!(cold_slope > 2.0 && cold_slope < saved_slope);
    }

    #[test]
    fn session_fates_match_section_5_3() {
        // With the paper's 11-VM downtimes and a 60 s client timeout:
        // warm survives, saved times out, cold resets.
        let row = DowntimeRow {
            n: 11,
            warm: 42.0,
            saved: 429.0,
            cold: 157.0,
        };
        let fates = session_fates(&row, 60);
        assert_eq!(fates.warm, SessionFate::Survived);
        assert_eq!(fates.saved, SessionFate::TimedOut);
        assert_eq!(fates.cold, SessionFate::Reset);
        // Without a timeout, saved also survives (TCP retransmission).
        let session = TcpSession::open(SimTime::ZERO, 1);
        assert_eq!(
            session.fate(SimDuration::from_secs_f64(row.saved), 1),
            SessionFate::Survived
        );
    }

    #[test]
    fn render_shape() {
        let rows = vec![DowntimeRow {
            n: 11,
            warm: 41.1,
            saved: 392.7,
            cold: 141.8,
        }];
        let t = render("fig6a", &rows);
        assert!(t.render().contains("392.7"));
    }
}
