//! §5.6: extracting the downtime model from the measured sweep.
//!
//! The paper fits, over n = 1..=11:
//!
//! ```text
//! reboot_vmm(n) = -0.55n + 43      resume(n) = 0.43n - 0.07
//! reboot_os(n)  =  3.8n + 13       boot(n)   = 3.4n + 2.8
//! reset_hw      =  47
//! r(n)          =  3.9n + 60 - 17α  (> 0 for all α ≤ 1)
//! ```
//!
//! This module re-runs the sweep on the simulated host, fits the same
//! lines, and compares coefficient by coefficient.

use rh_guest::services::ServiceKind;
use rh_obs::Phase;
use rh_rejuv::fit::{fit_model, ComponentMeasurements, FitError};
use rh_rejuv::model::DowntimeModel;
use rh_vmm::config::RebootStrategy;

use crate::exec::{Sweep, DEFAULT_SEED};
use crate::util::booted_n_vms;

/// The fitted model plus the raw sweep it came from.
#[derive(Debug, Clone)]
pub struct ModelFitResult {
    /// Raw measurements.
    pub measurements: ComponentMeasurements,
    /// Model fitted from our simulation.
    pub fitted: DowntimeModel,
    /// The paper's published model, for side-by-side comparison.
    pub paper: DowntimeModel,
}

/// Phase measurements for one VM count (one sweep point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePoint {
    /// VM count.
    pub n: u32,
    /// Quick reload + dom0 boot (the VMM-only part of the warm reboot).
    pub reboot_vmm: f64,
    /// On-memory suspend + resume of `n` VMs.
    pub resume: f64,
    /// Shutdown + boot of `n` OSes.
    pub reboot_os: f64,
    /// Boot of `n` OSes.
    pub boot: f64,
    /// Hardware reset.
    pub reset: f64,
}

/// Measures the §5.6 phase components at one VM count.
pub fn measure_point(n: u32) -> PhasePoint {
    let mut warm = booted_n_vms(n, ServiceKind::Ssh);
    warm.reboot_and_wait(RebootStrategy::Warm);
    let wspan = |phase: Phase| {
        warm.host()
            .metrics
            .duration_of(phase)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    };
    // reboot_vmm(n): the VMM-only part of the warm reboot — quick
    // reload plus dom0 boot.
    let reboot_vmm = wspan(Phase::QuickReload) + wspan(Phase::Dom0Boot);
    // resume(n): on-memory suspend + resume of n VMs.
    let resume = wspan(Phase::Suspend) + wspan(Phase::Resume);

    let mut cold = booted_n_vms(n, ServiceKind::Ssh);
    cold.reboot_and_wait(RebootStrategy::Cold);
    let cspan = |phase: Phase| {
        cold.host()
            .metrics
            .duration_of(phase)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    };
    let shutdown = cspan(Phase::GuestShutdown);
    let boot = cspan(Phase::GuestBoot);
    let reset = cspan(Phase::HardwareReset);
    PhasePoint {
        n,
        reboot_vmm,
        resume,
        reboot_os: shutdown + boot,
        boot,
        reset,
    }
}

/// The §5.6 measurement sweep as executor points: one per VM count.
pub fn sweep_points(counts: impl Iterator<Item = u32>) -> Sweep<PhasePoint> {
    let mut sweep = Sweep::new(DEFAULT_SEED);
    for n in counts {
        sweep.point(format!("sec56/{n}vms"), move |_rng| measure_point(n));
    }
    sweep
}

/// Fits the model from already-measured sweep points (in sweep order).
///
/// # Errors
///
/// Returns a [`FitError`] when a component has fewer than two distinct
/// points — e.g. an empty or single-point sweep.
pub fn fit_points(points: &[PhasePoint]) -> Result<ModelFitResult, FitError> {
    let mut m = ComponentMeasurements::default();
    for p in points {
        m.push(p.n, p.reboot_vmm, p.resume, p.reboot_os, p.boot, p.reset);
    }
    Ok(ModelFitResult {
        fitted: fit_model(&m)?,
        measurements: m,
        paper: DowntimeModel::paper(),
    })
}

/// Runs the sweep over the given VM counts across `jobs` workers and fits
/// the model.
///
/// # Errors
///
/// Returns a [`FitError`] when the sweep is too small to fit (fewer than
/// two distinct VM counts).
pub fn run(counts: impl Iterator<Item = u32>, jobs: usize) -> Result<ModelFitResult, FitError> {
    let points = sweep_points(counts).run_values(jobs);
    fit_points(&points)
}

/// Renders the fitted-vs-paper comparison.
pub fn render(r: &ModelFitResult) -> String {
    let f = &r.fitted;
    let p = &r.paper;
    let saving_f = f.saving_line(0.5);
    let saving_p = p.saving_line(0.5);
    format!(
        "## sec5.6 model fit over n = 1..={}\n\
         component      fitted (ours)        paper\n\
         reboot_vmm(n)  {:<18} {}\n\
         resume(n)      {:<18} {}\n\
         reboot_os(n)   {:<18} {}\n\
         boot(n)        {:<18} {}\n\
         reset_hw       {:<18.1} {:.0}\n\
         r(n) @ α=0.5   {:<18} {}\n\
         r(11) @ α=0.5  {:<18.1} {:.1}\n",
        r.measurements.len(),
        f.reboot_vmm.to_string(),
        p.reboot_vmm,
        f.resume.to_string(),
        p.resume,
        f.reboot_os.to_string(),
        p.reboot_os,
        f.boot.to_string(),
        p.boot,
        f.reset_hw,
        p.reset_hw,
        saving_f.to_string(),
        saving_p,
        saving_f.at(11.0),
        saving_p.at(11.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_coefficients_land_near_paper() {
        // A 4-point sweep keeps the test fast; the bin runs 1..=11.
        let r = run([1u32, 4, 8, 11].into_iter(), 2).unwrap();
        let f = &r.fitted;
        // resume(n): paper slope 0.43 — ours is domain_create + handler.
        assert!(
            (f.resume.slope - 0.43).abs() < 0.1,
            "resume slope {:.2}",
            f.resume.slope
        );
        // boot(n): paper 3.4n + 2.8 — shape must match within ~25 %.
        assert!(
            (f.boot.slope - 3.4).abs() < 0.9,
            "boot slope {:.2}",
            f.boot.slope
        );
        // reboot_os(n) = 3.8n + 13.
        assert!(
            (f.reboot_os.slope - 3.8).abs() < 1.0,
            "os slope {:.2}",
            f.reboot_os.slope
        );
        assert!(
            (f.reboot_os.intercept - 13.0).abs() < 6.0,
            "os intercept {:.1}",
            f.reboot_os.intercept
        );
        // reset_hw = 47.
        assert!((f.reset_hw - 47.0).abs() < 1.0, "reset {:.1}", f.reset_hw);
        // reboot_vmm(n) ≈ 43 with a near-zero slope.
        assert!(
            (f.reboot_vmm.at(5.0) - 40.0).abs() < 5.0,
            "reboot_vmm(5) {:.1}",
            f.reboot_vmm.at(5.0)
        );
        assert!(f.reboot_vmm.slope.abs() < 0.6);
    }

    #[test]
    fn saving_is_positive_for_all_n_and_alpha() {
        // The paper's punchline: r(n) > 0 under α ≤ 1 — warm always wins.
        let r = run([1u32, 6, 11].into_iter(), 2).unwrap();
        for alpha in [0.1, 0.5, 1.0] {
            for n in 1..=16 {
                let s = r.fitted.saving(n as f64, alpha);
                assert!(s > 0.0, "r({n}) = {s:.1} at α={alpha}");
            }
        }
        // And lands near the paper's line: r(11) at α=0.5 ≈ 94.4.
        let ours = r.fitted.saving(11.0, 0.5);
        let paper = r.paper.saving(11.0, 0.5);
        assert!(
            (ours - paper).abs() / paper < 0.25,
            "r(11): ours {ours:.1} vs paper {paper:.1}"
        );
    }

    #[test]
    fn render_is_complete() {
        let r = run([1u32, 11].into_iter(), 1).unwrap();
        let s = render(&r);
        for key in [
            "reboot_vmm",
            "resume",
            "reboot_os",
            "boot",
            "reset_hw",
            "r(n)",
        ] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
