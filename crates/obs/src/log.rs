//! The typed event log.
//!
//! [`EventLog`] is the typed successor of the free-form
//! [`Trace`](rh_sim::trace::Trace): an append-only, time-ordered record of
//! [`Event`]s. It keeps the whole legacy query surface (`log`, `find`,
//! `contains`, `in_category`, `entries`, `render`) so existing assertions
//! keep working, and adds typed queries (filter by domain, category or
//! time window) plus a line-oriented JSON export for offline analysis.
//!
//! Determinism: the log never consults a clock or an RNG — entries carry
//! the simulated instant the caller passes in — so two runs that execute
//! the same events produce byte-identical logs and JSONL dumps regardless
//! of worker count.

use std::fmt;

use rh_sim::time::SimTime;
use rh_sim::trace::TraceEntry;

use crate::event::{DomId, Event};

/// One recorded event with its simulated timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Instant at which the event was recorded.
    pub at: SimTime,
    /// The typed event.
    pub event: Event,
}

impl EventRecord {
    /// Renders in the legacy trace-entry format.
    fn render_legacy(&self) -> String {
        format!(
            "[{:>10}] {:<8} {}",
            self.at.to_string(),
            self.event.category(),
            self.event.message()
        )
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_legacy())
    }
}

/// An append-only, time-ordered log of typed [`Event`]s.
///
/// # Examples
///
/// ```
/// use rh_obs::{DomId, Event, EventLog};
/// use rh_sim::time::SimTime;
///
/// let mut log = EventLog::new();
/// log.emit(SimTime::from_secs(1), Event::Suspending(DomId(1)));
/// log.emit(SimTime::from_secs(2), Event::Frozen(DomId(1)));
/// assert_eq!(log.for_domain(DomId(1)).count(), 2);
/// assert!(log.contains("frozen on memory"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    records: Vec<EventRecord>,
    enabled: bool,
}

impl EventLog {
    /// Creates an enabled, empty log.
    pub fn new() -> Self {
        EventLog {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log that drops every event (for long benchmark
    /// simulations where recording overhead matters).
    pub fn disabled() -> Self {
        EventLog {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// True if events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a typed event (no-op when disabled).
    pub fn emit(&mut self, at: SimTime, event: Event) {
        if !self.enabled {
            return;
        }
        self.records.push(EventRecord { at, event });
    }

    /// Records a legacy `(category, message)` pair, parsing it into the
    /// typed model (no-op when disabled). The conversion is lossless:
    /// unrecognised strings are kept verbatim as [`Event::Note`].
    pub fn log(&mut self, at: SimTime, category: impl AsRef<str>, message: impl AsRef<str>) {
        if !self.enabled {
            return;
        }
        self.emit(at, Event::from_legacy(category.as_ref(), message.as_ref()));
    }

    /// All records, in recording order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Materialises the legacy view: one [`TraceEntry`] per record, with
    /// the same category/message strings the free-form trace used to hold.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.records
            .iter()
            .map(|r| TraceEntry {
                at: r.at,
                category: r.event.category().to_string(),
                message: r.event.message(),
            })
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose category equals `category`.
    pub fn in_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.records
            .iter()
            .filter(move |r| r.event.category() == category)
    }

    /// Records concerning the given domain.
    pub fn for_domain(&self, dom: DomId) -> impl Iterator<Item = &EventRecord> {
        self.records
            .iter()
            .filter(move |r| r.event.domain() == Some(dom))
    }

    /// Records with `from <= at < to`.
    pub fn in_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &EventRecord> {
        self.records
            .iter()
            .filter(move |r| r.at >= from && r.at < to)
    }

    /// The first record whose message contains `needle`, if any.
    pub fn find(&self, needle: &str) -> Option<&EventRecord> {
        self.records
            .iter()
            .find(|r| r.event.message().contains(needle))
    }

    /// True if some record's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.find(needle).is_some()
    }

    /// Discards all records (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Renders the whole log in the legacy trace format, one line per
    /// record.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.render_legacy());
            out.push('\n');
        }
        out
    }

    /// Dumps the log as JSON Lines: one object per record with stable
    /// keys `at_us`, `category`, `kind`, optional `dom`, and `message`.
    ///
    /// The writer is hand-rolled (the workspace is hermetic; no serde) and
    /// fully deterministic: key order is fixed and values derive only from
    /// the simulated run.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"at_us\":{},\"category\":\"{}\",\"kind\":\"{}\"",
                r.at.as_micros(),
                json_escape(r.event.category()),
                r.event.kind()
            ));
            if let Some(dom) = r.event.domain() {
                out.push_str(&format!(",\"dom\":\"{dom}\""));
            }
            out.push_str(&format!(
                ",\"message\":\"{}\"}}\n",
                json_escape(&r.event.message())
            ));
        }
        out
    }
}

/// Numbers a slice of events, one per line, in the counterexample-trace
/// format the protocol checker prints:
///
/// ```text
///     1. guest    domU1 suspending
///     2. vmm      domU1 frozen on memory
/// ```
pub fn render_numbered(events: &[Event]) -> String {
    let mut out = String::new();
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!("  {:>3}. {e}\n", i + 1));
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StrategyKind;
    use crate::phase::Phase;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn emit_and_query() {
        let mut log = EventLog::new();
        log.emit(t(1), Event::RebootCommanded(StrategyKind::Warm));
        log.emit(t(2), Event::Suspending(DomId(1)));
        log.emit(t(3), Event::Suspending(DomId(2)));
        log.emit(t(4), Event::Frozen(DomId(1)));
        assert_eq!(log.len(), 4);
        assert_eq!(log.in_category("guest").count(), 2);
        assert_eq!(log.for_domain(DomId(1)).count(), 2);
        assert_eq!(log.in_window(t(2), t(4)).count(), 2);
        assert_eq!(log.find("frozen").map(|r| r.at), Some(t(4)));
        assert!(log.contains("warm reboot commanded"));
        assert!(!log.contains("cold"));
    }

    #[test]
    fn legacy_log_parses_into_typed_events() {
        let mut log = EventLog::new();
        log.log(t(1), "guest", "domU1 suspending");
        log.log(t(2), "vmm", "quick reload failed: no disk");
        assert_eq!(log.records()[0].event, Event::Suspending(DomId(1)));
        assert_eq!(
            log.records()[1].event,
            Event::note("vmm", "quick reload failed: no disk")
        );
    }

    #[test]
    fn entries_reproduce_legacy_strings() {
        let mut log = EventLog::new();
        log.emit(t(1), Event::VmmUp { generation: 2 });
        let entries = log.entries();
        assert_eq!(entries[0].category, "vmm");
        assert_eq!(entries[0].message, "new VMM instance up (generation 2)");
        assert_eq!(entries[0].at, t(1));
    }

    #[test]
    fn render_matches_legacy_trace_format() {
        let mut legacy = rh_sim::trace::Trace::new();
        let mut typed = EventLog::new();
        legacy.log(t(1), "host", "warm reboot commanded");
        legacy.log(t(2), "guest", "domU1 suspending");
        typed.emit(t(1), Event::RebootCommanded(StrategyKind::Warm));
        typed.emit(t(2), Event::Suspending(DomId(1)));
        assert_eq!(typed.render(), legacy.render());
    }

    #[test]
    fn disabled_log_drops_events() {
        let mut log = EventLog::disabled();
        log.emit(t(0), Event::PowerOn);
        log.log(t(0), "host", "power on");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn clear_retains_enabled_flag() {
        let mut log = EventLog::new();
        log.emit(t(0), Event::PowerOn);
        log.clear();
        assert!(log.is_empty());
        assert!(log.is_enabled());
    }

    #[test]
    fn jsonl_has_stable_shape() {
        let mut log = EventLog::new();
        log.emit(t(1), Event::Frozen(DomId(1)));
        log.emit(t(2), Event::PhaseBegin(Phase::QuickReload));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"at_us\":1000000,\"category\":\"vmm\",\"kind\":\"Frozen\",\
             \"dom\":\"domU1\",\"message\":\"domU1 frozen on memory\"}"
        );
        assert_eq!(
            lines[1],
            "{\"at_us\":2000000,\"category\":\"phase\",\"kind\":\"PhaseBegin\",\
             \"message\":\"begin quick reload\"}"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_numbered_matches_checker_format() {
        let events = vec![Event::Suspending(DomId(1)), Event::Frozen(DomId(1))];
        let r = render_numbered(&events);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "    1. guest    domU1 suspending");
        assert_eq!(lines[1], "    2. vmm      domU1 frozen on memory");
    }
}
