//! The closed set of reboot phases.
//!
//! Fig. 7 of the paper superimposes "the time needed for each operation
//! during the reboot" onto the throughput trace. Historically those
//! operations were identified by free-form strings scattered across the
//! host driver and every figure harness; [`Phase`] closes the set so the
//! compiler — not a string comparison at render time — guarantees that a
//! producer and a consumer mean the same operation.

use std::fmt;

/// One named operation of a reboot, as plotted in Fig. 7.
///
/// The [`name`](Phase::name) of each variant is byte-identical to the
/// legacy free-form string, so timelines rendered from typed phases are
/// indistinguishable from the historical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The whole reboot, commanded to complete (encloses every other phase).
    Reboot,
    /// Loading the next VMM build into the reserved xexec region (§4.1).
    XexecLoad,
    /// Shutting down the privileged dom0 domain.
    Dom0Shutdown,
    /// Shutting down guest OSes (cold reboot only).
    GuestShutdown,
    /// Suspending guests onto memory (warm reboot, §4.2).
    Suspend,
    /// Saving guest images to disk (saved reboot baseline).
    Save,
    /// The quick reload of the new VMM over the running one (§4.1).
    QuickReload,
    /// The full hardware reset of the machine (cold reboot baseline).
    HardwareReset,
    /// The VMM booting after a hardware reset.
    VmmBoot,
    /// Booting the privileged dom0 domain.
    Dom0Boot,
    /// Resuming guests frozen on memory (warm reboot, §4.2).
    Resume,
    /// Restoring guest images from disk (saved reboot baseline).
    Restore,
    /// Background fault-in of residual pages after a streamed (post-copy)
    /// resume: the guests already serve while the rest of their images
    /// trickle in from disk.
    StreamIn,
    /// Cold-booting guest OSes from disk.
    GuestBoot,
}

impl Phase {
    /// Every phase, in rough pipeline order.
    pub const ALL: [Phase; 14] = [
        Phase::Reboot,
        Phase::XexecLoad,
        Phase::Dom0Shutdown,
        Phase::GuestShutdown,
        Phase::Suspend,
        Phase::Save,
        Phase::QuickReload,
        Phase::HardwareReset,
        Phase::VmmBoot,
        Phase::Dom0Boot,
        Phase::Resume,
        Phase::Restore,
        Phase::StreamIn,
        Phase::GuestBoot,
    ];

    /// The legacy display name (byte-identical to the historical free-form
    /// phase strings).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Reboot => "reboot",
            Phase::XexecLoad => "xexec load",
            Phase::Dom0Shutdown => "dom0 shutdown",
            Phase::GuestShutdown => "guest shutdown",
            Phase::Suspend => "suspend",
            Phase::Save => "save",
            Phase::QuickReload => "quick reload",
            Phase::HardwareReset => "hardware reset",
            Phase::VmmBoot => "vmm boot",
            Phase::Dom0Boot => "dom0 boot",
            Phase::Resume => "resume",
            Phase::Restore => "restore",
            Phase::StreamIn => "stream-in",
            Phase::GuestBoot => "guest boot",
        }
    }

    /// Parses a legacy phase name back into the typed phase.
    pub fn parse(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for p in Phase::ALL {
            assert_eq!(Phase::parse(p.name()), Some(p), "{p:?}");
        }
        assert_eq!(Phase::parse("warp core alignment"), None);
    }

    #[test]
    fn names_are_distinct() {
        for a in Phase::ALL {
            for b in Phase::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Phase::QuickReload.to_string(), "quick reload");
        assert_eq!(Phase::XexecLoad.to_string(), "xexec load");
    }
}
