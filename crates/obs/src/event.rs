//! The typed event model.
//!
//! Every observable occurrence in the simulated testbed — reboot phase
//! transitions, suspend/resume hypercalls per domain, fault injections,
//! recovery incidents, cluster hosts going up and down — is an [`Event`]
//! variant. The legacy [`Trace`](rh_sim::trace::Trace) recorded free-form
//! `(category, message)` string pairs; [`Event::message`] and
//! [`Event::category`] reproduce those strings byte-for-byte, and
//! [`Event::from_legacy`] parses them back, so the conversion is lossless
//! in both directions (anything unrecognised survives verbatim as
//! [`Event::Note`]).

use std::fmt;

use crate::phase::Phase;

/// A domain identifier as the observability layer sees it: `0` is the
/// privileged dom0, anything else a guest domU.
///
/// This mirrors `rh_vmm::DomainId` (which rh-obs cannot depend on without
/// a cycle) including its display format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomId(pub u32);

impl DomId {
    /// The privileged control domain.
    pub const DOM0: DomId = DomId(0);

    /// True for the privileged dom0.
    pub const fn is_dom0(self) -> bool {
        self.0 == 0
    }

    /// Parses the display form (`"dom0"` / `"domU7"`).
    pub fn parse(s: &str) -> Option<DomId> {
        if s == "dom0" {
            return Some(DomId::DOM0);
        }
        let n: u32 = s.strip_prefix("domU")?.parse().ok()?;
        if n == 0 {
            None
        } else {
            Some(DomId(n))
        }
    }
}

impl fmt::Display for DomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dom0() {
            write!(f, "dom0")
        } else {
            write!(f, "domU{}", self.0)
        }
    }
}

/// The reboot strategy named in commanded/complete events (mirrors
/// `rh_vmm::RebootStrategy`, including its display form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Warm-VM reboot: guests frozen on memory across the VMM swap.
    Warm,
    /// Saved reboot: guests suspended to disk.
    Saved,
    /// Cold reboot: full hardware reset, guests rebuilt from disk.
    Cold,
    /// Streamed (post-copy) reboot: guests resume on a partial restore
    /// and fault the rest of their images in while serving.
    Streamed,
    /// Incremental reboot: background delta snapshots keep the on-disk
    /// image fresh, so the at-reboot save writes only dirty extents.
    Incremental,
}

impl StrategyKind {
    /// All strategies.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Warm,
        StrategyKind::Saved,
        StrategyKind::Cold,
        StrategyKind::Streamed,
        StrategyKind::Incremental,
    ];

    /// The legacy display name (`"warm"` / `"saved"` / `"cold"` / ...).
    pub const fn name(self) -> &'static str {
        match self {
            StrategyKind::Warm => "warm",
            StrategyKind::Saved => "saved",
            StrategyKind::Cold => "cold",
            StrategyKind::Streamed => "streamed",
            StrategyKind::Incremental => "incremental",
        }
    }

    /// Parses the display name.
    pub fn parse(s: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The recovery policy named in a recovery-commanded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryKind {
    /// ReHype-style micro-reboot: new VMM under the frozen domains.
    Microreboot,
    /// Baseline cold recovery: hardware reset, domains rebuilt.
    Cold,
}

/// One typed observable occurrence.
///
/// `category()` and `message()` reproduce the legacy free-form trace
/// strings byte-for-byte; `from_legacy` inverts them. Computed messages
/// that embed measurements or error text (e.g. the quick-reload size
/// summary) stay free-form as [`Event::Note`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    // --- host lifecycle -------------------------------------------------
    /// The machine was powered on.
    PowerOn,
    /// A rejuvenation reboot was commanded.
    RebootCommanded(StrategyKind),
    /// The commanded reboot finished; all domains are back in service.
    RebootComplete(StrategyKind),
    /// An injected fault crashed the VMM mid-flight.
    VmmCrashed,
    /// The VMM failed (detected failure, recovery not yet commanded).
    VmmFailed,
    /// A recovery was commanded for a failed VMM.
    RecoveryCommanded(RecoveryKind),
    /// Guest-OS rejuvenation (reboot of a single domU) was commanded.
    OsRejuvenation(DomId),
    /// Guest-OS rejuvenation was skipped because the domain is down.
    OsRejuvenationSkipped(DomId),
    /// A failed cold boot is being retried with backoff.
    ColdBootRetry {
        /// The domain being rebuilt.
        dom: DomId,
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// A domain was abandoned after exhausting cold-boot retries.
    RetriesExhausted(DomId),
    /// dom0 finished booting.
    Dom0Up,
    /// dom0 finished shutting down.
    Dom0Down,

    // --- VMM / xexec ----------------------------------------------------
    /// The next VMM build was staged into the xexec region.
    XexecStaged {
        /// Build version of the staged image.
        version: u64,
    },
    /// A fresh VMM instance is up after a quick reload.
    VmmUp {
        /// VMM generation counter after the swap.
        generation: u64,
    },
    /// The VMM is booting after a hardware reset.
    VmmBooting {
        /// VMM generation counter after the reset.
        generation: u64,
    },
    /// A frozen domain was salvaged in place during recovery.
    Salvaged(DomId),
    /// A frozen domain could not be salvaged and will cold boot.
    LostColdBoot(DomId),
    /// A domain's memory image is frozen on memory (suspend finished).
    Frozen(DomId),
    /// Writing a domain's image to disk began (saved reboot).
    SaveStarted(DomId),
    /// A domain's image finished writing to disk.
    Saved(DomId),
    /// Reading a domain's image from disk began (saved reboot).
    RestoreStarted(DomId),
    /// A domain's image finished reading from disk.
    Restored(DomId),
    /// A frozen domain failed digest validation on recovery.
    ValidationFailed(DomId),
    /// A frozen domain's memory image was found corrupted on resume.
    Corrupted(DomId),
    /// A resumed domain began streaming residual pages in from disk
    /// (streamed reboot, post-copy).
    StreamStarted(DomId),
    /// A streaming domain's residual pages all arrived; it is now fully
    /// resident again.
    StreamCompleted(DomId),
    /// A background delta snapshot of a domain's dirty extents finished
    /// writing to disk (incremental strategy).
    DeltaSnapshot {
        /// The snapshotted domain.
        dom: DomId,
        /// Bytes written (dirty extents only; 0 never emits this event).
        bytes: u64,
    },

    // --- guest lifecycle ------------------------------------------------
    /// A guest OS began shutting down.
    GuestShuttingDown(DomId),
    /// A guest OS finished shutting down.
    GuestOff(DomId),
    /// A guest domain was created and its OS is booting.
    GuestCreated(DomId),
    /// A guest OS finished booting.
    GuestBooted(DomId),
    /// A guest began its suspend handler (freeze onto memory).
    Suspending(DomId),
    /// A guest began its resume handler.
    Resuming(DomId),
    /// A guest finished resuming and is running again.
    Resumed(DomId),
    /// A guest's service came back up.
    ServiceUp(DomId),

    // --- hardware -------------------------------------------------------
    /// The machine's hardware reset line was pulled (cold reboot).
    HardwareReset,

    // --- fault injection ------------------------------------------------
    /// An injected fault corrupted the staged xexec image.
    StagedImageCorrupted,
    /// An injected fault corrupted a domain's P2M entry.
    P2mCorrupted(DomId),
    /// An injected fault corrupted one frame of a domain's memory.
    FrameCorrupted {
        /// The domain owning the frame.
        dom: DomId,
        /// The corrupted pseudo-physical frame number.
        pfn: u64,
    },
    /// An injected fault dropped a domain's saved execution state.
    ExecStateLost(DomId),

    // --- phases ---------------------------------------------------------
    /// A reboot phase opened.
    PhaseBegin(Phase),
    /// A reboot phase closed.
    PhaseEnd(Phase),

    // --- cluster --------------------------------------------------------
    /// A cluster host returned to service.
    HostUp {
        /// Cluster host index.
        host: u32,
    },
    /// A cluster host left service (rejuvenation outage).
    HostDown {
        /// Cluster host index.
        host: u32,
    },

    // --- escape hatch ---------------------------------------------------
    /// A free-form legacy entry that has no typed variant (computed
    /// measurements, error text). Kept verbatim so conversion from the
    /// legacy trace is lossless.
    Note {
        /// Legacy category string.
        category: String,
        /// Legacy message string.
        message: String,
    },
}

impl Event {
    /// A free-form note (the lossless escape hatch).
    pub fn note(category: impl Into<String>, message: impl Into<String>) -> Event {
        Event::Note {
            category: category.into(),
            message: message.into(),
        }
    }

    /// The legacy category string this event is filed under.
    pub fn category(&self) -> &str {
        match self {
            Event::PowerOn
            | Event::RebootCommanded(_)
            | Event::RebootComplete(_)
            | Event::VmmCrashed
            | Event::VmmFailed
            | Event::RecoveryCommanded(_)
            | Event::OsRejuvenation(_)
            | Event::OsRejuvenationSkipped(_)
            | Event::ColdBootRetry { .. }
            | Event::RetriesExhausted(_)
            | Event::Dom0Up
            | Event::Dom0Down => "host",
            Event::XexecStaged { .. }
            | Event::VmmUp { .. }
            | Event::VmmBooting { .. }
            | Event::Salvaged(_)
            | Event::LostColdBoot(_)
            | Event::Frozen(_)
            | Event::SaveStarted(_)
            | Event::Saved(_)
            | Event::RestoreStarted(_)
            | Event::Restored(_)
            | Event::ValidationFailed(_)
            | Event::Corrupted(_)
            | Event::StreamStarted(_)
            | Event::StreamCompleted(_)
            | Event::DeltaSnapshot { .. } => "vmm",
            Event::GuestShuttingDown(_)
            | Event::GuestOff(_)
            | Event::GuestCreated(_)
            | Event::GuestBooted(_)
            | Event::Suspending(_)
            | Event::Resuming(_)
            | Event::Resumed(_) => "guest",
            Event::ServiceUp(_) => "service",
            Event::HardwareReset => "hw",
            Event::StagedImageCorrupted
            | Event::P2mCorrupted(_)
            | Event::FrameCorrupted { .. }
            | Event::ExecStateLost(_) => "fault",
            Event::PhaseBegin(_) | Event::PhaseEnd(_) => "phase",
            Event::HostUp { .. } | Event::HostDown { .. } => "cluster",
            Event::Note { category, .. } => category,
        }
    }

    /// The legacy message string, byte-identical to what the free-form
    /// trace used to record.
    pub fn message(&self) -> String {
        match self {
            Event::PowerOn => "power on".to_string(),
            Event::RebootCommanded(s) => format!("{s} reboot commanded"),
            Event::RebootComplete(s) => format!("{s} reboot complete"),
            Event::VmmCrashed => "VMM CRASHED".to_string(),
            Event::VmmFailed => "VMM FAILED".to_string(),
            Event::RecoveryCommanded(RecoveryKind::Microreboot) => {
                "micro-reboot recovery commanded".to_string()
            }
            Event::RecoveryCommanded(RecoveryKind::Cold) => "cold recovery commanded".to_string(),
            Event::OsRejuvenation(id) => format!("OS rejuvenation of {id}"),
            Event::OsRejuvenationSkipped(id) => format!("OS rejuvenation of {id} skipped (down)"),
            Event::ColdBootRetry { dom, attempt } => {
                format!("retrying cold boot of {dom} (attempt {attempt})")
            }
            Event::RetriesExhausted(id) => format!("{id} lost (retries exhausted)"),
            Event::Dom0Up => "dom0 up".to_string(),
            Event::Dom0Down => "dom0 down".to_string(),
            Event::XexecStaged { version } => format!("xexec staged build v{version}"),
            Event::VmmUp { generation } => {
                format!("new VMM instance up (generation {generation})")
            }
            Event::VmmBooting { generation } => {
                format!("VMM booting after reset (generation {generation})")
            }
            Event::Salvaged(id) => format!("{id} salvaged (frozen in place)"),
            Event::LostColdBoot(id) => format!("{id} lost; will cold boot"),
            Event::Frozen(id) => format!("{id} frozen on memory"),
            Event::SaveStarted(id) => format!("{id} image save started"),
            Event::Saved(id) => format!("{id} image saved"),
            Event::RestoreStarted(id) => format!("{id} image restore started"),
            Event::Restored(id) => format!("{id} image restored"),
            Event::ValidationFailed(id) => {
                format!("{id} failed validation; falling back to cold boot")
            }
            Event::Corrupted(id) => format!("{id} MEMORY IMAGE CORRUPTED"),
            Event::StreamStarted(id) => format!("{id} stream-in started"),
            Event::StreamCompleted(id) => format!("{id} stream-in complete"),
            Event::DeltaSnapshot { dom, bytes } => {
                format!("{dom} delta snapshot ({bytes} bytes)")
            }
            Event::GuestShuttingDown(id) => format!("{id} shutting down"),
            Event::GuestOff(id) => format!("{id} off"),
            Event::GuestCreated(id) => format!("{id} created, booting"),
            Event::GuestBooted(id) => format!("{id} booted"),
            Event::Suspending(id) => format!("{id} suspending"),
            Event::Resuming(id) => format!("{id} resuming"),
            Event::Resumed(id) => format!("{id} resumed"),
            Event::ServiceUp(id) => format!("{id} service up"),
            Event::HardwareReset => "hardware reset".to_string(),
            Event::StagedImageCorrupted => "staged xexec image corrupted".to_string(),
            Event::P2mCorrupted(id) => format!("{id} P2M entry corrupted"),
            Event::FrameCorrupted { dom, pfn } => format!("{dom} frame {pfn} corrupted"),
            Event::ExecStateLost(id) => format!("{id} exec state lost"),
            Event::PhaseBegin(p) => format!("begin {p}"),
            Event::PhaseEnd(p) => format!("end {p}"),
            Event::HostUp { host } => format!("host {host} up"),
            Event::HostDown { host } => format!("host {host} down"),
            Event::Note { message, .. } => message.clone(),
        }
    }

    /// A stable machine-readable variant name (for JSONL export).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PowerOn => "PowerOn",
            Event::RebootCommanded(_) => "RebootCommanded",
            Event::RebootComplete(_) => "RebootComplete",
            Event::VmmCrashed => "VmmCrashed",
            Event::VmmFailed => "VmmFailed",
            Event::RecoveryCommanded(_) => "RecoveryCommanded",
            Event::OsRejuvenation(_) => "OsRejuvenation",
            Event::OsRejuvenationSkipped(_) => "OsRejuvenationSkipped",
            Event::ColdBootRetry { .. } => "ColdBootRetry",
            Event::RetriesExhausted(_) => "RetriesExhausted",
            Event::Dom0Up => "Dom0Up",
            Event::Dom0Down => "Dom0Down",
            Event::XexecStaged { .. } => "XexecStaged",
            Event::VmmUp { .. } => "VmmUp",
            Event::VmmBooting { .. } => "VmmBooting",
            Event::Salvaged(_) => "Salvaged",
            Event::LostColdBoot(_) => "LostColdBoot",
            Event::Frozen(_) => "Frozen",
            Event::SaveStarted(_) => "SaveStarted",
            Event::Saved(_) => "Saved",
            Event::RestoreStarted(_) => "RestoreStarted",
            Event::Restored(_) => "Restored",
            Event::ValidationFailed(_) => "ValidationFailed",
            Event::Corrupted(_) => "Corrupted",
            Event::StreamStarted(_) => "StreamStarted",
            Event::StreamCompleted(_) => "StreamCompleted",
            Event::DeltaSnapshot { .. } => "DeltaSnapshot",
            Event::GuestShuttingDown(_) => "GuestShuttingDown",
            Event::GuestOff(_) => "GuestOff",
            Event::GuestCreated(_) => "GuestCreated",
            Event::GuestBooted(_) => "GuestBooted",
            Event::Suspending(_) => "Suspending",
            Event::Resuming(_) => "Resuming",
            Event::Resumed(_) => "Resumed",
            Event::ServiceUp(_) => "ServiceUp",
            Event::HardwareReset => "HardwareReset",
            Event::StagedImageCorrupted => "StagedImageCorrupted",
            Event::P2mCorrupted(_) => "P2mCorrupted",
            Event::FrameCorrupted { .. } => "FrameCorrupted",
            Event::ExecStateLost(_) => "ExecStateLost",
            Event::PhaseBegin(_) => "PhaseBegin",
            Event::PhaseEnd(_) => "PhaseEnd",
            Event::HostUp { .. } => "HostUp",
            Event::HostDown { .. } => "HostDown",
            Event::Note { .. } => "Note",
        }
    }

    /// The domain this event concerns, if it concerns exactly one.
    pub fn domain(&self) -> Option<DomId> {
        match self {
            Event::OsRejuvenation(id)
            | Event::OsRejuvenationSkipped(id)
            | Event::RetriesExhausted(id)
            | Event::Salvaged(id)
            | Event::LostColdBoot(id)
            | Event::Frozen(id)
            | Event::SaveStarted(id)
            | Event::Saved(id)
            | Event::RestoreStarted(id)
            | Event::Restored(id)
            | Event::ValidationFailed(id)
            | Event::Corrupted(id)
            | Event::StreamStarted(id)
            | Event::StreamCompleted(id)
            | Event::GuestShuttingDown(id)
            | Event::GuestOff(id)
            | Event::GuestCreated(id)
            | Event::GuestBooted(id)
            | Event::Suspending(id)
            | Event::Resuming(id)
            | Event::Resumed(id)
            | Event::ServiceUp(id)
            | Event::P2mCorrupted(id)
            | Event::ExecStateLost(id) => Some(*id),
            Event::ColdBootRetry { dom, .. }
            | Event::FrameCorrupted { dom, .. }
            | Event::DeltaSnapshot { dom, .. } => Some(*dom),
            _ => None,
        }
    }

    /// Parses a legacy `(category, message)` pair back into a typed event.
    ///
    /// Every string produced by [`category`](Event::category) /
    /// [`message`](Event::message) parses back to the originating variant;
    /// anything unrecognised is preserved verbatim as [`Event::Note`], so
    /// the conversion never loses information.
    pub fn from_legacy(category: &str, message: &str) -> Event {
        let note = || Event::note(category, message);
        match category {
            "host" => parse_host(message).unwrap_or_else(note),
            "vmm" => parse_vmm(message).unwrap_or_else(note),
            "guest" => parse_guest(message).unwrap_or_else(note),
            "service" => message
                .strip_suffix(" service up")
                .and_then(DomId::parse)
                .map(Event::ServiceUp)
                .unwrap_or_else(note),
            "hw" if message == "hardware reset" => Event::HardwareReset,
            "fault" => parse_fault(message).unwrap_or_else(note),
            "phase" => parse_phase(message).unwrap_or_else(note),
            "cluster" => parse_cluster(message).unwrap_or_else(note),
            _ => note(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<8} {}", self.category(), self.message())
    }
}

fn parse_host(m: &str) -> Option<Event> {
    match m {
        "power on" => return Some(Event::PowerOn),
        "VMM CRASHED" => return Some(Event::VmmCrashed),
        "VMM FAILED" => return Some(Event::VmmFailed),
        "micro-reboot recovery commanded" => {
            return Some(Event::RecoveryCommanded(RecoveryKind::Microreboot))
        }
        "cold recovery commanded" => return Some(Event::RecoveryCommanded(RecoveryKind::Cold)),
        "dom0 up" => return Some(Event::Dom0Up),
        "dom0 down" => return Some(Event::Dom0Down),
        _ => {}
    }
    if let Some(s) = m.strip_suffix(" reboot commanded") {
        return StrategyKind::parse(s).map(Event::RebootCommanded);
    }
    if let Some(s) = m.strip_suffix(" reboot complete") {
        return StrategyKind::parse(s).map(Event::RebootComplete);
    }
    if let Some(rest) = m.strip_prefix("OS rejuvenation of ") {
        if let Some(id) = rest.strip_suffix(" skipped (down)") {
            return DomId::parse(id).map(Event::OsRejuvenationSkipped);
        }
        return DomId::parse(rest).map(Event::OsRejuvenation);
    }
    if let Some(rest) = m.strip_prefix("retrying cold boot of ") {
        let (id, attempt) = rest.split_once(" (attempt ")?;
        let attempt: u32 = attempt.strip_suffix(')')?.parse().ok()?;
        return Some(Event::ColdBootRetry {
            dom: DomId::parse(id)?,
            attempt,
        });
    }
    if let Some(id) = m.strip_suffix(" lost (retries exhausted)") {
        return DomId::parse(id).map(Event::RetriesExhausted);
    }
    None
}

fn parse_vmm(m: &str) -> Option<Event> {
    if let Some(v) = m.strip_prefix("xexec staged build v") {
        return Some(Event::XexecStaged {
            version: v.parse().ok()?,
        });
    }
    if let Some(g) = m.strip_prefix("new VMM instance up (generation ") {
        return Some(Event::VmmUp {
            generation: g.strip_suffix(')')?.parse().ok()?,
        });
    }
    if let Some(g) = m.strip_prefix("VMM booting after reset (generation ") {
        return Some(Event::VmmBooting {
            generation: g.strip_suffix(')')?.parse().ok()?,
        });
    }
    let per_dom: [(&str, fn(DomId) -> Event); 11] = [
        (" salvaged (frozen in place)", Event::Salvaged),
        (" lost; will cold boot", Event::LostColdBoot),
        (" frozen on memory", Event::Frozen),
        (" image save started", Event::SaveStarted),
        (" image saved", Event::Saved),
        (" image restore started", Event::RestoreStarted),
        (" image restored", Event::Restored),
        (
            " failed validation; falling back to cold boot",
            Event::ValidationFailed,
        ),
        (" MEMORY IMAGE CORRUPTED", Event::Corrupted),
        (" stream-in started", Event::StreamStarted),
        (" stream-in complete", Event::StreamCompleted),
    ];
    for (suffix, make) in per_dom {
        if let Some(id) = m.strip_suffix(suffix) {
            return DomId::parse(id).map(make);
        }
    }
    if let Some(rest) = m.strip_suffix(" bytes)") {
        let (id, bytes) = rest.split_once(" delta snapshot (")?;
        return Some(Event::DeltaSnapshot {
            dom: DomId::parse(id)?,
            bytes: bytes.parse().ok()?,
        });
    }
    None
}

fn parse_guest(m: &str) -> Option<Event> {
    let per_dom: [(&str, fn(DomId) -> Event); 7] = [
        (" shutting down", Event::GuestShuttingDown),
        (" off", Event::GuestOff),
        (" created, booting", Event::GuestCreated),
        (" booted", Event::GuestBooted),
        (" suspending", Event::Suspending),
        (" resuming", Event::Resuming),
        (" resumed", Event::Resumed),
    ];
    for (suffix, make) in per_dom {
        if let Some(id) = m.strip_suffix(suffix) {
            if let Some(id) = DomId::parse(id) {
                return Some(make(id));
            }
        }
    }
    None
}

fn parse_fault(m: &str) -> Option<Event> {
    if m == "staged xexec image corrupted" {
        return Some(Event::StagedImageCorrupted);
    }
    if let Some(id) = m.strip_suffix(" P2M entry corrupted") {
        return DomId::parse(id).map(Event::P2mCorrupted);
    }
    if let Some(id) = m.strip_suffix(" exec state lost") {
        return DomId::parse(id).map(Event::ExecStateLost);
    }
    if let Some(rest) = m.strip_suffix(" corrupted") {
        let (id, pfn) = rest.split_once(" frame ")?;
        return Some(Event::FrameCorrupted {
            dom: DomId::parse(id)?,
            pfn: pfn.parse().ok()?,
        });
    }
    None
}

fn parse_phase(m: &str) -> Option<Event> {
    if let Some(name) = m.strip_prefix("begin ") {
        return Phase::parse(name).map(Event::PhaseBegin);
    }
    if let Some(name) = m.strip_prefix("end ") {
        return Phase::parse(name).map(Event::PhaseEnd);
    }
    None
}

fn parse_cluster(m: &str) -> Option<Event> {
    let rest = m.strip_prefix("host ")?;
    if let Some(h) = rest.strip_suffix(" up") {
        return Some(Event::HostUp {
            host: h.parse().ok()?,
        });
    }
    let h = rest.strip_suffix(" down")?;
    Some(Event::HostDown {
        host: h.parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<Event> {
        let d = DomId(3);
        let mut out = vec![
            Event::PowerOn,
            Event::VmmCrashed,
            Event::VmmFailed,
            Event::RecoveryCommanded(RecoveryKind::Microreboot),
            Event::RecoveryCommanded(RecoveryKind::Cold),
            Event::OsRejuvenation(d),
            Event::OsRejuvenationSkipped(d),
            Event::ColdBootRetry { dom: d, attempt: 2 },
            Event::RetriesExhausted(d),
            Event::Dom0Up,
            Event::Dom0Down,
            Event::XexecStaged { version: 7 },
            Event::VmmUp { generation: 2 },
            Event::VmmBooting { generation: 2 },
            Event::Salvaged(d),
            Event::LostColdBoot(d),
            Event::Frozen(d),
            Event::SaveStarted(d),
            Event::Saved(d),
            Event::RestoreStarted(d),
            Event::Restored(d),
            Event::ValidationFailed(d),
            Event::Corrupted(d),
            Event::StreamStarted(d),
            Event::StreamCompleted(d),
            Event::DeltaSnapshot {
                dom: d,
                bytes: 655360,
            },
            Event::GuestShuttingDown(d),
            Event::GuestOff(d),
            Event::GuestCreated(d),
            Event::GuestBooted(d),
            Event::Suspending(d),
            Event::Resuming(d),
            Event::Resumed(d),
            Event::ServiceUp(d),
            Event::HardwareReset,
            Event::StagedImageCorrupted,
            Event::P2mCorrupted(d),
            Event::FrameCorrupted { dom: d, pfn: 4096 },
            Event::ExecStateLost(d),
            Event::HostUp { host: 1 },
            Event::HostDown { host: 1 },
            Event::note("vmm", "quick reload (11 GiB frozen)"),
        ];
        for s in StrategyKind::ALL {
            out.push(Event::RebootCommanded(s));
            out.push(Event::RebootComplete(s));
        }
        for p in Phase::ALL {
            out.push(Event::PhaseBegin(p));
            out.push(Event::PhaseEnd(p));
        }
        out
    }

    #[test]
    fn legacy_round_trip_is_lossless() {
        for e in exemplars() {
            let back = Event::from_legacy(e.category(), &e.message());
            assert_eq!(
                back,
                e,
                "category {:?} message {:?}",
                e.category(),
                e.message()
            );
        }
    }

    #[test]
    fn messages_match_legacy_strings() {
        assert_eq!(
            Event::RebootCommanded(StrategyKind::Warm).message(),
            "warm reboot commanded"
        );
        assert_eq!(
            Event::VmmUp { generation: 2 }.message(),
            "new VMM instance up (generation 2)"
        );
        assert_eq!(Event::Frozen(DomId(1)).message(), "domU1 frozen on memory");
        assert_eq!(
            Event::Salvaged(DomId(2)).message(),
            "domU2 salvaged (frozen in place)"
        );
        assert_eq!(
            Event::FrameCorrupted {
                dom: DomId(1),
                pfn: 77
            }
            .message(),
            "domU1 frame 77 corrupted"
        );
        assert_eq!(Event::ServiceUp(DomId(4)).message(), "domU4 service up");
    }

    #[test]
    fn unknown_strings_survive_as_notes() {
        let e = Event::from_legacy("vmm", "quick reload failed: disk on fire");
        assert_eq!(e, Event::note("vmm", "quick reload failed: disk on fire"));
        // And the note round-trips too.
        assert_eq!(Event::from_legacy(e.category(), &e.message()), e);
    }

    #[test]
    fn dom_id_display_and_parse() {
        assert_eq!(DomId(0).to_string(), "dom0");
        assert_eq!(DomId(5).to_string(), "domU5");
        assert_eq!(DomId::parse("dom0"), Some(DomId(0)));
        assert_eq!(DomId::parse("domU12"), Some(DomId(12)));
        assert_eq!(DomId::parse("domU0"), None);
        assert_eq!(DomId::parse("dom1"), None);
    }

    #[test]
    fn domain_accessor_names_the_right_domain() {
        assert_eq!(Event::Resumed(DomId(3)).domain(), Some(DomId(3)));
        assert_eq!(
            Event::ColdBootRetry {
                dom: DomId(2),
                attempt: 1
            }
            .domain(),
            Some(DomId(2))
        );
        assert_eq!(Event::Dom0Up.domain(), None);
    }

    #[test]
    fn guest_off_does_not_shadow_longer_suffixes() {
        // "domU1 image saved" must not parse as GuestOff via a careless
        // suffix order; categories keep the namespaces apart.
        let e = Event::from_legacy("vmm", "domU1 image saved");
        assert_eq!(e, Event::Saved(DomId(1)));
    }
}
