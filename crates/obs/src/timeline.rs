//! Typed reboot phase timelines — the data behind Fig. 7.
//!
//! Figure 7 superimposes "the time needed for each operation during the
//! reboot" onto the throughput trace. [`Timeline`] records [`PhaseSpan`]s
//! keyed by the closed [`Phase`] set (no string matching anywhere on the
//! render path) and renders them byte-identically to the legacy free-form
//! recorder, so every existing report stays stable.

use std::fmt;

use rh_sim::time::{SimDuration, SimTime};

use crate::phase::Phase;

/// One span of a reboot phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Which phase this span belongs to.
    pub phase: Phase,
    /// Phase start.
    pub start: SimTime,
    /// Phase end; `None` while still open.
    pub end: Option<SimTime>,
}

impl PhaseSpan {
    /// Duration of a closed phase.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e - self.start)
    }

    /// The phase's display name (legacy string).
    pub fn name(&self) -> &'static str {
        self.phase.name()
    }
}

/// Accumulates phase spans for one reboot.
///
/// # Examples
///
/// ```
/// use rh_obs::{Phase, Timeline};
/// use rh_sim::time::SimTime;
///
/// let mut m = Timeline::new();
/// m.begin(SimTime::from_secs(20), Phase::Dom0Shutdown);
/// m.end(SimTime::from_secs(34), Phase::Dom0Shutdown);
/// assert_eq!(m.duration_of(Phase::Dom0Shutdown).unwrap().as_secs_f64(), 14.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<PhaseSpan>,
}

impl Timeline {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Opens a phase. Phases may overlap; re-opening a phase creates a new
    /// span.
    pub fn begin(&mut self, at: SimTime, phase: Phase) {
        self.spans.push(PhaseSpan {
            phase,
            start: at,
            end: None,
        });
    }

    /// Closes the most recent open span of this phase.
    ///
    /// # Panics
    ///
    /// Panics if no open span of `phase` exists — that is a sequencing bug
    /// in the reboot driver.
    pub fn end(&mut self, at: SimTime, phase: Phase) {
        let span = self
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.phase == phase && s.end.is_none())
            // lint:allow(unwrap-panic): documented panicking variant; end_if_open is the fallible form
            .unwrap_or_else(|| panic!("no open phase named {:?}", phase.name()));
        span.end = Some(at);
    }

    /// Closes the most recent open span of this phase, if one exists.
    /// Returns `true` if a span was closed.
    pub fn end_if_open(&mut self, at: SimTime, phase: Phase) -> bool {
        match self
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.phase == phase && s.end.is_none())
        {
            Some(span) => {
                span.end = Some(at);
                true
            }
            None => false,
        }
    }

    /// All spans, in opening order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Duration of the most recent closed span of this phase.
    pub fn duration_of(&self, phase: Phase) -> Option<SimDuration> {
        self.spans
            .iter()
            .rev()
            .find(|s| s.phase == phase && s.end.is_some())
            .and_then(|s| s.duration())
    }

    /// Start time of the most recent span of this phase.
    pub fn start_of(&self, phase: Phase) -> Option<SimTime> {
        self.spans
            .iter()
            .rev()
            .find(|s| s.phase == phase)
            .map(|s| s.start)
    }

    /// True if any span is still open.
    pub fn has_open_spans(&self) -> bool {
        self.spans.iter().any(|s| s.end.is_none())
    }

    /// Discards all spans.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Renders the timeline, one line per span (byte-identical to the
    /// legacy string-keyed recorder).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            match s.end {
                Some(e) => out.push_str(&format!(
                    "{:<18} {:>9} .. {:>9}  ({})\n",
                    s.name(),
                    s.start.to_string(),
                    e.to_string(),
                    (e - s.start)
                )),
                None => out.push_str(&format!(
                    "{:<18} {:>9} .. (open)\n",
                    s.name(),
                    s.start.to_string()
                )),
            }
        }
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn begin_end_and_duration() {
        let mut m = Timeline::new();
        m.begin(t(10), Phase::Suspend);
        m.end(t(14), Phase::Suspend);
        assert_eq!(
            m.duration_of(Phase::Suspend),
            Some(SimDuration::from_secs(4))
        );
        assert_eq!(m.start_of(Phase::Suspend), Some(t(10)));
        assert!(!m.has_open_spans());
    }

    #[test]
    fn overlapping_phases_allowed() {
        let mut m = Timeline::new();
        m.begin(t(0), Phase::Reboot);
        m.begin(t(1), Phase::Suspend);
        m.end(t(2), Phase::Suspend);
        m.end(t(5), Phase::Reboot);
        assert_eq!(m.spans().len(), 2);
        assert_eq!(
            m.duration_of(Phase::Reboot),
            Some(SimDuration::from_secs(5))
        );
    }

    #[test]
    fn repeated_phases_take_latest() {
        let mut m = Timeline::new();
        m.begin(t(0), Phase::GuestBoot);
        m.end(t(1), Phase::GuestBoot);
        m.begin(t(10), Phase::GuestBoot);
        m.end(t(13), Phase::GuestBoot);
        assert_eq!(
            m.duration_of(Phase::GuestBoot),
            Some(SimDuration::from_secs(3))
        );
    }

    #[test]
    #[should_panic(expected = "no open phase")]
    fn ending_unopened_phase_panics() {
        let mut m = Timeline::new();
        m.end(t(0), Phase::Resume);
    }

    #[test]
    fn end_if_open_reports_outcome() {
        let mut m = Timeline::new();
        assert!(!m.end_if_open(t(0), Phase::Resume));
        m.begin(t(0), Phase::Resume);
        assert!(m.end_if_open(t(1), Phase::Resume));
    }

    #[test]
    fn render_lists_every_span() {
        let mut m = Timeline::new();
        m.begin(t(0), Phase::HardwareReset);
        m.end(t(47), Phase::HardwareReset);
        m.begin(t(47), Phase::VmmBoot);
        let r = m.render();
        assert!(r.contains("hardware reset"));
        assert!(r.contains("(open)"));
        assert_eq!(r.lines().count(), 2);
        assert_eq!(m.to_string(), r);
        // Exact legacy layout: name padded to 18, times right-aligned to 9.
        assert_eq!(
            r.lines().next().unwrap(),
            "hardware reset        0.000s ..   47.000s  (47.000s)"
        );
    }

    #[test]
    fn clear_empties() {
        let mut m = Timeline::new();
        m.begin(t(0), Phase::Reboot);
        m.clear();
        assert!(m.spans().is_empty());
    }
}
