//! # rh-obs — deterministic observability for the warm-reboot testbed
//!
//! The paper's whole argument is a timeline argument: Fig. 7 superimposes
//! per-phase reboot costs onto a throughput trace, and ReHype-style
//! recovery depends on reconstructing what the VMM was doing when it
//! crashed. This crate is the single substrate all of that evidence flows
//! through:
//!
//! * [`event`] — the typed [`Event`] model (phase transitions, per-domain
//!   suspend/resume, fault injections, recovery incidents, cluster host
//!   up/down) with lossless conversion from the legacy free-form trace,
//! * [`log`] — the [`EventLog`]: append-only typed records with the
//!   legacy query surface, typed filters (domain/category/time window)
//!   and a deterministic JSONL export,
//! * [`timeline`] — typed reboot [`PhaseSpan`]s keyed by the closed
//!   [`Phase`] set; renders Fig. 7 timelines byte-identically to the old
//!   string-keyed recorder,
//! * [`metrics`] — named counters, gauges and histogram timers; no
//!   clocks, no RNG, sorted storage, snapshot-and-merge across parallel
//!   sweep workers,
//! * [`span`] — wall-clock [`WallProfile`]s for executor profiling,
//!   quarantined to `BENCH_repro.json`.
//!
//! Everything here is deterministic by construction: the crate never
//! reads a clock or draws randomness, so output is byte-identical at any
//! `--jobs` count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod log;
pub mod metrics;
pub mod phase;
pub mod span;
pub mod timeline;

pub use event::{DomId, Event, RecoveryKind, StrategyKind};
pub use log::{render_numbered, EventLog, EventRecord};
pub use metrics::{Metrics, MetricsSnapshot};
pub use phase::Phase;
/// Re-exported so latency consumers (cell, fleet) need only rh-obs.
pub use rh_sim::histogram::LatencyHistogram;
pub use span::{WallProfile, WallSpan};
pub use timeline::{PhaseSpan, Timeline};
