//! Wall-clock span profiles for the sweep executor.
//!
//! The parallel experiment executor measures real elapsed time per point
//! and per phase (queue wait, closure run). That data is useful for
//! profiling the harness itself but is nondeterministic, so — like PR 3's
//! per-point wall times — it is quarantined out of stdout and lands only
//! in `BENCH_repro.json`.
//!
//! This module deliberately stores *already-measured* [`Duration`]s: the
//! measuring (`Instant::now()`) stays in `rh-bench`, the one crate the
//! wall-clock lint permits to read the real clock.

use std::fmt;
use std::time::Duration;

/// One labelled wall-clock span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallSpan {
    /// What was timed (e.g. `"wait"`, `"run"`).
    pub label: String,
    /// Real elapsed time.
    pub elapsed: Duration,
}

/// An ordered collection of labelled wall-clock spans for one unit of
/// work (one sweep point).
///
/// # Examples
///
/// ```
/// use rh_obs::WallProfile;
/// use std::time::Duration;
///
/// let mut p = WallProfile::new();
/// p.record("wait", Duration::from_millis(2));
/// p.record("run", Duration::from_millis(40));
/// assert_eq!(p.duration_of("run"), Some(Duration::from_millis(40)));
/// assert_eq!(p.total(), Duration::from_millis(42));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WallProfile {
    spans: Vec<WallSpan>,
}

impl WallProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Appends a labelled span.
    pub fn record(&mut self, label: impl Into<String>, elapsed: Duration) {
        self.spans.push(WallSpan {
            label: label.into(),
            elapsed,
        });
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[WallSpan] {
        &self.spans
    }

    /// The most recent span with this label.
    pub fn duration_of(&self, label: &str) -> Option<Duration> {
        self.spans
            .iter()
            .rev()
            .find(|s| s.label == label)
            .map(|s| s.elapsed)
    }

    /// Sum of every span.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.elapsed).sum()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl fmt::Display for WallProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{}={:.1}ms", s.label, s.elapsed.as_secs_f64() * 1e3)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut p = WallProfile::new();
        assert!(p.is_empty());
        p.record("wait", Duration::from_millis(1));
        p.record("run", Duration::from_millis(10));
        p.record("run", Duration::from_millis(20));
        assert_eq!(p.duration_of("run"), Some(Duration::from_millis(20)));
        assert_eq!(p.duration_of("wait"), Some(Duration::from_millis(1)));
        assert_eq!(p.duration_of("absent"), None);
        assert_eq!(p.total(), Duration::from_millis(31));
        assert_eq!(p.spans().len(), 3);
    }

    #[test]
    fn display_lists_spans_in_order() {
        let mut p = WallProfile::new();
        p.record("wait", Duration::from_millis(2));
        p.record("run", Duration::from_micros(41_500));
        assert_eq!(p.to_string(), "wait=2.0ms run=41.5ms");
    }
}
