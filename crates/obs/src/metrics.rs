//! The deterministic metrics registry.
//!
//! Named counters, gauges and [`LatencyHistogram`]-backed timers that the
//! host, the recovery engine, the cluster driver and the sweep executor
//! all emit into. Three properties make the registry safe to thread
//! through deterministic simulations:
//!
//! 1. **No clocks, no RNG.** The registry stores only what callers pass
//!    in; it never reads wall time or draws randomness, so arming it
//!    cannot perturb a seeded simulation (the zero-overhead gate in
//!    `scripts/verify.sh` holds by construction).
//! 2. **Sorted storage.** Everything lives in `BTreeMap`s, so iteration
//!    and rendering order are independent of insertion order and identical
//!    across runs and worker counts.
//! 3. **Mergeable snapshots.** [`Metrics::snapshot`] freezes the registry
//!    at any sim time; [`Metrics::merge`] folds snapshots from parallel
//!    sweep workers into the same totals a single-threaded run produces
//!    (counters add, timer histograms merge bucket-wise).

use std::collections::BTreeMap;
use std::fmt;

use rh_sim::histogram::LatencyHistogram;
use rh_sim::time::SimDuration;

/// A frozen copy of a [`Metrics`] registry (what parallel workers ship
/// back for merging). Snapshots are plain registries: freezing is a
/// clone, merging is [`Metrics::merge`].
pub type MetricsSnapshot = Metrics;

/// A registry of named counters, gauges and duration timers.
///
/// # Examples
///
/// ```
/// use rh_obs::Metrics;
/// use rh_sim::time::SimDuration;
///
/// let mut m = Metrics::new();
/// m.inc("reboots.warm");
/// m.record("reboot.downtime", SimDuration::from_secs(5));
/// assert_eq!(m.counter("reboots.warm"), 1);
/// assert_eq!(m.timer("reboot.downtime").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    timers: BTreeMap<String, LatencyHistogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// The current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an instantaneous value.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records one duration sample into a timer histogram.
    pub fn record(&mut self, name: &str, d: SimDuration) {
        self.timers.entry(name.to_string()).or_default().record(d);
    }

    /// The histogram behind a timer, if any samples were recorded.
    pub fn timer(&self, name: &str) -> Option<&LatencyHistogram> {
        self.timers.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All timers in name order.
    pub fn timers(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.timers.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.timers.is_empty()
    }

    /// Freezes the registry into a snapshot (a plain clone; the registry
    /// keeps accumulating independently afterwards).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.clone()
    }

    /// Folds another registry (typically a worker snapshot) into this
    /// one: counters add, timer histograms merge bucket-wise, gauges take
    /// the other side's value when it has one (last write wins).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.timers {
            self.timers.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.timers.clear();
    }

    /// Renders the registry, sorted by section and name — deterministic
    /// across runs and worker counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
        }
        if !self.timers.is_empty() {
            out.push_str("timers:\n");
            for (name, h) in &self.timers {
                out.push_str(&format!("  {name:<32} {}\n", h.summary()));
            }
        }
        out
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("untouched"), 0);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut m = Metrics::new();
        m.set_gauge("domains.running", 4);
        m.set_gauge("domains.running", 3);
        assert_eq!(m.gauge("domains.running"), Some(3));
        assert_eq!(m.gauge("never"), None);
    }

    #[test]
    fn timers_record_into_histograms() {
        let mut m = Metrics::new();
        m.record("mttr", ms(100));
        m.record("mttr", ms(300));
        let h = m.timer("mttr").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(ms(200)));
    }

    #[test]
    fn snapshot_then_merge_equals_single_registry() {
        // Two "workers" record disjoint interleavings; merging their
        // snapshots must equal one registry that saw everything.
        let mut all = Metrics::new();
        let mut w1 = Metrics::new();
        let mut w2 = Metrics::new();
        for i in 0..10u64 {
            let (w, name) = if i % 2 == 0 {
                (&mut w1, "even")
            } else {
                (&mut w2, "odd")
            };
            w.inc(name);
            w.record("latency", ms(i + 1));
            all.inc(name);
            all.record("latency", ms(i + 1));
        }
        let mut merged = Metrics::new();
        merged.merge(&w1.snapshot());
        merged.merge(&w2.snapshot());
        assert_eq!(merged, all);
    }

    #[test]
    fn merge_order_is_commutative_for_counters_and_timers() {
        let mut a = Metrics::new();
        a.inc("x");
        a.record("t", ms(1));
        let mut b = Metrics::new();
        b.add("x", 2);
        b.record("t", ms(9));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("x"), ba.counter("x"));
        assert_eq!(ab.timer("t"), ba.timer("t"));
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.inc("zebra");
        m.inc("aard");
        m.set_gauge("g", -2);
        m.record("t", ms(5));
        let r = m.render();
        let aard = r.find("aard").unwrap();
        let zebra = r.find("zebra").unwrap();
        assert!(aard < zebra, "counters not name-sorted:\n{r}");
        assert!(r.contains("gauges:"));
        assert!(r.contains("timers:"));
        assert_eq!(m.to_string(), r);
    }

    #[test]
    fn clear_and_is_empty() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.inc("a");
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
    }
}
