//! Property tests for [`LatencyHistogram::merge`]: merging per-worker
//! histograms must be indistinguishable from recording every sample into
//! one histogram, in any merge order. This is the algebraic fact the
//! parallel sweep executor and the rh-obs metrics registry lean on when
//! they snapshot per-worker timers and fold them together.

use rh_sim::histogram::LatencyHistogram;
use rh_sim::testkit::{check, Config, Gen};
use rh_sim::time::SimDuration;
use rh_sim::{prop_ensure, prop_ensure_eq};

/// Draws a latency spanning the histogram's interesting range: from
/// sub-microsecond (clamps into bucket 0) to minutes.
fn arb_latency(g: &mut Gen) -> SimDuration {
    SimDuration::from_micros(g.u64_in(0, 120_000_000))
}

#[test]
fn merge_of_split_equals_record_all() {
    check(
        "merge_of_split_equals_record_all",
        &Config::default(),
        |g| {
            let samples = g.vec_of(0, 64, arb_latency);
            let cut = g.u64_in(0, samples.len() as u64 + 1) as usize;

            let mut all = LatencyHistogram::new();
            for &d in &samples {
                all.record(d);
            }
            let mut left = LatencyHistogram::new();
            for &d in &samples[..cut] {
                left.record(d);
            }
            let mut right = LatencyHistogram::new();
            for &d in &samples[cut..] {
                right.record(d);
            }
            left.merge(&right);

            // Buckets, count, sum, min and max are all additive, so the merged
            // histogram is *structurally* equal — not merely similar.
            prop_ensure_eq!(left, all, "merge(split) != record-all");
            Ok(())
        },
    );
}

#[test]
fn merge_is_commutative() {
    check("merge_is_commutative", &Config::default(), |g| {
        let xs = g.vec_of(0, 48, arb_latency);
        let ys = g.vec_of(0, 48, arb_latency);
        let mut a = LatencyHistogram::new();
        for &d in &xs {
            a.record(d);
        }
        let mut b = LatencyHistogram::new();
        for &d in &ys {
            b.record(d);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_ensure_eq!(ab, ba, "merge order changed the histogram");
        Ok(())
    });
}

#[test]
fn merge_preserves_quantile_bounds() {
    check(
        "merge_preserves_quantile_bounds",
        &Config::with_cases(48),
        |g| {
            let xs = g.vec_of(1, 48, arb_latency);
            let ys = g.vec_of(1, 48, arb_latency);
            let mut a = LatencyHistogram::new();
            for &d in &xs {
                a.record(d);
            }
            let mut b = LatencyHistogram::new();
            for &d in &ys {
                b.record(d);
            }
            a.merge(&b);
            // Percentiles of the merged histogram stay within the global
            // extremes (the bucket upper bound can overshoot max by <2x).
            let min = a.min().expect("non-empty");
            let max = a.max().expect("non-empty");
            for p in [1.0, 50.0, 99.0, 100.0] {
                let q = a.percentile(p).expect("non-empty");
                prop_ensure!(q >= min, "p{p} {q} below min {min}");
                prop_ensure!(
                    q.as_micros() <= max.as_micros().saturating_mul(2).max(1),
                    "p{p} {q} above 2x max {max}"
                );
            }
            Ok(())
        },
    );
}
