//! Property tests: every [`EventQueue`] backend is observationally
//! identical.
//!
//! The determinism contract (DESIGN.md §10, `tests/determinism.rs`) only
//! survives a queue swap if the backends agree on *every* pop, including
//! FIFO tie-breaks among equal timestamps and interleaved push/pop
//! histories that cross the calendar queue's resize thresholds. These
//! properties drive the binary heap and the calendar queue with the same
//! random streams and demand bit-identical behaviour.

use rh_sim::engine::{Scheduler, Simulation, World};
use rh_sim::equeue::{BinaryHeapQueue, CalendarQueue, EventQueue, QueueEntry, QueueKind};
use rh_sim::testkit::{check, Config, Gen};
use rh_sim::time::{SimDuration, SimTime};
use rh_sim::{prop_ensure, prop_ensure_eq};

fn entry(us: u64, seq: u64) -> QueueEntry {
    QueueEntry {
        time: SimTime::from_micros(us),
        seq,
        index: seq as u32,
        generation: 0,
    }
}

/// Pure push-then-drain: both backends sort any batch identically.
#[test]
fn identical_pop_order_under_random_streams() {
    check(
        "identical_pop_order_under_random_streams",
        &Config::default(),
        |g: &mut Gen| {
            let n = g.usize_in(0, 500);
            let spread = g.u32_in(1, 40);
            let horizon = g.u64_in(1, 1 << spread);
            let mut heap = BinaryHeapQueue::new();
            let mut cal = CalendarQueue::new();
            for seq in 0..n as u64 {
                let e = entry(g.u64_in(0, horizon), seq);
                heap.push(e);
                cal.push(e);
            }
            let mut last = None;
            for i in 0..n {
                let (h, c) = (heap.pop(), cal.pop());
                prop_ensure_eq!(h, c, "pop {i} diverged");
                let e = h.ok_or("heap ran dry early".to_string())?;
                if let Some(prev) = last {
                    prop_ensure!(
                        (e.time, e.seq) > prev,
                        "pops out of order: {prev:?} then {:?}",
                        (e.time, e.seq)
                    );
                }
                last = Some((e.time, e.seq));
            }
            prop_ensure_eq!(heap.pop(), None, "heap not empty after drain");
            prop_ensure_eq!(cal.pop(), None, "calendar not empty after drain");
            Ok(())
        },
    );
}

/// Equal timestamps pop in insertion (FIFO) order on both backends.
#[test]
fn fifo_tie_break_on_equal_timestamps() {
    check(
        "fifo_tie_break_on_equal_timestamps",
        &Config::default(),
        |g: &mut Gen| {
            // Few distinct timestamps, many events: mostly ties.
            let n = g.usize_in(1, 300);
            let distinct = g.u64_in(1, 4);
            let mut heap = BinaryHeapQueue::new();
            let mut cal = CalendarQueue::new();
            for seq in 0..n as u64 {
                let e = entry(g.u64_in(0, distinct) * 1000, seq);
                heap.push(e);
                cal.push(e);
            }
            let mut prev: Option<QueueEntry> = None;
            while let Some(h) = heap.pop() {
                prop_ensure_eq!(Some(h), cal.pop(), "tie-break diverged");
                if let Some(p) = prev {
                    if p.time == h.time {
                        prop_ensure!(
                            p.seq < h.seq,
                            "equal-time events popped out of insertion order"
                        );
                    }
                }
                prev = Some(h);
            }
            prop_ensure_eq!(cal.pop(), None, "calendar held extra entries");
            Ok(())
        },
    );
}

/// Interleaved pushes and pops — the monotone-time regime the engine
/// actually produces — agree at every step, across resize thresholds.
#[test]
fn interleaved_push_pop_histories_agree() {
    check(
        "interleaved_push_pop_histories_agree",
        &Config::default(),
        |g: &mut Gen| {
            let steps = g.usize_in(1, 400);
            let mut heap = BinaryHeapQueue::new();
            let mut cal = CalendarQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..steps {
                if g.any_bool() || heap.is_empty() {
                    // Schedule 1–8 events at or after the current time.
                    for _ in 0..g.usize_in(1, 8) {
                        seq += 1;
                        let e = entry(now + g.u64_in(0, 10_000), seq);
                        heap.push(e);
                        cal.push(e);
                    }
                } else {
                    let (h, c) = (heap.pop(), cal.pop());
                    prop_ensure_eq!(h, c, "interleaved pop diverged");
                    if let Some(e) = h {
                        now = e.time.as_micros();
                    }
                }
                prop_ensure_eq!(heap.len(), cal.len(), "length diverged");
                prop_ensure_eq!(heap.peek(), cal.peek(), "peek diverged");
            }
            // Drain to the end.
            loop {
                let (h, c) = (heap.pop(), cal.pop());
                prop_ensure_eq!(h, c, "drain pop diverged");
                if h.is_none() {
                    break;
                }
            }
            Ok(())
        },
    );
}

/// Full-engine equivalence: a world with random scheduling *and random
/// cancellation* fires the same events at the same times on both backends.
#[test]
fn scheduler_fires_identically_on_both_backends() {
    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }
    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<u32>, event: u32) {
            self.seen.push((sched.now(), event));
        }
    }

    check(
        "scheduler_fires_identically_on_both_backends",
        &Config::with_cases(32),
        |g: &mut Gen| {
            // Pre-draw the script so both runs replay the identical one.
            let n = g.usize_in(0, 200);
            let script: Vec<(u64, u32, bool)> = (0..n)
                .map(|i| (g.u64_in(0, 50_000), i as u32, g.rng().chance(0.25)))
                .collect();
            let run = |kind: QueueKind| {
                let mut sim = Simulation::with_queue(Recorder::default(), kind);
                let mut doomed = Vec::new();
                for &(us, id, cancel) in &script {
                    let h = sim
                        .scheduler_mut()
                        .schedule_at(SimTime::from_micros(us), id);
                    if cancel {
                        doomed.push(h);
                    }
                }
                for h in doomed {
                    sim.scheduler_mut().cancel(h);
                }
                sim.run_for(SimDuration::from_micros(25_000));
                sim.run_until_idle();
                (sim.world().seen.clone(), sim.scheduler().fired())
            };
            prop_ensure_eq!(
                run(QueueKind::BinaryHeap),
                run(QueueKind::Calendar),
                "engine-level divergence between queue backends"
            );
            Ok(())
        },
    );
}
