//! A minimal, zero-dependency property-testing harness.
//!
//! Replaces the `proptest` dev-dependency (which cannot be fetched in the
//! offline build environment — see README §"Hermetic build") with the three
//! features the test suite actually uses:
//!
//! 1. **Seeded case generation** — every case draws its inputs from a
//!    [`Gen`] whose [`SimRng`] is derived deterministically from the run
//!    seed and the case index, so a failure is always reproducible.
//! 2. **Shrinking by halving** — generators scale their spans by the
//!    generation *scale* in `(0, 1]`. On failure the harness replays the
//!    same case seed at scale ½, ¼, … and reports the smallest scale that
//!    still fails, which shrinks collection lengths and magnitudes
//!    together (coarser than proptest's per-value shrinking, but
//!    deterministic and dependency-free).
//! 3. **Failure-seed reporting** — the panic message names the property,
//!    the case seed and the failing scale, and the `TESTKIT_SEED` /
//!    `TESTKIT_CASES` environment variables replay a single case or widen
//!    the search without recompiling.
//!
//! Properties are closures `Fn(&mut Gen) -> Result<(), String>`; the
//! [`prop_ensure!`](crate::prop_ensure) and
//! [`prop_ensure_eq!`](crate::prop_ensure_eq) macros mirror `prop_assert!`.
//!
//! # Examples
//!
//! ```
//! use rh_sim::testkit::{check, Config, Gen};
//! use rh_sim::{prop_ensure, prop_ensure_eq};
//!
//! // Reversing a vector twice is the identity.
//! check("reverse_involutive", &Config::default(), |g: &mut Gen| {
//!     let xs = g.vec_of(0, 32, |g| g.u64_in(0, 1000));
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     prop_ensure_eq!(twice, xs, "double reverse changed the vector");
//!     prop_ensure!(twice.len() <= 32, "generator exceeded its bound");
//!     Ok(())
//! });
//! ```

// lint:allow-file(unwrap-panic): property-test harness; panicking with the
// replay seed IS the failure-reporting mechanism (the proptest analogue).

use crate::rng::{splitmix64, SimRng};

/// Configuration for a [`check`] run.
///
/// `Default` gives 64 cases (matching the old `ProptestConfig::with_cases`
/// setting used throughout the suite), a fixed run seed, and up to 10
/// halving rounds of shrinking.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Run seed: case `i` uses seed `splitmix64(seed ^ splitmix64(i))`.
    pub seed: u64,
    /// Maximum halving rounds when shrinking a failure.
    pub max_shrink_rounds: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x5EED_CAFE,
            max_shrink_rounds: 10,
        }
    }
}

impl Config {
    /// A config with the given case count (shorthand for struct update).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A per-case input generator: a seeded [`SimRng`] plus a shrink *scale*.
///
/// All span-taking generators (`u64_in`, `f64_in`, `vec_of`, …) multiply
/// their span by the scale, so replaying the same seed at a smaller scale
/// yields a structurally similar but smaller case — the harness's shrinking
/// mechanism.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
    scale: f64,
}

impl Gen {
    /// Creates a generator from a case seed at full scale.
    ///
    /// [`check`] constructs these internally; tests only need `Gen::new`
    /// to replay a specific reported failure by hand.
    pub fn new(case_seed: u64, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        Gen {
            rng: SimRng::from_seed(case_seed),
            scale,
        }
    }

    /// The current shrink scale in `(0, 1]` (1.0 = unshrunk).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Direct access to the underlying RNG for distributions the helpers
    /// don't cover (exponential draws, Bernoulli trials, …).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Uniform `u64` in `[lo, hi)`, span scaled by the shrink scale
    /// (always at least 1, so the result stays in-range).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = ((hi - lo) as f64 * self.scale).ceil() as u64;
        lo + self.rng.below(span.max(1))
    }

    /// Uniform `u32` in `[lo, hi)` (scaled like [`u64_in`](Self::u64_in)).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)` (scaled like [`u64_in`](Self::u64_in)).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`, span scaled by the shrink scale.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        let hi_eff = lo + (hi - lo) * self.scale;
        self.rng.range_f64(lo, hi_eff.max(lo + (hi - lo) * 1e-9))
    }

    /// A full-range `u64` (unscaled — used for content values, not sizes).
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A fair coin flip (unscaled).
    pub fn any_bool(&mut self) -> bool {
        self.rng.chance(0.5)
    }

    /// A vector with length uniform in `[min_len, max_len)` (length span
    /// scaled, so shrinking shortens collections), each element produced by
    /// `f`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len >= max_len`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `prop` over `cfg.cases` generated cases, shrinking and panicking
/// on the first failure.
///
/// Each case gets an independent [`Gen`] seeded from the run seed and case
/// index. On failure the harness replays the same case seed at halved
/// scales (½, ¼, …) and keeps descending while the property still fails; the
/// panic reports the smallest failing scale, the case seed, and the exact
/// environment variables that replay it:
///
/// ```text
/// property 'allocator_conserves_frames' failed (case 17/64, seed 0x8C3A…, scale 0.25):
///   range 3..7 overlaps 5..9
/// replay just this case with: TESTKIT_SEED=0x8C3A… cargo test -q <test name>
/// ```
///
/// Environment overrides:
///
/// * `TESTKIT_SEED=<u64, decimal or 0x-hex>` — run exactly one case with
///   this case seed (at full scale) instead of the sweep,
/// * `TESTKIT_CASES=<u32>` — override the case count.
pub fn check<F>(name: &str, cfg: &Config, prop: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    if let Some(seed) = env_u64("TESTKIT_SEED") {
        if let Err(msg) = prop(&mut Gen::new(seed, 1.0)) {
            panic!("property '{name}' failed (replay seed {seed:#x}, scale 1): {msg}");
        }
        return;
    }
    let cases = env_u64("TESTKIT_CASES")
        .map(|c| c as u32)
        .unwrap_or(cfg.cases);
    for i in 0..cases {
        let case_seed = splitmix64(cfg.seed ^ splitmix64(i as u64));
        if let Err(msg) = prop(&mut Gen::new(case_seed, 1.0)) {
            let (scale, msg) = shrink(&prop, case_seed, msg, cfg.max_shrink_rounds);
            panic!(
                "property '{name}' failed (case {}/{cases}, seed {case_seed:#x}, scale {scale}): {msg}\n\
                 replay just this case with: TESTKIT_SEED={case_seed:#x} cargo test -q",
                i + 1,
            );
        }
    }
}

/// Halve the scale while the property keeps failing; return the smallest
/// failing scale and its message.
fn shrink<F>(prop: &F, case_seed: u64, full_msg: String, max_rounds: u32) -> (f64, String)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    let mut best = (1.0, full_msg);
    let mut scale = 0.5;
    for _ in 0..max_rounds {
        match prop(&mut Gen::new(case_seed, scale)) {
            Err(msg) => {
                best = (scale, msg);
                scale /= 2.0;
            }
            // The smaller case passes: the previous scale is minimal.
            Ok(()) => break,
        }
    }
    best
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Property-test assertion: returns `Err(format!(...))` from the enclosing
/// property closure when the condition is false (the testkit analogue of
/// `prop_assert!`).
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Property-test equality assertion: returns `Err` naming both values when
/// they differ (the testkit analogue of `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_ensure_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: {:?} vs {:?}",
                format!($($arg)+), l, r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("count_cases", &Config::with_cases(16), |g| {
            counter.set(counter.get() + 1);
            let v = g.u64_in(0, 100);
            prop_ensure!(v < 100, "out of range: {v}");
            Ok(())
        });
        seen += counter.get();
        assert_eq!(seen, 16);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let out = std::cell::RefCell::new(Vec::new());
            check("collect", &Config::default(), |g| {
                out.borrow_mut().push((g.u64_in(0, 1000), g.any_u64()));
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failing_property_reports_name_and_seed() {
        check("always_fails", &Config::with_cases(4), |_g| {
            Err("nope".to_string())
        });
    }

    #[test]
    fn shrinking_halves_to_smaller_failing_case() {
        // Fails whenever the generated vector is non-empty; the shrinker
        // must descend to a scale where the vector is still non-empty but
        // the scale is < 1 (halving reduces the length span).
        let prop = |g: &mut Gen| {
            let xs = g.vec_of(1, 64, |g| g.u64_in(0, 10));
            if xs.is_empty() {
                Ok(())
            } else {
                Err(format!("len {}", xs.len()))
            }
        };
        let seed = splitmix64(1234);
        let (scale, msg) = shrink(&prop, seed, "len big".into(), 10);
        assert!(scale < 1.0, "shrinker never descended");
        // At the reported scale the case must actually fail.
        assert!(
            prop(&mut Gen::new(seed, scale)).is_err(),
            "reported scale passes: {msg}"
        );
    }

    #[test]
    fn generators_respect_bounds_at_all_scales() {
        for scale in [1.0, 0.5, 0.25, 0.001] {
            let mut g = Gen::new(99, scale);
            for _ in 0..200 {
                let v = g.u64_in(10, 20);
                assert!((10..20).contains(&v), "u64_in broke at scale {scale}: {v}");
                let f = g.f64_in(-1.0, 1.0);
                assert!(
                    (-1.0..1.0).contains(&f),
                    "f64_in broke at scale {scale}: {f}"
                );
                let xs = g.vec_of(2, 5, |g| g.any_bool());
                assert!((2..5).contains(&xs.len()));
            }
        }
    }

    #[test]
    fn vec_of_scales_length_down() {
        let mut full = Gen::new(7, 1.0);
        let mut tiny = Gen::new(7, 0.01);
        let long: usize = (0..100)
            .map(|_| full.vec_of(0, 50, |g| g.any_u64()).len())
            .sum();
        let short: usize = (0..100)
            .map(|_| tiny.vec_of(0, 50, |g| g.any_u64()).len())
            .sum();
        assert!(
            short < long / 4,
            "shrink scale did not shorten vectors: {short} vs {long}"
        );
    }

    #[test]
    fn prop_ensure_macros_format() {
        let inner = || -> Result<(), String> {
            prop_ensure_eq!(1 + 1, 3, "arithmetic");
            Ok(())
        };
        let err = inner().unwrap_err();
        assert!(err.contains("arithmetic"), "got {err}");
        let inner2 = || -> Result<(), String> {
            prop_ensure!(false, "val {}", 42);
            Ok(())
        };
        assert_eq!(inner2().unwrap_err(), "val 42");
    }
}
