//! The discrete-event simulation engine.
//!
//! The engine is deliberately minimal and fully deterministic:
//!
//! * A [`Scheduler`] keeps a priority queue of pending events. Ties at the
//!   same instant are broken by insertion order (a monotonically increasing
//!   sequence number), so the firing order never depends on hash ordering or
//!   allocation addresses.
//! * Application state implements [`World`]; its single `handle` method
//!   receives each fired event together with mutable access to the scheduler
//!   so that it can schedule follow-up events or cancel pending ones.
//! * Events are plain values of the world's `Event` associated type — not
//!   closures — which keeps them inspectable, loggable and testable.
//!
//! # Examples
//!
//! A two-event ping/pong world:
//!
//! ```
//! use rh_sim::engine::{Scheduler, Simulation, World};
//! use rh_sim::time::SimDuration;
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! #[derive(Default)]
//! struct PingPong { pongs: u32 }
//!
//! impl World for PingPong {
//!     type Event = Ev;
//!     fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
//!         match event {
//!             Ev::Ping => {
//!                 sched.schedule_in(SimDuration::from_secs(1), Ev::Pong);
//!             }
//!             Ev::Pong => self.pongs += 1,
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(PingPong::default());
//! sim.scheduler_mut().schedule_in(SimDuration::ZERO, Ev::Ping);
//! sim.run_until_idle();
//! assert_eq!(sim.world().pongs, 1);
//! ```

use std::fmt;

use crate::equeue::{AnyQueue, EventQueue, QueueEntry, QueueKind};
use crate::slab::{Slab, SlotKey};
use crate::time::{SimDuration, SimTime};

/// A handle to a scheduled event, usable to [`cancel`](Scheduler::cancel) it
/// before it fires.
///
/// Handles are generation-checked: once the event fires or is cancelled, the
/// handle becomes stale and further `cancel` calls are harmless no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    key: SlotKey,
}

/// The event queue and clock of a simulation.
///
/// The scheduler is handed to [`World::handle`] so event handlers can query
/// the current time, schedule follow-ups, and cancel pending events.
///
/// Internally, payloads live in a generational [`Slab`] and only small
/// `Copy` [`QueueEntry`] keys move through the priority queue; the queue
/// backend is selected at construction (see [`QueueKind`]) and never affects
/// event order, only performance.
pub struct Scheduler<E> {
    now: SimTime,
    queue: AnyQueue,
    slots: Slab<E>,
    seq: u64,
    fired: u64,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero with the default
    /// (binary-heap) queue backend.
    pub fn new() -> Self {
        Scheduler::with_queue(QueueKind::default())
    }

    /// Creates an empty scheduler at time zero with the given queue backend.
    ///
    /// Every backend yields the identical event sequence (see
    /// [`crate::equeue`]); pick by measured throughput, not semantics.
    pub fn with_queue(kind: QueueKind) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: AnyQueue::of_kind(kind),
            slots: Slab::new(),
            seq: 0,
            fired: 0,
        }
    }

    /// The queue backend this scheduler was built with.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of pending (scheduled, not yet fired or cancelled) events.
    /// O(1): the payload slab tracks its live count.
    pub fn pending(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation never
    /// travels backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at} before now ({})",
            self.now
        );
        let key = self.slots.insert(event);
        self.seq += 1;
        self.queue.push(QueueEntry {
            time: at,
            seq: self.seq,
            index: key.index(),
            generation: key.generation(),
        });
        EventHandle { key }
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event, returning its payload if it had not yet
    /// fired. Cancelling an already-fired or already-cancelled event returns
    /// `None` and has no other effect.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        // The queue entry stays behind as a stale key; `skim_stale` drops it
        // when it reaches the front.
        self.slots.remove(handle.key)
    }

    /// True if the event behind `handle` is still pending.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.slots.contains(handle.key)
    }

    /// The firing time of the next pending event, if any.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.skim_stale();
        self.queue.peek().map(|e| e.time)
    }

    /// Drops stale queue entries (cancelled events) from the front.
    fn skim_stale(&mut self) {
        while let Some(e) = self.queue.peek() {
            if self
                .slots
                .contains(SlotKey::from_parts(e.index, e.generation))
            {
                break;
            }
            self.queue.pop();
        }
    }

    /// Pops the next live event, advancing the clock to its firing time.
    fn pop(&mut self) -> Option<E> {
        self.skim_stale();
        let entry = self.queue.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        let payload = self
            .slots
            .remove(SlotKey::from_parts(entry.index, entry.generation))
            // lint:allow(unwrap-panic): skim_stale dropped every cancelled key before this pop
            .expect("skim_stale guarantees a live slot");
        self.fired += 1;
        Some(payload)
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("fired", &self.fired)
            .finish()
    }
}

/// Application state driven by the simulation.
///
/// Implementors own all domain state; the engine owns only the clock and
/// the pending-event queue.
pub trait World: Sized {
    /// The event vocabulary of this world.
    type Event;

    /// Reacts to `event` firing at `sched.now()`.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// A world plus its scheduler: the complete simulation.
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with the given world.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Creates a simulation at time zero with an explicit queue backend.
    ///
    /// Backend choice is a pure performance knob: the event sequence (and
    /// therefore every simulation outcome) is identical for all
    /// [`QueueKind`]s.
    pub fn with_queue(world: W, kind: QueueKind) -> Self {
        Simulation {
            world,
            sched: Scheduler::with_queue(kind),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Shared access to the scheduler.
    pub fn scheduler(&self) -> &Scheduler<W::Event> {
        &self.sched
    }

    /// Mutable access to the scheduler (for seeding initial events).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Mutable access to both the world and the scheduler at once.
    ///
    /// Useful for driver code that must call world methods which themselves
    /// need the scheduler (the same shape as [`World::handle`]).
    pub fn parts_mut(&mut self) -> (&mut W, &mut Scheduler<W::Event>) {
        (&mut self.world, &mut self.sched)
    }

    /// Fires the single next event, if any. Returns `true` if one fired.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some(event) => {
                self.world.handle(&mut self.sched, event);
                true
            }
            None => false,
        }
    }

    /// Runs until no events remain, then returns the final time.
    ///
    /// # Panics
    ///
    /// Panics after `u64::MAX` steps (practically unreachable) to guard
    /// against pathological infinite self-scheduling loops in debug use; use
    /// [`run_until`](Self::run_until) to bound runs explicitly.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Fires every event scheduled at or before `deadline`, then advances the
    /// clock to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.sched.peek_next_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
    }

    /// Fires events for the next `span` of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

impl<W: World + fmt::Debug> fmt::Debug for Simulation<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone)]
    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, Ev)>,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
            if let Ev::Chain(n) = event {
                if n > 0 {
                    sched.schedule_in(SimDuration::from_secs(1), Ev::Chain(n - 1));
                }
            }
            self.seen.push((sched.now(), event));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(3), Ev::Mark(3));
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        sim.run_until_idle();
        let marks: Vec<u32> = sim
            .world()
            .seen
            .iter()
            .map(|(_, e)| match e {
                Ev::Mark(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(marks, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut sim = Simulation::new(Recorder::default());
        for n in 0..10 {
            sim.scheduler_mut()
                .schedule_at(SimTime::from_secs(5), Ev::Mark(n));
        }
        sim.run_until_idle();
        let marks: Vec<u32> = sim
            .world()
            .seen
            .iter()
            .map(|(_, e)| match e {
                Ev::Mark(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(marks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(7), Ev::Mark(0));
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::from_secs(7));
        assert_eq!(sim.world().seen[0].0, SimTime::from_secs(7));
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut sim = Simulation::new(Recorder::default());
        let keep = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        let drop = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        assert_eq!(sim.scheduler_mut().cancel(drop), Some(Ev::Mark(2)));
        assert!(sim.scheduler().is_pending(keep));
        assert!(!sim.scheduler().is_pending(drop));
        sim.run_until_idle();
        assert_eq!(sim.world().seen.len(), 1);
    }

    #[test]
    fn cancel_is_idempotent_and_generation_safe() {
        let mut sim = Simulation::new(Recorder::default());
        let h = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        assert!(sim.scheduler_mut().cancel(h).is_some());
        assert!(sim.scheduler_mut().cancel(h).is_none());
        // The slot is reused; the old handle must not cancel the new event.
        let h2 = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        assert!(sim.scheduler_mut().cancel(h).is_none());
        assert!(sim.scheduler().is_pending(h2));
        sim.run_until_idle();
        assert_eq!(sim.world().seen.len(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Simulation::new(Recorder::default());
        let h = sim
            .scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        sim.run_until_idle();
        assert!(sim.scheduler_mut().cancel(h).is_none());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Chain(3));
        sim.run_until_idle();
        assert_eq!(sim.world().seen.len(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(10), Ev::Mark(10));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.world().seen.len(), 1);
        sim.run_until_idle();
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    fn run_for_advances_relative_span() {
        let mut sim = Simulation::new(Recorder::default());
        sim.run_for(SimDuration::from_secs(4));
        assert_eq!(sim.now(), SimTime::from_secs(4));
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.now(), SimTime::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(5), Ev::Mark(0));
        sim.run_until_idle();
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
    }

    #[test]
    fn queue_backends_fire_identically() {
        let run = |kind: QueueKind| {
            let mut sim = Simulation::with_queue(Recorder::default(), kind);
            assert_eq!(sim.scheduler().queue_kind(), kind);
            for n in 0..20 {
                sim.scheduler_mut()
                    .schedule_at(SimTime::from_micros(u64::from(n * 7919 % 13)), Ev::Mark(n));
            }
            let victim = sim
                .scheduler_mut()
                .schedule_at(SimTime::from_micros(6), Ev::Mark(999));
            sim.scheduler_mut().cancel(victim);
            sim.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Chain(5));
            sim.run_until_idle();
            sim.world().seen.clone()
        };
        assert_eq!(run(QueueKind::BinaryHeap), run(QueueKind::Calendar));
    }

    #[test]
    fn pending_and_fired_counters() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        sim.scheduler_mut()
            .schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        assert_eq!(sim.scheduler().pending(), 2);
        sim.run_until_idle();
        assert_eq!(sim.scheduler().pending(), 0);
        assert_eq!(sim.scheduler().fired(), 2);
    }
}
