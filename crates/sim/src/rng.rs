//! Deterministic random number generation.
//!
//! All stochastic elements of the simulation (request inter-arrival jitter,
//! file access patterns, leak magnitudes) draw from a [`SimRng`] seeded from
//! a single experiment seed, so every run is exactly reproducible.
//!
//! The generator is an **in-repo xoshiro256++** (Blackman & Vigna) — no
//! external crates — seeded by expanding the 64-bit experiment seed through
//! a [`splitmix64`] chain, the seeding scheme the xoshiro authors recommend.
//! The output stream is a **stability guarantee**: golden-value tests below
//! pin the first outputs for representative seeds, so any future change to
//! the generator (which would silently shift every calibrated experiment)
//! fails loudly. See DESIGN.md §"RNG substitution" for the rationale.
//!
//! The module also provides [`splitmix64`] itself, a tiny stateless mixer
//! used to derive per-frame memory content hashes and per-entity sub-seeds
//! without carrying RNG state around.

/// A seeded deterministic RNG (xoshiro256++).
///
/// The seeding scheme is fixed — a [`splitmix64`] chain expands the 64-bit
/// experiment seed into the 256-bit state — so simulation code never
/// accidentally seeds from entropy, and the same seed always produces the
/// same stream on every platform (the algorithm is pure integer
/// arithmetic; no floating-point or platform-dependent state).
///
/// # Examples
///
/// ```
/// use rh_sim::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates an RNG from a 64-bit experiment seed.
    ///
    /// The 256-bit xoshiro state is filled from a [`splitmix64`] chain
    /// started at `seed`, which guarantees a never-all-zero state and
    /// well-separated states for adjacent seeds.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = [0u64; 4];
        let mut s = seed;
        for word in &mut state {
            s = splitmix64(s);
            *word = s;
        }
        SimRng { state, seed }
    }

    /// The seed this RNG was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child RNG for a named sub-entity.
    ///
    /// Ensures that adding RNG draws in one subsystem never perturbs the
    /// stream seen by another.
    pub fn fork(&self, label: u64) -> SimRng {
        SimRng::from_seed(splitmix64(self.seed ^ splitmix64(label)))
    }

    /// Splits this RNG into `n` independent streams (one [`fork`](Self::fork)
    /// per index).
    ///
    /// This is the seeding primitive for parallel experiment execution
    /// (`rh_bench::exec`): stream `i` depends only on the parent seed and
    /// `i` — not on how many streams were requested, not on how much of the
    /// parent stream has been consumed, and not on the order the streams
    /// are later exercised in — so a sweep point produces byte-identical
    /// results whether the sweep runs sequentially or across N workers.
    pub fn split(&self, n: usize) -> Vec<SimRng> {
        (0..n as u64).map(|i| self.fork(i)).collect()
    }

    /// Next raw 64-bit value (the xoshiro256++ core step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    ///
    /// Uses the top 53 bits of [`next_u64`](Self::next_u64), the standard
    /// full-precision double conversion.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Unbiased: draws outside the largest multiple of `bound` are
    /// rejected and redrawn (at most one extra draw in expectation, and
    /// only for astronomically large bounds).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Largest value below which `% bound` is exactly uniform.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        loop {
            let v = lo + self.next_f64() * (hi - lo);
            // Rounding at huge spans can land exactly on `hi`; redraw to
            // keep the half-open contract.
            if v < hi {
                return v;
            }
        }
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for open-loop request inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        // u in [0, 1) so 1 - u in (0, 1]: ln is finite and the result
        // non-negative.
        let u = self.next_f64();
        -mean * (1.0 - u).ln()
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

/// The splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
///
/// Stateless — ideal for deriving deterministic per-frame memory content
/// signatures (`splitmix64(domain_salt ^ pfn)`) that survive and verify a
/// warm reboot. Also the state-expansion function for [`SimRng::from_seed`].
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Golden values: the first 8 outputs for seeds 0, 42 and u64::MAX,
    /// cross-checked against an independent implementation of
    /// splitmix64-seeded xoshiro256++. These pin the stream forever; a
    /// failure here means every calibrated experiment in EXPERIMENTS.md
    /// silently changed.
    #[test]
    fn golden_stream_seed_0() {
        let mut r = SimRng::from_seed(0);
        let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x4433_9B21_869F_763D,
                0x95CF_0253_EE16_7D21,
                0xB7A5_78BE_0561_B430,
                0xE4F6_DBDB_82CC_C59B,
                0xCFD1_57DB_F4B5_B12E,
                0xA649_AC60_3C89_6CDD,
                0xF723_3D31_DF94_9985,
                0xC168_7BDA_40DC_B4D1,
            ]
        );
    }

    #[test]
    fn golden_stream_seed_42() {
        let mut r = SimRng::from_seed(42);
        let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xC757_960B_442B_0AC3,
                0x4BB2_2A7F_77FF_8C6C,
                0x0495_0439_D3C5_EAFE,
                0xB769_FB44_902F_2DC2,
                0x50FA_EC90_F665_6078,
                0x0C9C_A018_8A6C_2AE3,
                0x7AE2_762F_FCA5_BEF2,
                0x446E_357C_605E_6979,
            ]
        );
    }

    #[test]
    fn golden_stream_seed_max() {
        let mut r = SimRng::from_seed(u64::MAX);
        let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x0C6C_C854_76D8_171C,
                0x1222_0CEE_019C_C195,
                0x8D0A_6405_A9DD_9DB7,
                0xA469_6EC9_6217_4311,
                0xBAD8_9380_A71B_66B3,
                0xC448_989F_9A52_AD27,
                0xDAC7_9895_AB31_9BD4,
                0x7593_329D_008C_643E,
            ]
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = SimRng::from_seed(99);
        let mut child1 = parent.fork(5);
        let mut parent2 = SimRng::from_seed(99);
        let _ = parent2.next_u64(); // consuming the parent stream...
        let mut child2 = parent.fork(5); // ...must not change fork output
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn split_streams_are_fork_streams() {
        // split(n)[i] must equal fork(i): stream i depends only on the
        // parent seed and i, so executors can re-derive any point's stream
        // without materializing the others.
        let parent = SimRng::from_seed(1234);
        let streams = parent.split(5);
        assert_eq!(streams.len(), 5);
        for (i, s) in streams.iter().enumerate() {
            let mut a = s.clone();
            let mut b = parent.fork(i as u64);
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn split_is_independent_of_count() {
        // Asking for more streams must not change the earlier ones —
        // growing a sweep leaves existing points' results intact.
        let parent = SimRng::from_seed(77);
        let small = parent.split(3);
        let big = parent.split(11);
        for (mut a, mut b) in small.into_iter().zip(big.into_iter()) {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_labels_distinguish() {
        let parent = SimRng::from_seed(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_range_uniformly() {
        let mut r = SimRng::from_seed(8);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.below(4) as usize] += 1;
        }
        for c in counts {
            // Each bucket expects 10 000 ± a few hundred.
            assert!((c as i64 - 10_000).abs() < 500, "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn next_f64_is_half_open_unit() {
        let mut r = SimRng::from_seed(13);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn range_f64_stays_in_bounds() {
        let mut r = SimRng::from_seed(21);
        for _ in 0..1000 {
            let v = r.range_f64(-3.0, 7.5);
            assert!((-3.0..7.5).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::from_seed(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "observed mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SimRng::from_seed(17);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the public-domain splitmix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        SimRng::from_seed(0).below(0);
    }
}
