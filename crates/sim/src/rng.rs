//! Deterministic random number generation.
//!
//! All stochastic elements of the simulation (request inter-arrival jitter,
//! file access patterns, leak magnitudes) draw from a [`SimRng`] seeded from
//! a single experiment seed, so every run is exactly reproducible.
//!
//! The module also provides [`splitmix64`], a tiny stateless mixer used to
//! derive per-frame memory content hashes and per-entity sub-seeds without
//! carrying RNG state around.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic RNG.
///
/// Thin wrapper over [`rand::rngs::StdRng`] that fixes the seeding scheme so
/// simulation code never accidentally seeds from entropy.
///
/// # Examples
///
/// ```
/// use rh_sim::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates an RNG from a 64-bit experiment seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        // Expand the 64-bit seed deterministically across the state.
        let mut s = seed;
        for chunk in bytes.chunks_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        SimRng {
            inner: StdRng::from_seed(bytes),
            seed,
        }
    }

    /// The seed this RNG was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child RNG for a named sub-entity.
    ///
    /// Ensures that adding RNG draws in one subsystem never perturbs the
    /// stream seen by another.
    pub fn fork(&self, label: u64) -> SimRng {
        SimRng::from_seed(splitmix64(self.seed ^ splitmix64(label)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for open-loop request inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive, got {mean}");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen::<f64>() < p
    }
}

/// The splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
///
/// Stateless — ideal for deriving deterministic per-frame memory content
/// signatures (`splitmix64(domain_salt ^ pfn)`) that survive and verify a
/// warm reboot.
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = SimRng::from_seed(99);
        let mut child1 = parent.fork(5);
        let mut parent2 = SimRng::from_seed(99);
        let _ = parent2.next_u64(); // consuming the parent stream...
        let mut child2 = parent.fork(5); // ...must not change fork output
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn fork_labels_distinguish() {
        let parent = SimRng::from_seed(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::from_seed(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "observed mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the public-domain splitmix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        SimRng::from_seed(0).below(0);
    }
}
