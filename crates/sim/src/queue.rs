//! A FIFO multi-server queueing resource.
//!
//! [`FifoResource`] models `k` identical servers with a first-in-first-out
//! waiting line: each job has a fixed service duration and occupies one
//! server exclusively. It is the ablation counterpart to the
//! processor-sharing [`PsResource`](crate::resource::PsResource) — the
//! DESIGN.md ablation "processor-sharing vs FIFO disk" swaps one for the
//! other to show how the contention model shapes the paper's linear-in-`n`
//! slopes.
//!
//! Driving pattern is identical to `PsResource`: mutate, ask
//! [`next_completion`](FifoResource::next_completion), arm a wake-up, then
//! [`take_completed`](FifoResource::take_completed) on wake-up.

use std::collections::{BTreeMap, VecDeque};

use crate::resource::JobId;
use crate::time::{SimDuration, SimTime};

/// A `k`-server FIFO queue with per-job fixed service times.
///
/// # Examples
///
/// ```
/// use rh_sim::queue::FifoResource;
/// use rh_sim::time::{SimDuration, SimTime};
///
/// let mut q = FifoResource::new(1);
/// let t0 = SimTime::ZERO;
/// let a = q.submit(t0, SimDuration::from_secs(2));
/// let b = q.submit(t0, SimDuration::from_secs(3));
/// // Single server: a finishes at 2, then b at 5.
/// let t1 = q.next_completion().unwrap();
/// assert_eq!(q.take_completed(t1), vec![a]);
/// let t2 = q.next_completion().unwrap();
/// assert_eq!(t2.as_secs_f64(), 5.0);
/// assert_eq!(q.take_completed(t2), vec![b]);
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    servers: usize,
    in_service: BTreeMap<u64, SimTime>,
    waiting: VecDeque<(u64, SimDuration)>,
    next_id: u64,
    served: u64,
}

impl FifoResource {
    /// Creates a queue with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "FifoResource needs at least one server");
        FifoResource {
            servers,
            in_service: BTreeMap::new(),
            waiting: VecDeque::new(),
            next_id: 0,
            served: 0,
        }
    }

    /// Number of configured servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Jobs currently being served.
    pub fn in_service(&self) -> usize {
        self.in_service.len()
    }

    /// Jobs waiting for a server.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Total jobs in the system.
    pub fn len(&self) -> usize {
        self.in_service.len() + self.waiting.len()
    }

    /// True if no job is in the system.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total jobs served over the lifetime of the queue.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Submits a job requiring `service` time; it starts immediately if a
    /// server is free, otherwise waits in FIFO order.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> JobId {
        let id = self.next_id;
        self.next_id += 1;
        if self.in_service.len() < self.servers {
            self.in_service.insert(id, now + service);
        } else {
            self.waiting.push_back((id, service));
        }
        JobId(id)
    }

    /// Removes a job whether waiting or in service. Returns `true` if it was
    /// present. Freed capacity is *not* backfilled until the next
    /// [`take_completed`](Self::take_completed) call, mirroring a driver that
    /// reacts on its next wake-up.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if self.in_service.remove(&id.0).is_some() {
            return true;
        }
        let before = self.waiting.len();
        self.waiting.retain(|(j, _)| *j != id.0);
        before != self.waiting.len()
    }

    /// The earliest pending completion instant, or `None` if no job is in
    /// service.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.in_service.values().min().copied()
    }

    /// Removes every job whose service finished at or before `now` (in
    /// submission order) and promotes waiting jobs onto freed servers,
    /// starting their service at `now`.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<JobId> {
        let done: Vec<u64> = self
            .in_service
            .iter()
            .filter(|(_, &finish)| finish <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in &done {
            self.in_service.remove(id);
            self.served += 1;
        }
        while self.in_service.len() < self.servers {
            match self.waiting.pop_front() {
                Some((id, service)) => {
                    self.in_service.insert(id, now + service);
                }
                None => break,
            }
        }
        done.into_iter().map(JobId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut q = FifoResource::new(2);
        let a = q.submit(SimTime::ZERO, secs(2));
        let b = q.submit(SimTime::ZERO, secs(2));
        assert_eq!(q.in_service(), 2);
        let t = q.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        let done = q.take_completed(t);
        assert_eq!(done, vec![a, b]);
    }

    #[test]
    fn overflow_waits_fifo() {
        let mut q = FifoResource::new(1);
        let _a = q.submit(SimTime::ZERO, secs(1));
        let b = q.submit(SimTime::ZERO, secs(1));
        let c = q.submit(SimTime::ZERO, secs(1));
        assert_eq!(q.waiting(), 2);
        let t1 = q.next_completion().unwrap();
        q.take_completed(t1);
        // b should now be in service, c still waiting.
        assert_eq!(q.in_service(), 1);
        assert_eq!(q.waiting(), 1);
        let t2 = q.next_completion().unwrap();
        assert_eq!(t2, SimTime::from_secs(2));
        assert_eq!(q.take_completed(t2), vec![b]);
        let t3 = q.next_completion().unwrap();
        assert_eq!(q.take_completed(t3), vec![c]);
        assert_eq!(q.served(), 3);
    }

    #[test]
    fn cancel_waiting_job() {
        let mut q = FifoResource::new(1);
        let _a = q.submit(SimTime::ZERO, secs(1));
        let b = q.submit(SimTime::ZERO, secs(1));
        assert!(q.cancel(b));
        assert!(!q.cancel(b));
        let t = q.next_completion().unwrap();
        q.take_completed(t);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_in_service_job() {
        let mut q = FifoResource::new(1);
        let a = q.submit(SimTime::ZERO, secs(5));
        let b = q.submit(SimTime::ZERO, secs(1));
        assert!(q.cancel(a));
        // b is promoted on the next drain.
        let drained = q.take_completed(SimTime::from_secs(0));
        assert!(drained.is_empty());
        assert_eq!(q.in_service(), 1);
        let t = q.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(q.take_completed(t), vec![b]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = FifoResource::new(0);
    }

    #[test]
    fn makespan_scales_linearly_with_load_on_one_server() {
        // The FIFO ablation: n sequential unit jobs take exactly n seconds.
        for n in 1..=8u64 {
            let mut q = FifoResource::new(1);
            for _ in 0..n {
                q.submit(SimTime::ZERO, secs(1));
            }
            let mut last = SimTime::ZERO;
            while let Some(t) = q.next_completion() {
                last = t;
                q.take_completed(t);
            }
            assert_eq!(last, SimTime::from_secs(n));
        }
    }
}
