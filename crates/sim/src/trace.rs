//! Structured event tracing.
//!
//! A [`Trace`] accumulates timestamped, categorized messages from the
//! simulated host. Tests assert on traces ("suspend happened after dom0
//! shutdown"), and the Fig. 7 harness renders the reboot timeline from the
//! `phase` category.

use std::fmt;

use crate::time::SimTime;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Instant at which the entry was recorded.
    pub at: SimTime,
    /// Free-form category (e.g. `"phase"`, `"vmm"`, `"guest"`).
    pub category: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<8} {}",
            self.at.to_string(),
            self.category,
            self.message
        )
    }
}

/// An append-only, time-ordered log of [`TraceEntry`] values.
///
/// # Examples
///
/// ```
/// use rh_sim::trace::Trace;
/// use rh_sim::time::SimTime;
///
/// let mut trace = Trace::new();
/// trace.log(SimTime::from_secs(1), "vmm", "quick reload started");
/// assert_eq!(trace.in_category("vmm").count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace that drops every entry (for long-running
    /// benchmark simulations where tracing overhead matters).
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// True if entries are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry (no-op when disabled).
    pub fn log(&mut self, at: SimTime, category: impl Into<String>, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.entries.push(TraceEntry {
            at,
            category: category.into(),
            message: message.into(),
        });
    }

    /// All entries, in recording order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries whose category equals `category`.
    pub fn in_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// The first entry whose message contains `needle`, if any.
    pub fn find(&self, needle: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.message.contains(needle))
    }

    /// True if some entry's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.find(needle).is_some()
    }

    /// Discards all entries (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Renders the whole trace, one entry per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_query() {
        let mut t = Trace::new();
        t.log(SimTime::from_secs(1), "vmm", "xexec loaded");
        t.log(SimTime::from_secs(2), "guest", "domU 3 suspended");
        t.log(SimTime::from_secs(3), "vmm", "quick reload done");
        assert_eq!(t.len(), 3);
        assert_eq!(t.in_category("vmm").count(), 2);
        assert!(t.contains("domU 3"));
        assert!(!t.contains("cold"));
        assert_eq!(t.find("reload").unwrap().at, SimTime::from_secs(3));
    }

    #[test]
    fn disabled_trace_drops_entries() {
        let mut t = Trace::disabled();
        t.log(SimTime::ZERO, "x", "dropped");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn clear_retains_enabled_flag() {
        let mut t = Trace::new();
        t.log(SimTime::ZERO, "x", "one");
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn render_has_one_line_per_entry() {
        let mut t = Trace::new();
        t.log(SimTime::from_secs(1), "a", "first");
        t.log(SimTime::from_secs(2), "b", "second");
        let rendered = t.render();
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains("first"));
        assert!(rendered.contains("second"));
    }
}
