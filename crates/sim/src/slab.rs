//! A generational slab allocator.
//!
//! [`Slab`] is a contiguous, reusable arena of `T` values addressed by
//! [`SlotKey`]s. Freed slots are recycled in LIFO order, and every slot
//! carries a generation counter that is bumped on each free, so a stale key
//! (one whose slot has since been reused) can never reach the wrong value.
//!
//! The engine's [`Scheduler`](crate::engine::Scheduler) stores pending event
//! payloads in a slab: scheduling allocates a slot, firing or cancelling
//! frees it, and [`EventHandle`](crate::engine::EventHandle)s are slot keys.
//! The slab keeps a live-element count, which is what makes
//! `Scheduler::pending()` O(1) instead of a scan.
//!
//! Determinism: slot reuse depends only on the sequence of `insert`/`remove`
//! calls — never on addresses or hashes — so simulations that allocate
//! through a slab stay bit-for-bit reproducible.
//!
//! # Examples
//!
//! ```
//! use rh_sim::slab::Slab;
//!
//! let mut slab = Slab::new();
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(slab.len(), 2);
//! assert_eq!(slab.get(a), Some(&"alpha"));
//!
//! // Removing invalidates the key...
//! assert_eq!(slab.remove(a), Some("alpha"));
//! assert_eq!(slab.get(a), None);
//!
//! // ...and the slot is reused under a new generation: the stale key
//! // still cannot see the new occupant.
//! let c = slab.insert("gamma");
//! assert_eq!(slab.get(a), None);
//! assert_eq!(slab.get(c), Some(&"gamma"));
//! assert_eq!(slab.get(b), Some(&"beta"));
//! ```

use std::fmt;

/// A generation-checked reference to a slot in a [`Slab`].
///
/// Keys are plain `Copy` values: cheap to store in queues and logs. A key
/// becomes stale as soon as its slot is removed; stale keys return `None`
/// from every accessor rather than aliasing the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// The slot index inside the slab's backing storage.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The generation this key was minted under.
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Reassembles a key from its raw parts (the inverse of
    /// [`index`](Self::index)/[`generation`](Self::generation)).
    pub fn from_parts(index: u32, generation: u32) -> Self {
        SlotKey { index, generation }
    }
}

struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A contiguous arena of `T` with O(1) insert/remove and generational keys.
///
/// See the [module docs](self) for the full contract and an example.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` elements before it
    /// reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// The number of live (inserted, not yet removed) elements. O(1).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of slots the slab has ever grown to (live + free).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Inserts `value`, reusing the most recently freed slot if one exists.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlotKey {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.entries.len())
                    // lint:allow(unwrap-panic): >4-billion slots is a program bug
                    .expect("slab exceeded u32::MAX slots");
                self.entries.push(Entry {
                    generation: 0,
                    value: None,
                });
                i
            }
        };
        let entry = &mut self.entries[index as usize];
        debug_assert!(entry.value.is_none());
        entry.value = Some(value);
        self.len += 1;
        SlotKey {
            index,
            generation: entry.generation,
        }
    }

    /// Shared access to the element behind `key`, or `None` if the key is
    /// stale or was never issued by this slab.
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        self.entries
            .get(key.index as usize)
            .filter(|e| e.generation == key.generation)
            .and_then(|e| e.value.as_ref())
    }

    /// Mutable access to the element behind `key`, or `None` if stale.
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        self.entries
            .get_mut(key.index as usize)
            .filter(|e| e.generation == key.generation)
            .and_then(|e| e.value.as_mut())
    }

    /// True if `key` still refers to a live element.
    pub fn contains(&self, key: SlotKey) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the element behind `key`. Stale keys return
    /// `None` and change nothing. The freed slot's generation is bumped, so
    /// `key` (and any copies of it) can never observe the slot's next
    /// occupant.
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let entry = self.entries.get_mut(key.index as usize)?;
        if entry.generation != key.generation {
            return None;
        }
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        Some(value)
    }

    /// Removes every element, bumping each live slot's generation so all
    /// outstanding keys become stale. Capacity is retained.
    pub fn clear(&mut self) {
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if entry.value.take().is_some() {
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("capacity", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let k = s.insert(7);
        assert_eq!(s.get(k), Some(&7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(k), Some(7));
        assert_eq!(s.get(k), None);
        assert!(s.is_empty());
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut s = Slab::new();
        let a = s.insert('a');
        let b = s.insert('b');
        s.remove(a);
        s.remove(b);
        // LIFO: b's slot (index 1) comes back first.
        let c = s.insert('c');
        assert_eq!(c.index(), b.index());
        let d = s.insert('d');
        assert_eq!(d.index(), a.index());
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn stale_keys_never_alias() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a.index(), b.index());
        assert_ne!(a.generation(), b.generation());
        assert_eq!(s.get(a), None);
        assert!(s.get_mut(a).is_none());
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(vec![1, 2]);
        s.get_mut(k).unwrap().push(3);
        assert_eq!(s.get(k), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn clear_invalidates_all_keys() {
        let mut s = Slab::new();
        let keys: Vec<_> = (0..5).map(|i| s.insert(i)).collect();
        s.clear();
        assert!(s.is_empty());
        for k in keys {
            assert_eq!(s.get(k), None);
        }
        // Slots are reusable after a clear.
        let k = s.insert(99);
        assert_eq!(s.get(k), Some(&99));
        assert_eq!(s.capacity(), 5);
    }

    #[test]
    fn contains_tracks_liveness() {
        let mut s = Slab::new();
        let k = s.insert(());
        assert!(s.contains(k));
        s.remove(k);
        assert!(!s.contains(k));
    }

    #[test]
    fn from_parts_round_trips() {
        let k = SlotKey::from_parts(3, 9);
        assert_eq!(k.index(), 3);
        assert_eq!(k.generation(), 9);
    }

    #[test]
    fn out_of_range_key_is_harmless() {
        let mut s: Slab<u8> = Slab::new();
        let bogus = SlotKey::from_parts(100, 0);
        assert_eq!(s.get(bogus), None);
        assert_eq!(s.remove(bogus), None);
    }
}
