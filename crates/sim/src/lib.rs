//! # rh-sim — deterministic discrete-event simulation engine
//!
//! The foundation of RootHammer-RS, a reproduction of *"A Fast Rejuvenation
//! Technique for Server Consolidation with Virtual Machines"* (Kourai &
//! Chiba, DSN 2007). Every higher layer — machine memory, disks, guest
//! kernels, the VMM itself — runs on this engine's virtual clock, so whole
//! rejuvenation experiments (minutes of simulated wall-clock, dozens of VMs)
//! execute deterministically in milliseconds.
//!
//! ## Modules
//!
//! * [`time`] — integer-microsecond instants and durations,
//! * [`engine`] — the event queue, the [`engine::World`] trait and
//!   the [`engine::Simulation`] driver,
//! * [`equeue`] — pluggable priority-queue backends (binary heap and
//!   calendar queue) behind the [`equeue::EventQueue`] trait,
//! * [`flat`] — a lean scheduler for small `Copy` events (no handles, no
//!   cancellation) for throughput-critical inner loops,
//! * [`slab`] — the generational slab allocator backing event payloads,
//! * [`resource`] — a processor-sharing resource (disk/CPU contention) and
//!   the [`resource::Retick`] wake-up helper,
//! * [`queue`] — a FIFO multi-server resource (ablation counterpart),
//! * [`histogram`] — log-bucketed latency histograms,
//! * [`pool`] — a deterministic scoped worker pool (indexed tasks,
//!   submission-order assembly, byte-identical output at any job count),
//! * [`rng`] — seeded deterministic randomness (in-repo xoshiro256++),
//! * [`series`] — time-series and completion-log recorders,
//! * [`stats`] — summary statistics and least-squares fitting,
//! * [`testkit`] — a zero-dependency property-testing harness,
//! * [`trace`] — structured, timestamped event tracing.
//!
//! ## Example
//!
//! ```
//! use rh_sim::engine::{Scheduler, Simulation, World};
//! use rh_sim::resource::{JobId, PsResource, Retick};
//! use rh_sim::time::{SimDuration, SimTime};
//!
//! // A world with one shared disk writing two VM memory images.
//! #[derive(Debug)]
//! enum Ev { DiskWake }
//!
//! struct Saver {
//!     disk: PsResource,
//!     wake: Retick,
//!     saved: Vec<JobId>,
//! }
//!
//! impl World for Saver {
//!     type Event = Ev;
//!     fn handle(&mut self, sched: &mut Scheduler<Ev>, _ev: Ev) {
//!         let now = sched.now();
//!         self.saved.extend(self.disk.take_completed(now));
//!         self.wake.reschedule(sched, self.disk.next_completion(now), || Ev::DiskWake);
//!     }
//! }
//!
//! let mut sim = Simulation::new(Saver {
//!     disk: PsResource::new(85.0e6), // 85 MB/s
//!     wake: Retick::new(),
//!     saved: Vec::new(),
//! });
//! let (world, sched) = sim.parts_mut();
//! world.disk.submit(sched.now(), 1.0e9); // 1 GB image
//! world.disk.submit(sched.now(), 1.0e9); // another
//! let next = world.disk.next_completion(sched.now());
//! world.wake.reschedule(sched, next, || Ev::DiskWake);
//! sim.run_until_idle();
//! assert_eq!(sim.world().saved.len(), 2);
//! // Two 1 GB images over one 85 MB/s disk: ~23.5 s.
//! assert!((sim.now().as_secs_f64() - 2.0e9 / 85.0e6).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod equeue;
pub mod flat;
pub mod histogram;
pub mod pool;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod series;
pub mod slab;
pub mod stats;
pub mod testkit;
pub mod time;
pub mod trace;

pub use engine::{EventHandle, Scheduler, Simulation, World};
pub use equeue::{EventQueue, QueueKind};
pub use resource::{JobId, PsResource, Retick};
pub use time::{SimDuration, SimTime};
