//! Latency histograms.
//!
//! Fixed-memory, log-bucketed duration histograms for request latencies —
//! percentile extraction without storing every sample. Buckets are
//! power-of-two microseconds (1 µs, 2 µs, 4 µs, ... ≈ 36 min), which keeps
//! relative error under 100 % per bucket and is ample for comparing
//! cache-hit against disk-miss service times (three orders of magnitude
//! apart).

use std::fmt;

use crate::time::SimDuration;

/// Number of power-of-two buckets (covers 1 µs .. ~2^40 µs).
const BUCKETS: usize = 41;

/// A log-bucketed histogram of durations.
///
/// # Examples
///
/// ```
/// use rh_sim::histogram::LatencyHistogram;
/// use rh_sim::time::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 100] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 4);
/// // The p50 falls in the 2–4 ms bucket.
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50.as_micros() >= 2_000 && p50.as_micros() <= 4_096);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_micros: u128,
    min: Option<SimDuration>,
    max: Option<SimDuration>,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            min: None,
            max: None,
        }
    }

    fn bucket_of(d: SimDuration) -> usize {
        let micros = d.as_micros();
        if micros == 0 {
            0
        } else {
            ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound of bucket `i` in microseconds.
    fn bucket_limit(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64 << i
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.buckets[Self::bucket_of(d)] += 1;
        self.count += 1;
        self.sum_micros += d.as_micros() as u128;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact mean of all samples.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        Some(SimDuration::from_micros(
            (self.sum_micros / self.count as u128) as u64,
        ))
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.max
    }

    /// The `p`-th percentile (0 < p ≤ 100), as the upper bound of the
    /// bucket containing it — an over-estimate by at most 2×.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_micros(Self::bucket_limit(i)));
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        *self = LatencyHistogram::new();
    }

    /// One-line summary: count, mean, p50/p99, max.
    pub fn summary(&self) -> String {
        match (
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max,
        ) {
            (Some(mean), Some(p50), Some(p99), Some(max)) => format!(
                "n={} mean={} p50≤{} p99≤{} max={}",
                self.count, mean, p50, p99, max
            ),
            _ => "n=0".to_string(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(ms(10));
        h.record(ms(20));
        h.record(ms(30));
        assert_eq!(h.mean(), Some(ms(20)));
        assert_eq!(h.min(), Some(ms(10)));
        assert_eq!(h.max(), Some(ms(30)));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn percentiles_bracket_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(ms(1)); // bucket up to 1.024 ms
        }
        h.record(ms(1000)); // one outlier
        let p50 = h.percentile(50.0).unwrap().as_micros();
        assert!(p50 <= 1_024, "p50 {p50}");
        let p99 = h.percentile(99.0).unwrap().as_micros();
        assert!(p99 <= 1_024, "p99 {p99}");
        let p100 = h.percentile(100.0).unwrap().as_micros();
        assert!(p100 >= 524_288, "p100 {p100}");
    }

    #[test]
    fn zero_and_huge_samples_clamp_to_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_secs(1 << 30));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0).is_some());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        a.record(ms(5));
        let mut b = LatencyHistogram::new();
        b.record(ms(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(ms(5)));
        assert_eq!(a.max(), Some(ms(500)));
        assert_eq!(a.mean(), Some(SimDuration::from_micros(252_500)));
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(ms(1));
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn zero_percentile_rejected() {
        LatencyHistogram::new().percentile(0.0);
    }

    #[test]
    fn distinguishes_cache_hit_from_disk_miss_latencies() {
        // The Fig. 8 story at histogram level: ~0.8 ms cached vs ~90 ms
        // disk-bound responses are separated by many buckets.
        let mut warm = LatencyHistogram::new();
        let mut cold = LatencyHistogram::new();
        for _ in 0..1000 {
            warm.record(SimDuration::from_micros(800));
            cold.record(ms(90));
        }
        let w99 = warm.percentile(99.0).unwrap();
        let c50 = cold.percentile(50.0).unwrap();
        assert!(c50.as_micros() > 50 * w99.as_micros());
    }
}
