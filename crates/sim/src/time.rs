//! Simulated time.
//!
//! All simulation time is expressed in integer microseconds since the start
//! of the simulation. Integer time keeps the event queue total-ordered and
//! the whole simulation bit-for-bit deterministic across runs and platforms.
//!
//! Two newtypes are provided: [`SimTime`], an absolute instant, and
//! [`SimDuration`], a span between instants. Arithmetic between them mirrors
//! `std::time::{Instant, Duration}`.

// lint:allow-file(unwrap-panic): operator impls mirror std::time, which
// panics on overflow; operator traits cannot return Result.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulated clock, in microseconds since the
/// simulation epoch (time zero).
///
/// # Examples
///
/// ```
/// use rh_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_secs_f64(), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use rh_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is later than {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow in addition"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow in subtraction"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn from_secs_f64_rounds_to_nearest_micro() {
        assert_eq!(SimDuration::from_secs_f64(0.000_000_4).as_micros(), 0);
        assert_eq!(SimDuration::from_secs_f64(0.000_000_6).as_micros(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn time_from_secs_f64_rejects_nan() {
        let _ = SimTime::from_secs_f64(f64::NAN);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1, SimTime::from_secs(15));
        assert_eq!(t1 - t0, SimDuration::from_secs(5));
        assert_eq!(t1 - SimDuration::from_secs(15), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let d = SimTime::from_secs(1).saturating_duration_since(SimTime::from_secs(2));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(4);
        let b = SimDuration::from_secs(1);
        assert_eq!(a + b, SimDuration::from_secs(5));
        assert_eq!(a - b, SimDuration::from_secs(3));
        assert_eq!(a * 3, SimDuration::from_secs(12));
        assert_eq!(a / 2, SimDuration::from_secs(2));
        assert_eq!(a * 0.5, SimDuration::from_secs(2));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_secs(3)));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis_for_test(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1_000)
        }
    }

    #[test]
    fn ordering_is_chronological() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
