//! Time-series recording for experiment outputs.
//!
//! Two recorders cover the paper's plots:
//!
//! * [`TimeSeries`] — sampled `(time, value)` pairs (e.g. cluster total
//!   throughput in Fig. 9),
//! * [`CompletionLog`] — raw completion timestamps from which windowed
//!   throughput is derived. Figure 7 plots "the average throughput of 50
//!   requests", which is exactly
//!   [`CompletionLog::throughput_per_window`] with a 50-request window.

use crate::time::{SimDuration, SimTime};

/// A sequence of `(time, value)` samples, ordered by insertion.
///
/// # Examples
///
/// ```
/// use rh_sim::series::TimeSeries;
/// use rh_sim::time::SimTime;
///
/// let mut s = TimeSeries::new("throughput");
/// s.push(SimTime::from_secs(1), 10.0);
/// s.push(SimTime::from_secs(2), 20.0);
/// assert_eq!(s.value_at(SimTime::from_secs(1)), Some(10.0));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last recorded sample — series are
    /// recorded in simulation order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(
                at >= last,
                "series {} not monotonic: {at} after {last}",
                self.name
            );
        }
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Step-interpolated value at `at`: the most recent sample at or before
    /// `at`, or `None` before the first sample.
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.samples.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => Some(self.samples[i].1),
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }

    /// Minimum value over samples with `lo <= t <= hi`.
    pub fn min_over(&self, lo: SimTime, hi: SimTime) -> Option<f64> {
        self.samples
            .iter()
            .filter(|(t, _)| *t >= lo && *t <= hi)
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Mean value over samples with `lo <= t <= hi`.
    pub fn mean_over(&self, lo: SimTime, hi: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= lo && *t <= hi)
            .map(|(_, v)| *v)
            .collect();
        crate::stats::mean(&vals)
    }

    /// Renders the series as two-column CSV (`time_s,<name>`).
    pub fn to_csv(&self) -> String {
        let mut out = format!("time_s,{}\n", self.name);
        for (t, v) in &self.samples {
            out.push_str(&format!("{:.6},{:.6}\n", t.as_secs_f64(), v));
        }
        out
    }

    /// The time integral of the step-interpolated series over `[lo, hi]`.
    ///
    /// Used to turn a throughput series into "requests served" (Fig. 9
    /// capacity-loss accounting).
    pub fn integral(&self, lo: SimTime, hi: SimTime) -> f64 {
        if hi <= lo || self.samples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut cur_t = lo;
        let mut cur_v = self.value_at(lo).unwrap_or(0.0);
        for &(t, v) in &self.samples {
            if t <= lo {
                continue;
            }
            if t >= hi {
                break;
            }
            total += cur_v * (t - cur_t).as_secs_f64();
            cur_t = t;
            cur_v = v;
        }
        total += cur_v * (hi - cur_t).as_secs_f64();
        total
    }
}

/// A log of completion instants (e.g. HTTP responses) supporting windowed
/// throughput extraction.
#[derive(Debug, Clone, Default)]
pub struct CompletionLog {
    stamps: Vec<SimTime>,
}

impl CompletionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CompletionLog::default()
    }

    /// Records one completion at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous completion.
    pub fn record(&mut self, at: SimTime) {
        if let Some(&last) = self.stamps.last() {
            assert!(at >= last, "completions must be recorded in order");
        }
        self.stamps.push(at);
    }

    /// Number of completions recorded.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True if nothing has completed.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Completions with `lo <= t < hi`.
    pub fn count_between(&self, lo: SimTime, hi: SimTime) -> usize {
        self.stamps.iter().filter(|t| **t >= lo && **t < hi).count()
    }

    /// Average throughput over each consecutive window of `window` requests:
    /// one `(t_end, window / (t_end - t_start))` sample per full window.
    ///
    /// This reproduces the paper's Fig. 7 methodology ("the changes of the
    /// average throughput of 50 requests").
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn throughput_per_window(&self, window: usize) -> TimeSeries {
        assert!(window > 0, "window must be positive");
        let mut series = TimeSeries::new(format!("throughput_w{window}"));
        let mut i = window;
        while i <= self.stamps.len() {
            let start = self.stamps[i - window];
            let end = self.stamps[i - 1];
            let span = (end - start).as_secs_f64();
            let rate = if span > 0.0 {
                (window as f64 - 1.0) / span
            } else {
                f64::INFINITY
            };
            series.push(end, rate);
            i += window;
        }
        series
    }

    /// Throughput sampled on fixed wall-clock buckets of length `bucket`.
    pub fn throughput_per_bucket(&self, bucket: SimDuration, until: SimTime) -> TimeSeries {
        assert!(!bucket.is_zero(), "bucket must be positive");
        let mut series = TimeSeries::new("throughput_bucketed");
        let mut lo = SimTime::ZERO;
        while lo < until {
            let hi = lo.saturating_add(bucket);
            let n = self.count_between(lo, hi);
            series.push(hi, n as f64 / bucket.as_secs_f64());
            lo = hi;
        }
        series
    }

    /// The longest gap between consecutive completions within `[lo, hi]`,
    /// including the gap from `lo` to the first completion and from the last
    /// completion to `hi`. This is the service-outage length seen by an
    /// open-loop client.
    pub fn longest_gap(&self, lo: SimTime, hi: SimTime) -> SimDuration {
        let mut prev = lo;
        let mut best = SimDuration::ZERO;
        for &t in self.stamps.iter().filter(|t| **t >= lo && **t <= hi) {
            let gap = t - prev;
            if gap > best {
                best = gap;
            }
            prev = t;
        }
        let tail = hi.saturating_duration_since(prev);
        if tail > best {
            best = tail;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn series_basic_accessors() {
        let mut s = TimeSeries::new("x");
        assert!(s.is_empty());
        s.push(t(1.0), 10.0);
        s.push(t(3.0), 30.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(), "x");
        assert_eq!(s.value_at(t(0.5)), None);
        assert_eq!(s.value_at(t(1.0)), Some(10.0));
        assert_eq!(s.value_at(t(2.0)), Some(10.0));
        assert_eq!(s.value_at(t(3.5)), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "not monotonic")]
    fn series_rejects_time_travel() {
        let mut s = TimeSeries::new("x");
        s.push(t(2.0), 1.0);
        s.push(t(1.0), 1.0);
    }

    #[test]
    fn min_and_mean_over_window() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(t(i as f64), (10 - i) as f64);
        }
        assert_eq!(s.min_over(t(2.0), t(4.0)), Some(6.0));
        assert_eq!(s.mean_over(t(2.0), t(4.0)), Some(7.0));
        assert_eq!(s.min_over(t(100.0), t(200.0)), None);
    }

    #[test]
    fn integral_of_step_function() {
        let mut s = TimeSeries::new("x");
        s.push(t(0.0), 2.0);
        s.push(t(5.0), 4.0);
        // 2*5 + 4*5 over [0, 10].
        assert!((s.integral(t(0.0), t(10.0)) - 30.0).abs() < 1e-9);
        // Sub-interval [4, 6]: 2*1 + 4*1.
        assert!((s.integral(t(4.0), t(6.0)) - 6.0).abs() < 1e-9);
        assert_eq!(s.integral(t(6.0), t(6.0)), 0.0);
    }

    #[test]
    fn csv_output_shape() {
        let mut s = TimeSeries::new("tp");
        s.push(t(1.0), 2.5);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,tp"));
        assert_eq!(lines.next(), Some("1.000000,2.500000"));
    }

    #[test]
    fn completion_log_windowed_throughput() {
        let mut log = CompletionLog::new();
        // 10 completions, one per 0.1 s => 10/s within windows of 5.
        for i in 1..=10 {
            log.record(t(i as f64 * 0.1));
        }
        let s = log.throughput_per_window(5);
        assert_eq!(s.len(), 2);
        for (_, rate) in s.iter() {
            assert!((rate - 10.0).abs() < 1e-6, "rate {rate}");
        }
    }

    #[test]
    fn completion_log_bucketed_throughput() {
        let mut log = CompletionLog::new();
        for i in 0..20 {
            log.record(t(i as f64 * 0.5)); // 2/s
        }
        let s = log.throughput_per_bucket(SimDuration::from_secs(2), t(10.0));
        assert_eq!(s.len(), 5);
        for (_, rate) in s.iter() {
            assert!((rate - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn longest_gap_detects_outage() {
        let mut log = CompletionLog::new();
        log.record(t(1.0));
        log.record(t(2.0));
        log.record(t(44.0)); // a 42-second outage
        log.record(t(45.0));
        let gap = log.longest_gap(t(0.0), t(50.0));
        assert!((gap.as_secs_f64() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn longest_gap_counts_tail() {
        let mut log = CompletionLog::new();
        log.record(t(1.0));
        let gap = log.longest_gap(t(0.0), t(100.0));
        assert!((gap.as_secs_f64() - 99.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_gap_spans_whole_interval() {
        let log = CompletionLog::new();
        let gap = log.longest_gap(t(10.0), t(30.0));
        assert!((gap.as_secs_f64() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn completion_log_rejects_unordered() {
        let mut log = CompletionLog::new();
        log.record(t(2.0));
        log.record(t(1.0));
    }
}
