//! A processor-sharing resource.
//!
//! [`PsResource`] models a device whose capacity (e.g. disk bandwidth in
//! bytes/second) is shared among all jobs currently in service. Each job
//! receives a weighted fair share, optionally clamped by a per-job rate cap,
//! and the aggregate capacity can shrink as concurrency grows (a *contention
//! penalty*, modelling disk seeks between interleaved streams).
//!
//! This is the workhorse behind every contention effect in the paper's
//! evaluation: saving 11 memory images in parallel to one disk, booting 11
//! guests at once, and serving cache-miss reads while other VMs do I/O.
//!
//! # Driving pattern
//!
//! The resource does not own scheduler events. The owning world:
//!
//! 1. calls [`PsResource::submit`] / [`PsResource::cancel`] as work arrives
//!    or is aborted,
//! 2. after *any* mutation, asks [`PsResource::next_completion`] and
//!    (re)schedules a single wake-up event at that time (the [`Retick`]
//!    helper manages the cancel/reschedule dance),
//! 3. on wake-up, calls [`PsResource::take_completed`] and dispatches each
//!    finished [`JobId`] to its purpose.
//!
//! As long as the world wakes at every reported completion time, job rates
//! are piecewise-constant between calls and the simulation is exact (up to
//! microsecond rounding).

use std::collections::BTreeMap;
use std::fmt;

use crate::engine::{EventHandle, Scheduler};
use crate::time::{SimDuration, SimTime};

/// Identifies a job submitted to a [`PsResource`] or
/// [`FifoResource`](crate::queue::FifoResource).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Job {
    remaining: f64,
    weight: f64,
}

/// A processor-sharing resource with optional per-job rate caps and a
/// concurrency-dependent efficiency loss.
///
/// Work and capacity are in arbitrary consistent units (we use bytes and
/// bytes/second throughout RootHammer-RS).
///
/// # Examples
///
/// ```
/// use rh_sim::resource::PsResource;
/// use rh_sim::time::SimTime;
///
/// // A 100 B/s device with two 100 B jobs: each runs at 50 B/s.
/// let mut disk = PsResource::new(100.0);
/// let t0 = SimTime::ZERO;
/// let a = disk.submit(t0, 100.0);
/// let _b = disk.submit(t0, 100.0);
/// let first = disk.next_completion(t0).unwrap();
/// assert!((first.as_secs_f64() - 2.0).abs() < 1e-4);
/// let done = disk.take_completed(first);
/// assert_eq!(done.len(), 2); // both finish together; ids drain in order
/// assert_eq!(done[0], a);
/// ```
#[derive(Debug, Clone)]
pub struct PsResource {
    capacity: f64,
    per_job_cap: Option<f64>,
    contention_penalty: f64,
    jobs: BTreeMap<u64, Job>,
    last_update: SimTime,
    next_id: u64,
    total_completed_work: f64,
}

impl PsResource {
    /// Creates a resource with aggregate `capacity` work-units per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "PsResource capacity must be positive and finite, got {capacity}"
        );
        PsResource {
            capacity,
            per_job_cap: None,
            contention_penalty: 0.0,
            jobs: BTreeMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
            total_completed_work: 0.0,
        }
    }

    /// Clamps every job's individual rate to `cap` work-units per second.
    ///
    /// Models a per-stream limit (e.g. a single VM's virtual block device
    /// cannot saturate the whole physical disk).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not strictly positive and finite.
    pub fn with_per_job_cap(mut self, cap: f64) -> Self {
        assert!(
            cap.is_finite() && cap > 0.0,
            "per-job cap must be positive and finite, got {cap}"
        );
        self.per_job_cap = Some(cap);
        self
    }

    /// Sets the contention penalty `p`: with `n` concurrent jobs, the
    /// aggregate capacity becomes `capacity / (1 + p * (n - 1))`.
    ///
    /// A penalty of 0 is ideal sharing; positive values model the seek
    /// overhead of interleaving independent sequential streams on a disk.
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or not finite.
    pub fn with_contention_penalty(mut self, p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 0.0,
            "contention penalty must be non-negative and finite, got {p}"
        );
        self.contention_penalty = p;
        self
    }

    /// Aggregate capacity with `n` concurrent jobs.
    pub fn effective_capacity(&self, n: usize) -> f64 {
        if n == 0 {
            return self.capacity;
        }
        self.capacity / (1.0 + self.contention_penalty * (n as f64 - 1.0))
    }

    /// The configured single-stream capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of jobs currently in service.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs are in service.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work units completed over the lifetime of the resource.
    pub fn total_completed_work(&self) -> f64 {
        self.total_completed_work
    }

    /// Remaining work of a job, or `None` if unknown/finished.
    pub fn remaining(&self, id: JobId) -> Option<f64> {
        self.jobs.get(&id.0).map(|j| j.remaining)
    }

    fn rate_of(&self, job: &Job, total_weight: f64, n: usize) -> f64 {
        let share = job.weight / total_weight * self.effective_capacity(n);
        match self.per_job_cap {
            Some(cap) => share.min(cap),
            None => share,
        }
    }

    /// Progresses all jobs up to `now`.
    ///
    /// Called implicitly by every mutating method; only needed directly when
    /// querying [`remaining`](Self::remaining) at a fresh instant.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last update.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "PsResource cannot advance backwards: {now} < {}",
            self.last_update
        );
        let elapsed = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        // lint:allow(float-eq): a zero duration converts to exactly 0.0
        if elapsed == 0.0 || self.jobs.is_empty() {
            return;
        }
        let n = self.jobs.len();
        let total_weight: f64 = self.jobs.values().map(|j| j.weight).sum();
        let rates: Vec<(u64, f64)> = self
            .jobs
            .iter()
            .map(|(&id, j)| (id, self.rate_of(j, total_weight, n)))
            .collect();
        for (id, rate) in rates {
            let Some(job) = self.jobs.get_mut(&id) else {
                continue; // unreachable: ids were collected from this map above
            };
            let delta = rate * elapsed;
            // Absorb microsecond rounding: anything within 2 µs of service
            // at the current rate counts as complete.
            let eps = rate * 2e-6;
            if job.remaining <= delta + eps {
                self.total_completed_work += job.remaining;
                job.remaining = 0.0;
            } else {
                self.total_completed_work += delta;
                job.remaining -= delta;
            }
        }
    }

    /// Submits a job of `work` units with weight 1, returning its id.
    pub fn submit(&mut self, now: SimTime, work: f64) -> JobId {
        self.submit_weighted(now, work, 1.0)
    }

    /// Submits a job of `work` units with the given fair-share `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative/non-finite or `weight` is not strictly
    /// positive and finite.
    pub fn submit_weighted(&mut self, now: SimTime, work: f64, weight: f64) -> JobId {
        assert!(
            work.is_finite() && work >= 0.0,
            "job work must be non-negative and finite, got {work}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "job weight must be positive and finite, got {weight}"
        );
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                remaining: work,
                weight,
            },
        );
        JobId(id)
    }

    /// Aborts a job, returning its remaining work, or `None` if it already
    /// completed or never existed.
    pub fn cancel(&mut self, now: SimTime, id: JobId) -> Option<f64> {
        self.advance(now);
        self.jobs.remove(&id.0).map(|j| j.remaining)
    }

    /// Aborts every job in service, returning their ids.
    pub fn cancel_all(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let ids: Vec<JobId> = self.jobs.keys().map(|&k| JobId(k)).collect();
        self.jobs.clear();
        ids
    }

    /// Advances to `now` and removes every finished job, returning their ids
    /// in submission order.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let done: Vec<u64> = self
            .jobs
            .iter()
            // lint:allow(float-eq): `advance` assigns exactly 0.0 at completion
            .filter(|(_, j)| j.remaining == 0.0)
            .map(|(&id, _)| id)
            .collect();
        for id in &done {
            self.jobs.remove(id);
        }
        done.into_iter().map(JobId).collect()
    }

    /// The earliest instant at which some job will finish, assuming no
    /// further submissions or cancellations, or `None` if idle.
    ///
    /// The returned time is rounded *up* to the next microsecond so that a
    /// wake-up scheduled at it is guaranteed to observe the completion.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.jobs.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_update);
        let base = (now - self.last_update).as_secs_f64();
        let n = self.jobs.len();
        let total_weight: f64 = self.jobs.values().map(|j| j.weight).sum();
        let mut best = f64::INFINITY;
        for job in self.jobs.values() {
            let rate = self.rate_of(job, total_weight, n);
            let left = (job.remaining - rate * base).max(0.0);
            let t = left / rate;
            if t < best {
                best = t;
            }
        }
        let micros = (best * 1e6).ceil() as u64 + 1;
        Some(now + SimDuration::from_micros(micros))
    }
}

/// Manages the single pending wake-up event of a driven resource.
///
/// A world embeds one `Retick` per resource and calls
/// [`reschedule`](Retick::reschedule) after every mutation; the helper
/// cancels the previous wake-up and schedules the new one (or none if the
/// resource went idle).
#[derive(Debug, Default)]
pub struct Retick {
    handle: Option<EventHandle>,
}

impl Retick {
    /// Creates an unarmed helper.
    pub fn new() -> Self {
        Retick { handle: None }
    }

    /// Cancels the current wake-up (if armed) and, when `at` is `Some`,
    /// schedules `make()` at that instant.
    pub fn reschedule<E>(
        &mut self,
        sched: &mut Scheduler<E>,
        at: Option<SimTime>,
        make: impl FnOnce() -> E,
    ) {
        if let Some(h) = self.handle.take() {
            sched.cancel(h);
        }
        if let Some(t) = at {
            self.handle = Some(sched.schedule_at(t, make()));
        }
    }

    /// Cancels the current wake-up without scheduling a new one.
    pub fn disarm<E>(&mut self, sched: &mut Scheduler<E>) {
        if let Some(h) = self.handle.take() {
            sched.cancel(h);
        }
    }

    /// True if a wake-up is currently armed.
    pub fn is_armed(&self) -> bool {
        self.handle.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_job_runs_at_full_capacity() {
        let mut r = PsResource::new(50.0);
        let id = r.submit(SimTime::ZERO, 100.0);
        let done_at = r.next_completion(SimTime::ZERO).unwrap();
        assert!((done_at.as_secs_f64() - 2.0).abs() < 1e-4);
        assert_eq!(r.take_completed(done_at), vec![id]);
        assert!(r.is_empty());
    }

    #[test]
    fn two_jobs_share_capacity_equally() {
        let mut r = PsResource::new(100.0);
        let _a = r.submit(SimTime::ZERO, 100.0);
        let _b = r.submit(SimTime::ZERO, 100.0);
        // Each gets 50/s, both finish at t=2.
        let next = r.next_completion(SimTime::ZERO).unwrap();
        assert!((next.as_secs_f64() - 2.0).abs() < 1e-4);
        let done = r.take_completed(next);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn late_arrival_slows_first_job() {
        let mut r = PsResource::new(100.0);
        let a = r.submit(SimTime::ZERO, 100.0);
        // At t=0.5 job a has done 50 units; b arrives.
        let b = r.submit(t(0.5), 100.0);
        // Both now at 50/s: a needs 1 more second (done t=1.5),
        // b needs 2 more seconds but speeds up once a leaves.
        let next = r.next_completion(t(0.5)).unwrap();
        assert!((next.as_secs_f64() - 1.5).abs() < 1e-4);
        assert_eq!(r.take_completed(next), vec![a]);
        // b has 50 left, now alone at 100/s: finishes at 2.0.
        let next = r.next_completion(next).unwrap();
        assert!((next.as_secs_f64() - 2.0).abs() < 1e-4);
        assert_eq!(r.take_completed(next), vec![b]);
    }

    #[test]
    fn per_job_cap_limits_single_stream() {
        let mut r = PsResource::new(100.0).with_per_job_cap(20.0);
        let _a = r.submit(SimTime::ZERO, 40.0);
        let next = r.next_completion(SimTime::ZERO).unwrap();
        assert!((next.as_secs_f64() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn contention_penalty_shrinks_aggregate() {
        // penalty 1.0 with 2 jobs => capacity halves => each job quarters.
        let mut r = PsResource::new(100.0).with_contention_penalty(1.0);
        let _a = r.submit(SimTime::ZERO, 100.0);
        let _b = r.submit(SimTime::ZERO, 100.0);
        // Effective capacity 50, each 25/s, 100 units => 4 s.
        let next = r.next_completion(SimTime::ZERO).unwrap();
        assert!((next.as_secs_f64() - 4.0).abs() < 1e-4);
    }

    #[test]
    fn weights_divide_capacity_proportionally() {
        let mut r = PsResource::new(90.0);
        let a = r.submit_weighted(SimTime::ZERO, 60.0, 2.0);
        let b = r.submit_weighted(SimTime::ZERO, 60.0, 1.0);
        // a at 60/s, b at 30/s: a finishes at t=1, b then at 60/s... b has 30
        // left at t=1, alone at 90/s => done at 1 + 30/90 = 1.333.
        let next = r.next_completion(SimTime::ZERO).unwrap();
        assert!((next.as_secs_f64() - 1.0).abs() < 1e-4);
        assert_eq!(r.take_completed(next), vec![a]);
        let next2 = r.next_completion(next).unwrap();
        assert!((next2.as_secs_f64() - 4.0 / 3.0).abs() < 1e-4);
        assert_eq!(r.take_completed(next2), vec![b]);
    }

    #[test]
    fn cancel_returns_remaining_work() {
        let mut r = PsResource::new(100.0);
        let a = r.submit(SimTime::ZERO, 100.0);
        let left = r.cancel(t(0.25), a).unwrap();
        assert!((left - 75.0).abs() < 1e-6);
        assert!(r.is_empty());
        assert!(r.next_completion(t(0.25)).is_none());
        assert!(r.cancel(t(0.3), a).is_none());
    }

    #[test]
    fn cancel_all_empties_resource() {
        let mut r = PsResource::new(10.0);
        r.submit(SimTime::ZERO, 5.0);
        r.submit(SimTime::ZERO, 5.0);
        let ids = r.cancel_all(SimTime::ZERO);
        assert_eq!(ids.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn work_conservation() {
        // Total completed work equals total submitted work once drained.
        let mut r = PsResource::new(33.0).with_contention_penalty(0.3);
        let mut now = SimTime::ZERO;
        let works = [10.0, 55.0, 7.0, 120.0];
        for &w in &works {
            r.submit(now, w);
            now += SimDuration::from_secs(1);
            r.advance(now);
        }
        // Drain everything.
        while let Some(next) = r.next_completion(now) {
            now = next;
            r.take_completed(now);
        }
        let total: f64 = works.iter().sum();
        assert!(
            (r.total_completed_work() - total).abs() < 1e-3,
            "conserved {} vs {}",
            r.total_completed_work(),
            total
        );
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut r = PsResource::new(10.0);
        let a = r.submit(SimTime::ZERO, 0.0);
        let next = r.next_completion(SimTime::ZERO).unwrap();
        assert!(next.as_secs_f64() < 1e-4);
        assert_eq!(r.take_completed(next), vec![a]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = PsResource::new(0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut r = PsResource::new(1.0);
        r.advance(t(2.0));
        r.advance(t(1.0));
    }

    #[test]
    fn retick_replaces_pending_event() {
        use crate::engine::{Scheduler, Simulation, World};

        #[derive(Default)]
        struct W {
            fired: Vec<u32>,
        }
        impl World for W {
            type Event = u32;
            fn handle(&mut self, _s: &mut Scheduler<u32>, e: u32) {
                self.fired.push(e);
            }
        }
        let mut sim = Simulation::new(W::default());
        let mut retick = Retick::new();
        retick.reschedule(sim.scheduler_mut(), Some(t(1.0)), || 1);
        assert!(retick.is_armed());
        retick.reschedule(sim.scheduler_mut(), Some(t(2.0)), || 2);
        sim.run_until_idle();
        // Only the second event fires.
        assert_eq!(sim.world().fired, vec![2]);
    }

    #[test]
    fn retick_disarm_cancels() {
        use crate::engine::{Scheduler, Simulation, World};

        struct W;
        impl World for W {
            type Event = ();
            fn handle(&mut self, _s: &mut Scheduler<()>, _e: ()) {
                panic!("should never fire");
            }
        }
        let mut sim = Simulation::new(W);
        let mut retick = Retick::new();
        retick.reschedule(sim.scheduler_mut(), Some(t(1.0)), || ());
        retick.disarm(sim.scheduler_mut());
        assert!(!retick.is_armed());
        sim.run_until_idle();
    }
}
