//! Small statistics helpers: summary statistics and ordinary least squares.
//!
//! Section 5.6 of the paper extracts linear models such as
//! `reboot_os(n) = 3.8 n + 13` from measurements at n = 1..=11; the
//! [`linear_fit`] function performs exactly that extraction for our
//! regenerated data.

use std::fmt;

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Result of an ordinary-least-squares straight-line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfect fit). `NaN` when the
    /// response has zero variance.
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn at(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

impl fmt::Display for LinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intercept >= 0.0 {
            write!(f, "{:.2}n + {:.2}", self.slope, self.intercept)
        } else {
            write!(f, "{:.2}n - {:.2}", self.slope, -self.intercept)
        }
    }
}

/// Fits `y = slope·x + intercept` by ordinary least squares.
///
/// Returns `None` when fewer than two points are given, when the slices have
/// different lengths, or when all `x` values coincide (vertical line).
///
/// # Examples
///
/// ```
/// use rh_sim::stats::linear_fit;
///
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [5.0, 7.0, 9.0];
/// let fit = linear_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 3.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    // lint:allow(float-eq): degenerate-input guard, exact 0.0 sentinel
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    // lint:allow(float-eq): same degenerate-input guard as sxx above
    let r_squared = if syy == 0.0 {
        f64::NAN
    } else {
        1.0 - ss_res / syy
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(std_dev(&[2.0, 4.0]), Some(1.0));
    }

    #[test]
    fn perfect_line_recovered() {
        let xs: Vec<f64> = (1..=11).map(|n| n as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.8 * x + 13.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.8).abs() < 1e-9);
        assert!((fit.intercept - 13.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.at(5.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_fit_is_reasonable() {
        use crate::rng::SimRng;
        let mut rng = SimRng::from_seed(77);
        let xs: Vec<f64> = (0..200).map(|n| n as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| -0.55 * x + 43.0 + (rng.next_f64() - 0.5))
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 0.55).abs() < 0.01, "slope {}", fit.slope);
        assert!((fit.intercept - 43.0).abs() < 1.0);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn flat_response_has_nan_r2() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert!(fit.r_squared.is_nan());
    }

    #[test]
    fn display_formats_sign() {
        let f = LinearFit {
            slope: 3.9,
            intercept: 60.0,
            r_squared: 1.0,
        };
        assert_eq!(f.to_string(), "3.90n + 60.00");
        let g = LinearFit {
            slope: 0.43,
            intercept: -0.07,
            r_squared: 1.0,
        };
        assert_eq!(g.to_string(), "0.43n - 0.07");
    }
}
