//! A lean scheduler for small `Copy` events.
//!
//! The general-purpose [`Scheduler`](crate::engine::Scheduler) supports
//! arbitrary payload types and generation-checked cancellation, which costs
//! every event a slab slot round-trip (insert on schedule, remove on fire).
//! Many hot inner loops — benchmark drivers, tick generators, fleet-scale
//! sweeps — use tiny `Copy` events and never cancel. [`FlatScheduler`]
//! serves exactly that shape: the payload rides *inside* the queue entry, so
//! scheduling is one heap push and firing is one heap pop, with no slot
//! indirection, no handles, and no stale-entry skimming.
//!
//! The ordering contract is identical to the general engine: ascending
//! `(time, seq)` with `seq` breaking equal-timestamp ties in insertion
//! (FIFO) order, so a world ported between the two schedulers sees the same
//! event sequence.
//!
//! Measured by `corebench` (see `PERFORMANCE.md`): the flat path is the
//! upper bound on engine throughput, and the gap between `engine/chain/*`
//! and `flat/chain` is the price of cancellation support.
//!
//! # Examples
//!
//! ```
//! use rh_sim::flat::{FlatScheduler, FlatSimulation, FlatWorld};
//! use rh_sim::time::SimDuration;
//!
//! struct Countdown { left: u32 }
//!
//! impl FlatWorld for Countdown {
//!     type Event = u32;
//!     fn handle(&mut self, sched: &mut FlatScheduler<u32>, n: u32) {
//!         self.left = n;
//!         if n > 0 {
//!             sched.schedule_in(SimDuration::from_micros(1), n - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = FlatSimulation::new(Countdown { left: u32::MAX });
//! sim.scheduler_mut().schedule_in(SimDuration::ZERO, 3);
//! sim.run_until_idle();
//! assert_eq!(sim.world().left, 0);
//! assert_eq!(sim.scheduler().fired(), 4);
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A queued flat event: ordering key plus inline payload.
#[derive(Debug, Clone, Copy)]
struct FlatEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering ignores the payload: `seq` is unique per scheduler, so
// `(time, seq)` is already a total order.
impl<E> PartialEq for FlatEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<E> Eq for FlatEntry<E> {}

impl<E> PartialOrd for FlatEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for FlatEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue and clock of a flat simulation.
///
/// Unlike [`Scheduler`](crate::engine::Scheduler) there are no
/// [`EventHandle`](crate::engine::EventHandle)s: scheduled events always
/// fire. See the [module docs](self) for when this trade is right.
pub struct FlatScheduler<E: Copy> {
    now: SimTime,
    heap: BinaryHeap<Reverse<FlatEntry<E>>>,
    seq: u64,
    fired: u64,
}

impl<E: Copy> FlatScheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        FlatScheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            fired: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of pending events. O(1).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at} before now ({})",
            self.now
        );
        self.seq += 1;
        self.heap.push(Reverse(FlatEntry {
            time: at,
            seq: self.seq,
            event,
        }));
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// The firing time of the next pending event, if any.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the next event, advancing the clock to its firing time.
    fn pop(&mut self) -> Option<E> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.fired += 1;
        Some(entry.event)
    }
}

impl<E: Copy> Default for FlatScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Copy> fmt::Debug for FlatScheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatScheduler")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("fired", &self.fired)
            .finish()
    }
}

/// Application state driven by a [`FlatScheduler`].
///
/// The flat counterpart of [`World`](crate::engine::World); the `Copy`
/// bound on the event type is what lets payloads ride inline in the queue.
pub trait FlatWorld: Sized {
    /// The event vocabulary of this world. Small `Copy` types only — the
    /// payload is stored inside every queue entry.
    type Event: Copy;

    /// Reacts to `event` firing at `sched.now()`.
    fn handle(&mut self, sched: &mut FlatScheduler<Self::Event>, event: Self::Event);
}

/// A flat world plus its scheduler: the complete simulation.
///
/// Mirrors [`Simulation`](crate::engine::Simulation) minus cancellation.
#[derive(Debug)]
pub struct FlatSimulation<W: FlatWorld> {
    world: W,
    sched: FlatScheduler<W::Event>,
}

impl<W: FlatWorld> FlatSimulation<W> {
    /// Creates a simulation at time zero with the given world.
    pub fn new(world: W) -> Self {
        FlatSimulation {
            world,
            sched: FlatScheduler::new(),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Shared access to the scheduler.
    pub fn scheduler(&self) -> &FlatScheduler<W::Event> {
        &self.sched
    }

    /// Mutable access to the scheduler (for seeding initial events).
    pub fn scheduler_mut(&mut self) -> &mut FlatScheduler<W::Event> {
        &mut self.sched
    }

    /// Fires the single next event, if any. Returns `true` if one fired.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some(event) => {
                self.world.handle(&mut self.sched, event);
                true
            }
            None => false,
        }
    }

    /// Runs until no events remain, then returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Fires every event scheduled at or before `deadline`, then advances
    /// the clock to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.sched.peek_next_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl FlatWorld for Recorder {
        type Event = u32;
        fn handle(&mut self, sched: &mut FlatScheduler<u32>, event: u32) {
            self.seen.push((sched.now(), event));
        }
    }

    #[test]
    fn fires_in_time_order_with_fifo_ties() {
        let mut sim = FlatSimulation::new(Recorder::default());
        sim.scheduler_mut().schedule_at(SimTime::from_secs(2), 20);
        sim.scheduler_mut().schedule_at(SimTime::from_secs(1), 11);
        sim.scheduler_mut().schedule_at(SimTime::from_secs(1), 12);
        sim.run_until_idle();
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![11, 12, 20]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn matches_general_engine_order() {
        // The same event stream through the general engine and the flat
        // scheduler must fire in the same order.
        use crate::engine::{Scheduler, Simulation, World};

        #[derive(Default)]
        struct GenRecorder {
            seen: Vec<(SimTime, u32)>,
        }
        impl World for GenRecorder {
            type Event = u32;
            fn handle(&mut self, sched: &mut Scheduler<u32>, event: u32) {
                self.seen.push((sched.now(), event));
            }
        }

        let stream: Vec<(u64, u32)> = (0..100).map(|i| (u64::from(i * 31 % 17), i)).collect();
        let mut flat = FlatSimulation::new(Recorder::default());
        let mut general = Simulation::new(GenRecorder::default());
        for &(us, ev) in &stream {
            flat.scheduler_mut()
                .schedule_at(SimTime::from_micros(us), ev);
            general
                .scheduler_mut()
                .schedule_at(SimTime::from_micros(us), ev);
        }
        flat.run_until_idle();
        general.run_until_idle();
        assert_eq!(flat.world().seen, general.world().seen);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = FlatSimulation::new(Recorder::default());
        sim.scheduler_mut().schedule_at(SimTime::from_secs(1), 1);
        sim.scheduler_mut().schedule_at(SimTime::from_secs(9), 9);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.world().seen.len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.scheduler().pending(), 1);
        sim.run_until_idle();
        assert_eq!(sim.world().seen.len(), 2);
        assert_eq!(sim.scheduler().fired(), 2);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut sim = FlatSimulation::new(Recorder::default());
        sim.scheduler_mut().schedule_at(SimTime::from_secs(5), 0);
        sim.run_until_idle();
        sim.scheduler_mut().schedule_at(SimTime::from_secs(1), 1);
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = FlatSimulation::new(Recorder::default());
        sim.scheduler_mut().schedule_at(SimTime::ZERO, 7);
        sim.run_until_idle();
        assert_eq!(sim.into_world().seen, vec![(SimTime::ZERO, 7)]);
    }
}
