//! Pluggable event-queue backends for the simulation engine.
//!
//! The engine's hot loop is dominated by priority-queue traffic: every
//! simulated event is pushed once and popped once, in strict `(time, seq)`
//! order. This module abstracts that queue behind the [`EventQueue`] trait
//! so alternative structures can be swapped in and benchmarked without
//! touching the [`Scheduler`](crate::engine::Scheduler) API or any
//! [`World`](crate::engine::World) implementation.
//!
//! Two backends ship today:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap` of reversed keys;
//!   O(log n) push/pop. The default, and the reference implementation.
//! * [`CalendarQueue`] — Brown's calendar queue (CACM 1988): events hash
//!   into time-bucketed "days" of a rotating "year"; push is O(1) amortized
//!   and pop scans the current day. For the engine's workloads (bounded
//!   horizon, similar inter-event gaps) this trades the heap's `log n` for
//!   near-constant work per operation.
//!
//! Both backends implement the *same total order* — ascending `(time, seq)`
//! with `seq` breaking ties in insertion (FIFO) order — so a simulation's
//! event sequence is bit-for-bit identical whichever queue is selected.
//! `crates/sim/tests/queue_props.rs` proves this equivalence property over
//! random event streams, and `tests/determinism.rs` proves it end-to-end
//! through the VMM stack.
//!
//! # Examples
//!
//! ```
//! use rh_sim::equeue::{BinaryHeapQueue, CalendarQueue, EventQueue, QueueEntry};
//! use rh_sim::time::SimTime;
//!
//! let mut heap = BinaryHeapQueue::new();
//! let mut cal = CalendarQueue::new();
//! for (seq, micros) in [(1u64, 500u64), (2, 100), (3, 100), (4, 900)] {
//!     let entry = QueueEntry { time: SimTime::from_micros(micros), seq, index: 0, generation: 0 };
//!     heap.push(entry);
//!     cal.push(entry);
//! }
//! // Identical pop order: ascending time, FIFO on the 100 µs tie.
//! let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
//! let cal_order: Vec<u64> = std::iter::from_fn(|| cal.pop()).map(|e| e.seq).collect();
//! assert_eq!(order, vec![2, 3, 1, 4]);
//! assert_eq!(order, cal_order);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One pending event as seen by a queue backend: the ordering key plus the
/// slot coordinates of its payload.
///
/// Payloads live in the scheduler's slab (see
/// [`Slab`](crate::slab::Slab)); the queue only moves these small `Copy`
/// records around. Ordering is by `(time, seq)` — `seq` is unique per
/// scheduler, so the order is total and FIFO among equal timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueEntry {
    /// Absolute firing time.
    pub time: SimTime,
    /// Scheduler-wide insertion sequence number (unique; breaks ties).
    pub seq: u64,
    /// Payload slot index in the scheduler's slab.
    pub index: u32,
    /// Payload slot generation (stale entries are skimmed by the scheduler).
    pub generation: u32,
}

impl QueueEntry {
    /// The `(time, seq)` ordering key.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A min-priority queue of [`QueueEntry`]s ordered by `(time, seq)`.
///
/// Implementations must be deterministic: the pop sequence may depend only
/// on the sequence of pushes and pops, never on addresses, hashes, or wall
/// time. All backends must produce identical pop sequences for identical
/// push/pop histories — the engine's determinism contract rides on it.
pub trait EventQueue {
    /// Inserts an entry.
    fn push(&mut self, entry: QueueEntry);

    /// Removes and returns the minimum entry, or `None` if empty.
    fn pop(&mut self) -> Option<QueueEntry>;

    /// Returns the minimum entry without removing it.
    fn peek(&self) -> Option<QueueEntry>;

    /// The number of entries currently queued.
    fn len(&self) -> usize;

    /// True if no entries are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference backend: a `std::collections::BinaryHeap` min-heap.
///
/// O(log n) push and pop. Chosen as the default because its constants are
/// excellent for the event counts a single-host simulation reaches (tens of
/// thousands of pending events at most).
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
}

impl BinaryHeapQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventQueue for BinaryHeapQueue {
    fn push(&mut self, entry: QueueEntry) {
        self.heap.push(Reverse(entry));
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek(&self) -> Option<QueueEntry> {
        self.heap.peek().map(|&Reverse(e)| e)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Minimum number of buckets a calendar keeps.
const CAL_MIN_BUCKETS: usize = 4;
/// Resize up when the population exceeds `2 × buckets`; down below `buckets / 2`.
const CAL_GROW_FACTOR: usize = 2;

/// Brown's calendar queue: an open-hashed, time-indexed priority queue.
///
/// Entries hash into `buckets` by `time / width mod buckets` — like days of
/// a year. A pop scans forward from the "today" bucket, taking the earliest
/// entry that falls within the current year; after a full fruitless year the
/// queue falls back to a direct scan for the global minimum (the standard
/// remedy for sparse or skewed timestamp distributions). Bucket count and
/// width adapt to the live population, keeping both push and pop O(1)
/// amortized for workloads whose inter-event gaps are reasonably stable —
/// exactly the self-scheduling tick/timeout traffic the VMM generates.
///
/// Determinism: bucket placement and scan order depend only on entry
/// timestamps and the push/pop history. Within a bucket the minimum is
/// selected by `(time, seq)`, so equal timestamps still pop FIFO.
///
/// # Examples
///
/// ```
/// use rh_sim::equeue::{CalendarQueue, EventQueue, QueueEntry};
/// use rh_sim::time::SimTime;
///
/// let mut q = CalendarQueue::new();
/// for seq in 0..1000u64 {
///     q.push(QueueEntry {
///         time: SimTime::from_micros(seq * 17 % 400),
///         seq,
///         index: seq as u32,
///         generation: 0,
///     });
/// }
/// let mut last = (SimTime::ZERO, 0u64);
/// while let Some(e) = q.pop() {
///     assert!((e.time, e.seq) >= last, "pops must be sorted");
///     last = (e.time, e.seq);
/// }
/// ```
#[derive(Debug)]
pub struct CalendarQueue {
    /// `buckets.len()` is always a power of two.
    buckets: Vec<Vec<QueueEntry>>,
    /// Bucket width in microseconds (≥ 1).
    width: u64,
    /// Live entry count across all buckets.
    count: usize,
    /// Lower bound on the next pop's timestamp (time of the last pop).
    last_us: u64,
}

impl CalendarQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: vec![Vec::new(); CAL_MIN_BUCKETS],
            width: 1,
            count: 0,
            last_us: 0,
        }
    }

    fn bucket_of(&self, t_us: u64) -> usize {
        ((t_us / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Position of the minimum `(time, seq)` entry in `bucket`, if any.
    fn min_in(bucket: &[QueueEntry]) -> Option<usize> {
        bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.key())
            .map(|(i, _)| i)
    }

    /// Locates the next entry to pop: first a one-year forward scan from the
    /// "today" bucket, then a direct global-minimum search as fallback.
    fn find_next(&self) -> Option<(usize, usize)> {
        if self.count == 0 {
            return None;
        }
        let n = self.buckets.len();
        let virtual_day = self.last_us / self.width;
        for k in 0..n as u64 {
            let day = virtual_day.saturating_add(k);
            let b = (day as usize) & (n - 1);
            // An entry belongs to this day iff its time maps here without
            // wrapping into a later year.
            let day_end = day.saturating_add(1).saturating_mul(self.width);
            let candidate = self.buckets[b]
                .iter()
                .enumerate()
                .filter(|(_, e)| e.time.as_micros() < day_end)
                .min_by_key(|(_, e)| e.key());
            if let Some((i, _)) = candidate {
                return Some((b, i));
            }
        }
        // Sparse tail: no entry within a year of `last_us`. Take the global
        // minimum directly.
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, bucket)| Self::min_in(bucket).map(|i| (b, i)))
            .min_by_key(|&(b, i)| self.buckets[b][i].key())
    }

    /// Rebuilds the calendar with a bucket count sized to `count` and a
    /// width estimated from the current timestamp spread. O(count), but
    /// amortized over the pushes/pops that triggered it.
    fn resize(&mut self) {
        let target = self
            .count
            .next_power_of_two()
            .max(CAL_MIN_BUCKETS)
            .min(1 << 20);
        let mut entries: Vec<QueueEntry> = Vec::with_capacity(self.count);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        // Width ≈ twice the mean gap between live timestamps, so one "day"
        // holds a couple of events on average.
        let (min_t, max_t) = entries.iter().fold((u64::MAX, 0u64), |(lo, hi), e| {
            let t = e.time.as_micros();
            (lo.min(t), hi.max(t))
        });
        let spread = max_t.saturating_sub(min_t);
        self.width = (spread / (entries.len().max(1) as u64 / 2).max(1)).max(1);
        self.buckets = vec![Vec::new(); target];
        for e in entries {
            let b = self.bucket_of(e.time.as_micros());
            self.buckets[b].push(e);
        }
    }

    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        if self.count > n * CAL_GROW_FACTOR || (n > CAL_MIN_BUCKETS && self.count < n / 2) {
            self.resize();
        }
    }
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue for CalendarQueue {
    fn push(&mut self, entry: QueueEntry) {
        // The year scan in `find_next` is exact only for entries at or after
        // `last_us`; rewind the calendar if a push lands earlier (the engine
        // never does this — its clock is monotonic — but the structure stays
        // correct standalone).
        self.last_us = self.last_us.min(entry.time.as_micros());
        let b = self.bucket_of(entry.time.as_micros());
        self.buckets[b].push(entry);
        self.count += 1;
        self.maybe_resize();
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let (b, i) = self.find_next()?;
        // Buckets are unordered bags; the minimum is selected by key, so
        // swap_remove's reordering cannot affect the pop sequence.
        let entry = self.buckets[b].swap_remove(i);
        self.count -= 1;
        self.last_us = entry.time.as_micros();
        self.maybe_resize();
        Some(entry)
    }

    fn peek(&self) -> Option<QueueEntry> {
        self.find_next().map(|(b, i)| self.buckets[b][i])
    }

    fn len(&self) -> usize {
        self.count
    }
}

/// Which [`EventQueue`] backend a scheduler uses.
///
/// Selected at construction via
/// [`Scheduler::with_queue`](crate::engine::Scheduler::with_queue) or
/// [`Simulation::with_queue`](crate::engine::Simulation::with_queue); the
/// choice affects performance only, never event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// [`BinaryHeapQueue`] (the default).
    #[default]
    BinaryHeap,
    /// [`CalendarQueue`].
    Calendar,
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueKind::BinaryHeap => write!(f, "binary-heap"),
            QueueKind::Calendar => write!(f, "calendar"),
        }
    }
}

/// Runtime-selected queue backend (internal to the scheduler, public for
/// the benches that measure the backends side by side).
#[derive(Debug)]
pub enum AnyQueue {
    /// Binary-heap backend.
    Heap(BinaryHeapQueue),
    /// Calendar-queue backend.
    Calendar(CalendarQueue),
}

impl AnyQueue {
    /// Creates the backend selected by `kind`.
    pub fn of_kind(kind: QueueKind) -> Self {
        match kind {
            QueueKind::BinaryHeap => AnyQueue::Heap(BinaryHeapQueue::new()),
            QueueKind::Calendar => AnyQueue::Calendar(CalendarQueue::new()),
        }
    }

    /// The kind of this backend.
    pub fn kind(&self) -> QueueKind {
        match self {
            AnyQueue::Heap(_) => QueueKind::BinaryHeap,
            AnyQueue::Calendar(_) => QueueKind::Calendar,
        }
    }
}

impl EventQueue for AnyQueue {
    fn push(&mut self, entry: QueueEntry) {
        match self {
            AnyQueue::Heap(q) => q.push(entry),
            AnyQueue::Calendar(q) => q.push(entry),
        }
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        match self {
            AnyQueue::Heap(q) => q.pop(),
            AnyQueue::Calendar(q) => q.pop(),
        }
    }

    fn peek(&self) -> Option<QueueEntry> {
        match self {
            AnyQueue::Heap(q) => q.peek(),
            AnyQueue::Calendar(q) => q.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyQueue::Heap(q) => q.len(),
            AnyQueue::Calendar(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(us: u64, seq: u64) -> QueueEntry {
        QueueEntry {
            time: SimTime::from_micros(us),
            seq,
            index: seq as u32,
            generation: 0,
        }
    }

    fn drain(q: &mut impl EventQueue) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.as_micros(), e.seq))
            .collect()
    }

    #[test]
    fn heap_pops_sorted_with_fifo_ties() {
        let mut q = BinaryHeapQueue::new();
        for (us, seq) in [(5, 1), (1, 2), (5, 3), (0, 4)] {
            q.push(entry(us, seq));
        }
        assert_eq!(drain(&mut q), vec![(0, 4), (1, 2), (5, 1), (5, 3)]);
    }

    #[test]
    fn calendar_pops_sorted_with_fifo_ties() {
        let mut q = CalendarQueue::new();
        for (us, seq) in [(5, 1), (1, 2), (5, 3), (0, 4)] {
            q.push(entry(us, seq));
        }
        assert_eq!(drain(&mut q), vec![(0, 4), (1, 2), (5, 1), (5, 3)]);
    }

    #[test]
    fn calendar_handles_sparse_timestamps() {
        // Gaps far larger than any plausible bucket year force the direct
        // global-minimum fallback.
        let mut q = CalendarQueue::new();
        for (i, us) in [0u64, 10, 1_000_000_000, 20, 999, 5_000_000_000_000]
            .iter()
            .enumerate()
        {
            q.push(entry(*us, i as u64));
        }
        let popped = drain(&mut q);
        let times: Vec<u64> = popped.iter().map(|&(t, _)| t).collect();
        assert_eq!(
            times,
            vec![0, 10, 20, 999, 1_000_000_000, 5_000_000_000_000]
        );
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        let mut reference = BinaryHeapQueue::new();
        // Grow to 1000, drain to 10, grow again — crossing both resize
        // thresholds repeatedly.
        let mut seq = 0u64;
        for round in 0..3u64 {
            for i in 0..1000u64 {
                seq += 1;
                let e = entry(round * 10_000 + (i * 37) % 5_000, seq);
                q.push(e);
                reference.push(e);
            }
            for _ in 0..990 {
                assert_eq!(q.pop(), reference.pop());
            }
        }
        assert_eq!(drain(&mut q), drain(&mut reference));
    }

    #[test]
    fn peek_matches_pop_for_both_backends() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut q = AnyQueue::of_kind(kind);
            assert_eq!(q.peek(), None);
            for (us, seq) in [(9, 1), (2, 2), (2, 3)] {
                q.push(entry(us, seq));
            }
            while let Some(peeked) = q.peek() {
                assert_eq!(q.pop(), Some(peeked), "{kind}: peek/pop disagree");
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn any_queue_reports_kind_and_len() {
        let mut q = AnyQueue::of_kind(QueueKind::Calendar);
        assert_eq!(q.kind(), QueueKind::Calendar);
        q.push(entry(1, 1));
        assert_eq!(q.len(), 1);
        assert_eq!(
            AnyQueue::of_kind(QueueKind::BinaryHeap).kind(),
            QueueKind::BinaryHeap
        );
    }

    #[test]
    fn queue_kind_display() {
        assert_eq!(QueueKind::BinaryHeap.to_string(), "binary-heap");
        assert_eq!(QueueKind::Calendar.to_string(), "calendar");
    }
}
