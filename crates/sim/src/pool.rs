//! A deterministic scoped worker pool.
//!
//! The executor contract introduced with the parallel sweep executor
//! (`rh_bench::exec`, DESIGN.md §10) and reused by the `rh-lint` model
//! checker's parallel state exploration: a batch of **indexed, independent
//! tasks** runs across N workers, and the assembled output is
//! **byte-identical at any worker count** because
//!
//! 1. each task is a pure function of its submission index (workers never
//!    pass state to each other),
//! 2. results are assembled in submission order, not completion order, and
//! 3. the only shared mutable structures are the work-queue cursor and the
//!    result slots.
//!
//! The pool is std-only (`std::thread::scope`) and holds no threads between
//! batches — workers are born and joined inside [`run_indexed`], which
//! keeps the call synchronous and the borrow story simple (the closure may
//! borrow the caller's stack).
//!
//! Panics inside `f` propagate out of [`run_indexed`] when the scope joins;
//! callers that need per-task isolation (the bench executor) wrap their
//! closure in [`std::panic::catch_unwind`] themselves.
//!
//! # Examples
//!
//! ```
//! let squares = rh_sim::pool::run_indexed(5, 4, |i| (i as u64) * (i as u64));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]); // submission order, any jobs
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `tasks` indexed tasks across up to `jobs` workers and returns the
/// results in index order.
///
/// `jobs` is clamped to `1..=tasks`; with one worker (or one task) the
/// closure runs inline on the caller's thread — the output is identical
/// either way, which is what the determinism smoke tests compare.
///
/// # Panics
///
/// Re-raises a panic from `f` when the thread scope joins.
pub fn run_indexed<T, F>(tasks: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = jobs.max(1).min(tasks);
    if workers == 1 {
        return (0..tasks).map(f).collect();
    }
    // Workers claim the next index from the shared cursor and push
    // `(index, result)`; assembly sorts by index, so completion order (the
    // only scheduling-dependent quantity) never reaches the caller.
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let value = f(i);
                lock_ok(&slots).push((i, value));
            });
        }
    });
    let mut out = slots
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, v)| v).collect()
}

/// Locks a mutex, recovering the guard from a poisoned lock. A slot mutex
/// can only be poisoned by a panic in a sibling `f` call, which the scope
/// re-raises anyway; the data in the slot vector itself is always valid.
fn lock_ok<M>(mutex: &Mutex<M>) -> std::sync::MutexGuard<'_, M> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 32] {
            let out = run_indexed(17, jobs, |i| i * 10);
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = run_indexed(0, 4, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        let out = run_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn zero_jobs_means_one_worker() {
        let out = run_indexed(4, 0, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn closure_may_borrow_the_callers_stack() {
        let base = vec![5u64, 6, 7];
        let out = run_indexed(3, 2, |i| base[i] * 2);
        assert_eq!(out, vec![10, 12, 14]);
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let reference = run_indexed(64, 1, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        for jobs in [2, 3, 8] {
            assert_eq!(
                run_indexed(64, jobs, |i| (i as u64).wrapping_mul(0x9E37_79B9)),
                reference
            );
        }
    }
}
