//! Pre-copy live migration (Clark et al., NSDI '05 — the paper's reference 8).
//!
//! §6 compares the warm-VM reboot against rejuvenation-by-migration: move
//! every VM to a spare host, reboot the empty VMM, move them back. Live
//! migration's cost model:
//!
//! * **round 0** transfers the whole memory image while the VM runs,
//! * each later round re-transfers the pages dirtied during the previous
//!   round, until the residue is small (or a round cap is hit),
//! * a final stop-and-copy transfers the residue plus execution state —
//!   the only true downtime.
//!
//! Calibration: the paper quotes Clark et al.'s 72 s to migrate one VM
//! with 800 MB and a 12 % throughput degradation while migrating, and
//! estimates 17 minutes to move 11 × 1 GB.

use rh_sim::time::SimDuration;

/// Parameters of the pre-copy migration engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationModel {
    /// Effective migration transfer rate, bytes/second (rate-limited to
    /// protect the service; calibrated so 800 MB ≈ 72 s).
    pub rate_bps: f64,
    /// Rate at which the running guest dirties memory, bytes/second.
    pub dirty_rate_bps: f64,
    /// Stop-and-copy when the residue drops below this many bytes.
    pub stop_threshold_bytes: f64,
    /// Safety cap on pre-copy rounds.
    pub max_rounds: u32,
    /// Throughput degradation of the migrating host (0.12 = −12 %).
    pub degradation: f64,
}

impl MigrationModel {
    /// Calibrated to the numbers §6 quotes from Clark et al.
    pub fn paper() -> Self {
        MigrationModel {
            rate_bps: 11.8e6,
            dirty_rate_bps: 1.0e6,
            stop_threshold_bytes: 8.0e6,
            max_rounds: 16,
            degradation: 0.12,
        }
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel::paper()
    }
}

/// Outcome of migrating one VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationEstimate {
    /// Total wall-clock time of the migration (all rounds + stop-and-copy).
    pub total: SimDuration,
    /// Service downtime (the stop-and-copy phase only).
    pub downtime: SimDuration,
    /// Pre-copy rounds executed (excluding the stop-and-copy).
    pub rounds: u32,
    /// Total bytes moved over the wire.
    pub bytes_transferred: f64,
}

impl MigrationModel {
    /// Estimates migrating one VM with `mem_bytes` of memory.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is zero.
    pub fn migrate_vm(&self, mem_bytes: u64) -> MigrationEstimate {
        assert!(mem_bytes > 0, "cannot migrate an empty VM");
        let mut residue = mem_bytes as f64;
        let mut total_secs = 0.0;
        let mut transferred = 0.0;
        let mut rounds = 0;
        while residue > self.stop_threshold_bytes && rounds < self.max_rounds {
            let round_secs = residue / self.rate_bps;
            transferred += residue;
            total_secs += round_secs;
            residue = (self.dirty_rate_bps * round_secs).min(mem_bytes as f64);
            rounds += 1;
            // Divergence: dirtying outpaces transfer — stop-and-copy now.
            if self.dirty_rate_bps >= self.rate_bps {
                break;
            }
        }
        let stop_secs = residue / self.rate_bps;
        transferred += residue;
        total_secs += stop_secs;
        MigrationEstimate {
            total: SimDuration::from_secs_f64(total_secs),
            downtime: SimDuration::from_secs_f64(stop_secs),
            rounds,
            bytes_transferred: transferred,
        }
    }

    /// Estimates evacuating a whole host: `vms` VMs of `mem_bytes` each,
    /// migrated sequentially (the paper's 17-minute figure for 11 × 1 GB).
    pub fn evacuate_host(&self, vms: u32, mem_bytes: u64) -> MigrationEstimate {
        let one = self.migrate_vm(mem_bytes);
        MigrationEstimate {
            total: one.total * vms as u64,
            downtime: one.downtime * vms as u64,
            rounds: one.rounds,
            bytes_transferred: one.bytes_transferred * vms as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_hundred_mb_takes_about_72s() {
        // §6 quoting Clark et al.: "the time needed for migration was 72
        // seconds when only one VM with 800 MB of memory was run".
        let m = MigrationModel::paper();
        let est = m.migrate_vm(800 << 20);
        let total = est.total.as_secs_f64();
        assert!((total - 72.0).abs() < 6.0, "800 MB migration = {total:.1}s");
        assert!(est.rounds >= 1);
    }

    #[test]
    fn eleven_one_gb_vms_take_about_17_minutes() {
        // §6: "estimated to last for 17 minutes when we run 11 VMs, each of
        // which has 1 GB of memory".
        let m = MigrationModel::paper();
        let est = m.evacuate_host(11, 1 << 30);
        let minutes = est.total.as_secs_f64() / 60.0;
        assert!(
            (minutes - 17.0).abs() < 1.5,
            "evacuation = {minutes:.1} min"
        );
    }

    #[test]
    fn downtime_is_tiny_compared_to_total() {
        // Live migration's selling point: negligible service downtime.
        let m = MigrationModel::paper();
        let est = m.migrate_vm(1 << 30);
        assert!(
            est.downtime.as_secs_f64() < 1.5,
            "downtime {}",
            est.downtime
        );
        assert!(est.downtime.as_secs_f64() * 20.0 < est.total.as_secs_f64());
    }

    #[test]
    fn precopy_converges_monotonically() {
        let m = MigrationModel::paper();
        let est = m.migrate_vm(1 << 30);
        // Transferred a bit more than the image (the dirtied residues)…
        assert!(est.bytes_transferred > (1u64 << 30) as f64);
        // …but not unboundedly more.
        assert!(est.bytes_transferred < 1.5 * (1u64 << 30) as f64);
    }

    #[test]
    fn hot_dirtying_falls_back_to_stop_and_copy() {
        let m = MigrationModel {
            dirty_rate_bps: 50.0e6, // dirties faster than it transfers
            ..MigrationModel::paper()
        };
        let est = m.migrate_vm(256 << 20);
        assert_eq!(est.rounds, 1, "one futile round then stop-and-copy");
        // Downtime is now substantial (the whole re-dirtied image).
        assert!(est.downtime.as_secs_f64() > 5.0);
    }

    #[test]
    fn max_rounds_caps_divergence() {
        let m = MigrationModel {
            dirty_rate_bps: 11.7e6, // barely below the transfer rate
            stop_threshold_bytes: 1.0,
            ..MigrationModel::paper()
        };
        let est = m.migrate_vm(1 << 30);
        assert!(est.rounds <= m.max_rounds);
    }

    #[test]
    #[should_panic(expected = "empty VM")]
    fn zero_memory_rejected() {
        MigrationModel::paper().migrate_vm(0);
    }
}
