//! # rh-cluster — the cluster environment (paper §6)
//!
//! Software rejuvenation "is naturally fit with a cluster environment":
//! a load balancer hides individual host reboots, but total throughput
//! dips while a host is down. This crate reproduces the §6/Fig. 9
//! comparison of three ways to rejuvenate a cluster's VMMs:
//!
//! * [`analytic`] — the paper's closed-form total-throughput timelines for
//!   warm, cold, and rejuvenation-by-live-migration, plus capacity-loss
//!   accounting,
//! * [`migration`] — a pre-copy live-migration cost model calibrated to
//!   the Clark et al. numbers the paper quotes (72 s / 800 MB, −12 %,
//!   17 min for 11 × 1 GB),
//! * [`rolling`] — rolling rejuvenation over *live* simulated hosts with a
//!   load-balancer composition of the measured outages,
//! * [`schedule`] — constraint-based planning of cluster-wide
//!   rejuvenation passes (max hosts down, capacity floor),
//! * [`driver`] — the campaign decision rule as a steppable hook
//!   ([`CampaignDriver`]) that the `rh-lint fleet` model checker drives
//!   event-by-event to prove the I6/I7 fleet invariants.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod driver;
pub mod migration;
pub mod rolling;
pub mod schedule;

pub use analytic::ClusterScenario;
pub use driver::{CampaignDriver, FleetView, HostPhase, OverlapBugDriver, SerialDriver};
pub use migration::{MigrationEstimate, MigrationModel};
pub use rolling::{rolling_rejuvenation, HostOutage, LoadBalancer, RollingReport};
pub use schedule::{plan_uniform, RejuvenationSchedule, ScheduleConstraints, ScheduleError};
