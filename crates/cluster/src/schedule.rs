//! Cluster-wide rejuvenation scheduling.
//!
//! Given measured per-host downtime, plan *when* each host of a cluster
//! gets its VMM rejuvenated so that
//!
//! * at most `max_down` hosts are ever down together (§6's zero-service-
//!   downtime requirement needs `max_down < m`),
//! * total capacity never dips below a floor the operator sets, and
//! * the whole pass finishes as quickly as possible.
//!
//! Because the warm-VM reboot shrinks per-host downtime ~4–10×, the same
//! capacity floor admits a far denser schedule — entire clusters can be
//! rejuvenated in minutes instead of hours, which is the §6 argument made
//! operational.

use rh_sim::time::{SimDuration, SimTime};

use crate::rolling::HostOutage;

/// Constraints for a rejuvenation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConstraints {
    /// Maximum hosts simultaneously down (must be ≥ 1).
    pub max_down: u32,
    /// Minimum fraction of cluster capacity that must stay up, in `[0, 1)`.
    pub capacity_floor: f64,
    /// Safety margin appended to each host's predicted downtime.
    pub slack: SimDuration,
}

impl ScheduleConstraints {
    /// One host at a time, no explicit capacity floor, 10 s of slack.
    pub fn one_at_a_time() -> Self {
        ScheduleConstraints {
            max_down: 1,
            capacity_floor: 0.0,
            slack: SimDuration::from_secs(10),
        }
    }
}

/// Errors from schedule planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// `max_down` was zero.
    NothingAllowedDown,
    /// The capacity floor cannot be met even with one host down.
    FloorUnsatisfiable,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NothingAllowedDown => {
                write!(
                    f,
                    "schedule allows zero hosts down; nothing can be rejuvenated"
                )
            }
            ScheduleError::FloorUnsatisfiable => {
                write!(f, "capacity floor cannot be met with any host down")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A planned rejuvenation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RejuvenationSchedule {
    /// Planned `(host, start)` pairs, in start order.
    pub starts: Vec<(u32, SimTime)>,
    /// Predicted outage windows (downtime + slack).
    pub outages: Vec<HostOutage>,
    /// When the last host is predicted back up.
    pub makespan: SimDuration,
    /// Worst-case concurrent hosts down under the plan.
    pub peak_down: u32,
}

/// Plans a pass over `hosts` hosts with uniform predicted `downtime`.
///
/// Hosts are processed in waves of `max_down` (further capped by the
/// capacity floor); each wave starts when the previous wave's predicted
/// outages (plus slack) have ended.
///
/// # Errors
///
/// [`ScheduleError`] when the constraints admit no schedule.
pub fn plan_uniform(
    hosts: u32,
    downtime: SimDuration,
    constraints: &ScheduleConstraints,
) -> Result<RejuvenationSchedule, ScheduleError> {
    if constraints.max_down == 0 {
        return Err(ScheduleError::NothingAllowedDown);
    }
    // How many may be down under the capacity floor?
    let floor_allows = if hosts == 0 {
        0
    } else {
        let max_fraction_down = 1.0 - constraints.capacity_floor;
        (max_fraction_down * hosts as f64).floor() as u32
    };
    let wave = constraints.max_down.min(floor_allows).min(hosts.max(1));
    if wave == 0 {
        return Err(ScheduleError::FloorUnsatisfiable);
    }
    let window = downtime + constraints.slack;
    let mut starts = Vec::new();
    let mut outages = Vec::new();
    let mut t = SimTime::ZERO;
    let mut host = 0u32;
    while host < hosts {
        let in_wave = wave.min(hosts - host);
        for i in 0..in_wave {
            starts.push((host + i, t));
            outages.push(HostOutage {
                host: host + i,
                start: t,
                end: t + downtime,
            });
        }
        host += in_wave;
        t += window;
    }
    let makespan = match outages.iter().map(|o| o.end).max() {
        Some(end) => end.saturating_duration_since(SimTime::ZERO),
        None => SimDuration::ZERO,
    };
    Ok(RejuvenationSchedule {
        starts,
        outages,
        makespan,
        peak_down: wave.min(hosts),
    })
}

/// Verifies a schedule against its constraints (used by property tests and
/// by operators double-checking a hand-edited plan).
pub fn verify(
    schedule: &RejuvenationSchedule,
    hosts: u32,
    constraints: &ScheduleConstraints,
) -> Result<(), String> {
    // Check the concurrency bound at every outage start.
    for o in &schedule.outages {
        let down = schedule
            .outages
            .iter()
            .filter(|p| p.start <= o.start && o.start < p.end)
            .count() as u32;
        if down > constraints.max_down {
            return Err(format!(
                "{down} hosts down at {} (max {})",
                o.start, constraints.max_down
            ));
        }
        let up_fraction = (hosts - down) as f64 / hosts as f64;
        if up_fraction < constraints.capacity_floor {
            return Err(format!(
                "capacity {up_fraction:.2} below floor {:.2} at {}",
                constraints.capacity_floor, o.start
            ));
        }
    }
    // Every host appears exactly once.
    let mut seen = vec![false; hosts as usize];
    for (h, _) in &schedule.starts {
        if seen[*h as usize] {
            return Err(format!("host {h} scheduled twice"));
        }
        seen[*h as usize] = true;
    }
    if let Some(h) = seen.iter().position(|s| !s) {
        return Err(format!("host {h} never scheduled"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn one_at_a_time_schedule_is_strictly_serial() {
        let c = ScheduleConstraints::one_at_a_time();
        let plan = plan_uniform(4, secs(42), &c).unwrap();
        assert_eq!(plan.starts.len(), 4);
        assert_eq!(plan.peak_down, 1);
        verify(&plan, 4, &c).unwrap();
        // Waves are downtime + slack apart.
        for w in plan.starts.windows(2) {
            assert_eq!((w[1].1 - w[0].1).as_micros(), secs(52).as_micros());
        }
        assert_eq!(plan.makespan, secs(42 + 3 * 52));
    }

    #[test]
    fn warm_downtime_shrinks_the_makespan_dramatically() {
        // The operational payoff of the paper: same constraints, 8 hosts —
        // warm (42 s) vs cold (241 s) rejuvenation passes.
        let c = ScheduleConstraints::one_at_a_time();
        let warm = plan_uniform(8, secs(42), &c).unwrap();
        let cold = plan_uniform(8, secs(241), &c).unwrap();
        assert!(warm.makespan.as_secs_f64() * 4.0 < cold.makespan.as_secs_f64());
    }

    #[test]
    fn waves_respect_capacity_floor() {
        // 10 hosts, floor 75 % up => at most 2 down at once even though
        // max_down allows 4.
        let c = ScheduleConstraints {
            max_down: 4,
            capacity_floor: 0.75,
            slack: secs(5),
        };
        let plan = plan_uniform(10, secs(40), &c).unwrap();
        assert_eq!(plan.peak_down, 2);
        verify(&plan, 10, &c).unwrap();
        assert_eq!(plan.starts.len(), 10);
        // 5 waves of 2, each 45 s apart; last ends at 4*45 + 40.
        assert_eq!(plan.makespan, secs(220));
    }

    #[test]
    fn impossible_constraints_are_rejected() {
        assert_eq!(
            plan_uniform(
                4,
                secs(10),
                &ScheduleConstraints {
                    max_down: 0,
                    capacity_floor: 0.0,
                    slack: secs(0)
                }
            ),
            Err(ScheduleError::NothingAllowedDown)
        );
        // Floor of 100 % up: nothing may ever be down.
        let c = ScheduleConstraints {
            max_down: 1,
            capacity_floor: 1.0,
            slack: secs(0),
        };
        assert_eq!(
            plan_uniform(4, secs(10), &c),
            Err(ScheduleError::FloorUnsatisfiable)
        );
    }

    #[test]
    fn verify_catches_violations() {
        let c = ScheduleConstraints::one_at_a_time();
        let mut plan = plan_uniform(3, secs(30), &c).unwrap();
        // Corrupt the plan: make host 1 start while host 0 is down.
        plan.outages[1].start = plan.outages[0].start;
        plan.outages[1].end = plan.outages[0].end;
        assert!(verify(&plan, 3, &c).is_err());
        // Drop a host from a fresh plan.
        let mut plan = plan_uniform(3, secs(30), &c).unwrap();
        plan.starts.pop();
        assert!(verify(&plan, 3, &c)
            .unwrap_err()
            .contains("never scheduled"));
    }

    #[test]
    fn single_host_cluster_schedules_itself() {
        let c = ScheduleConstraints::one_at_a_time();
        let plan = plan_uniform(1, secs(42), &c).unwrap();
        assert_eq!(plan.starts, vec![(0, SimTime::ZERO)]);
        assert_eq!(plan.makespan, secs(42));
    }
}
