//! Rolling VMM rejuvenation across a live cluster.
//!
//! §6: "Even if some of the hosts are rebooted for the rejuvenation of the
//! VMM, the service downtime is zero" — the load balancer routes around the
//! rebooting host — "however, the total throughput of the service is
//! degraded while some hosts are rebooted."
//!
//! [`rolling_rejuvenation`] rejuvenates `m` *live* simulated hosts one at a
//! time (each host is a full [`HostSim`](rh_vmm::harness::HostSim)), measures every host's real
//! outage, and composes the cluster's total-throughput timeline through a
//! simple [`LoadBalancer`] model.

use rh_guest::services::ServiceKind;
use rh_obs::{Event, EventLog, Metrics};
use rh_sim::series::TimeSeries;
use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::config::RebootStrategy;
use rh_vmm::harness::booted_host;

/// A host's unavailability window within the cluster timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOutage {
    /// Host index.
    pub host: u32,
    /// Outage start (cluster time).
    pub start: SimTime,
    /// Outage end (cluster time).
    pub end: SimTime,
}

/// An idealized round-robin load balancer over interchangeable hosts: the
/// cluster serves `p` per up host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBalancer {
    /// Per-host throughput `p`.
    pub per_host_throughput: f64,
}

impl LoadBalancer {
    /// Builds the cluster total-throughput series from per-host outage
    /// windows over `[0, horizon]`.
    pub fn throughput_series(
        &self,
        hosts: u32,
        outages: &[HostOutage],
        horizon: SimDuration,
    ) -> TimeSeries {
        let mut edges: Vec<SimTime> = vec![SimTime::ZERO, SimTime::ZERO + horizon];
        for o in outages {
            edges.push(o.start);
            edges.push(o.end);
        }
        edges.sort();
        edges.dedup();
        let mut series = TimeSeries::new("cluster_throughput");
        for &t in edges.iter().filter(|t| **t <= SimTime::ZERO + horizon) {
            let down = outages.iter().filter(|o| o.start <= t && t < o.end).count() as u32;
            let up = hosts.saturating_sub(down);
            series.push(t, up as f64 * self.per_host_throughput);
        }
        series
    }

    /// True if at least one host is up at every instant (zero service
    /// downtime, §6's availability claim).
    pub fn service_always_up(&self, hosts: u32, outages: &[HostOutage]) -> bool {
        // Check at every outage boundary: the worst concurrency occurs at
        // interval starts.
        for o in outages {
            let down = outages
                .iter()
                .filter(|p| p.start <= o.start && o.start < p.end)
                .count() as u32;
            if down >= hosts {
                return false;
            }
        }
        true
    }
}

/// Result of a rolling rejuvenation pass over a live cluster.
#[derive(Debug, Clone)]
pub struct RollingReport {
    /// Hosts in the cluster.
    pub hosts: u32,
    /// Measured mean per-service outage of each host's reboot.
    pub per_host_downtime: Vec<SimDuration>,
    /// Composed outage windows on the cluster timeline.
    pub outages: Vec<HostOutage>,
    /// Cluster total-throughput timeline.
    pub series: TimeSeries,
    /// Whether the cluster stayed (partially) up throughout.
    pub service_never_fully_down: bool,
    /// Requests lost versus the all-up ideal.
    pub capacity_loss: f64,
    /// Typed cluster timeline: a [`HostDown`](Event::HostDown) /
    /// [`HostUp`](Event::HostUp) pair per rejuvenated host.
    pub events: EventLog,
    /// Cluster-level counters and timers (hosts rebooted per strategy,
    /// per-host downtime distribution).
    pub stats: Metrics,
}

/// Rejuvenates every host of an `m`-host cluster in turn, `stagger` apart,
/// using live host simulations for the per-host downtime.
///
/// Each host runs `vms` standard 1 GiB guests of `service`; the balancer
/// contributes `per_host_throughput` per healthy host.
///
/// # Panics
///
/// Panics if `hosts` is zero.
pub fn rolling_rejuvenation(
    hosts: u32,
    vms: u32,
    service: ServiceKind,
    strategy: RebootStrategy,
    stagger: SimDuration,
    per_host_throughput: f64,
) -> RollingReport {
    assert!(hosts > 0, "cluster needs at least one host");
    let mut per_host_downtime = Vec::new();
    let mut outages = Vec::new();
    let mut events = EventLog::new();
    let mut stats = Metrics::new();
    for i in 0..hosts {
        // Every host is identical; simulate its reboot live.
        let mut sim = booted_host(vms, service);
        let report = sim.reboot_and_wait(strategy);
        let down = report.max_downtime();
        per_host_downtime.push(report.mean_downtime());
        let start = SimTime::ZERO + stagger * i as u64;
        events.emit(start, Event::HostDown { host: i });
        events.emit(start + down, Event::HostUp { host: i });
        stats.inc(&format!("cluster.reboots.{strategy}"));
        stats.record("cluster.host_downtime", down);
        outages.push(HostOutage {
            host: i,
            start,
            end: start + down,
        });
    }
    let horizon = stagger * hosts as u64 + SimDuration::from_secs(600);
    let lb = LoadBalancer {
        per_host_throughput,
    };
    let series = lb.throughput_series(hosts, &outages, horizon);
    let ideal = hosts as f64 * per_host_throughput * horizon.as_secs_f64();
    let capacity_loss = ideal - series.integral(SimTime::ZERO, SimTime::ZERO + horizon);
    stats.set_gauge("cluster.hosts", i64::from(hosts));
    RollingReport {
        hosts,
        per_host_downtime,
        service_never_fully_down: lb.service_always_up(hosts, &outages),
        outages,
        series,
        capacity_loss,
        events,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn balancer_series_counts_down_hosts() {
        let lb = LoadBalancer {
            per_host_throughput: 10.0,
        };
        let outages = [
            HostOutage {
                host: 0,
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(20),
            },
            HostOutage {
                host: 1,
                start: SimTime::from_secs(15),
                end: SimTime::from_secs(25),
            },
        ];
        let s = lb.throughput_series(3, &outages, secs(100));
        assert_eq!(s.value_at(SimTime::from_secs(5)), Some(30.0));
        assert_eq!(s.value_at(SimTime::from_secs(12)), Some(20.0));
        assert_eq!(s.value_at(SimTime::from_secs(17)), Some(10.0), "both down");
        assert_eq!(s.value_at(SimTime::from_secs(22)), Some(20.0));
        assert_eq!(s.value_at(SimTime::from_secs(30)), Some(30.0));
    }

    #[test]
    fn service_up_detection() {
        let lb = LoadBalancer {
            per_host_throughput: 1.0,
        };
        let overlapping = [
            HostOutage {
                host: 0,
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(10),
            },
            HostOutage {
                host: 1,
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(15),
            },
        ];
        assert!(!lb.service_always_up(2, &overlapping), "both down at t=5");
        assert!(lb.service_always_up(3, &overlapping));
        let disjoint = [
            HostOutage {
                host: 0,
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(10),
            },
            HostOutage {
                host: 1,
                start: SimTime::from_secs(20),
                end: SimTime::from_secs(30),
            },
        ];
        assert!(lb.service_always_up(2, &disjoint));
    }

    #[test]
    fn live_rolling_warm_cluster() {
        // 3 live hosts × 3 VMs, warm reboots 10 minutes apart: the cluster
        // never loses service and loses little capacity.
        let report = rolling_rejuvenation(
            3,
            3,
            ServiceKind::Ssh,
            RebootStrategy::Warm,
            secs(600),
            100.0,
        );
        assert!(report.service_never_fully_down);
        assert_eq!(report.per_host_downtime.len(), 3);
        for d in &report.per_host_downtime {
            assert!(d.as_secs_f64() < 50.0, "warm host downtime {d}");
        }
        // Capacity loss ≈ 3 × p × ~40 s.
        assert!(report.capacity_loss < 3.0 * 100.0 * 50.0);
    }

    #[test]
    fn live_rolling_warm_beats_cold_capacity_loss() {
        let warm = rolling_rejuvenation(
            2,
            2,
            ServiceKind::Ssh,
            RebootStrategy::Warm,
            secs(600),
            100.0,
        );
        let cold = rolling_rejuvenation(
            2,
            2,
            ServiceKind::Ssh,
            RebootStrategy::Cold,
            secs(600),
            100.0,
        );
        assert!(
            warm.capacity_loss * 2.0 < cold.capacity_loss,
            "warm {} vs cold {}",
            warm.capacity_loss,
            cold.capacity_loss
        );
        assert!(warm.service_never_fully_down && cold.service_never_fully_down);
    }

    #[test]
    fn rolling_report_carries_typed_events_and_stats() {
        let report = rolling_rejuvenation(
            2,
            1,
            ServiceKind::Ssh,
            RebootStrategy::Warm,
            secs(600),
            100.0,
        );
        // One HostDown/HostUp pair per host, matching the outage windows.
        let records = report.events.records();
        assert_eq!(records.len(), 4);
        for o in &report.outages {
            assert!(records
                .iter()
                .any(|r| r.at == o.start && r.event == Event::HostDown { host: o.host }));
            assert!(records
                .iter()
                .any(|r| r.at == o.end && r.event == Event::HostUp { host: o.host }));
        }
        assert_eq!(report.stats.counter("cluster.reboots.warm"), 2);
        let timer = report.stats.timer("cluster.host_downtime").unwrap();
        assert_eq!(timer.count(), 2);
    }

    #[test]
    fn live_rolling_streamed_cuts_saved_capacity_loss() {
        // The disk-image strategies roll through the same driver: the
        // per-strategy counter keys come straight from Display, and the
        // post-copy variant's shorter outage shows up as capacity saved.
        let run =
            |strategy| rolling_rejuvenation(2, 2, ServiceKind::Ssh, strategy, secs(600), 100.0);
        let saved = run(RebootStrategy::Saved);
        let streamed = run(RebootStrategy::Streamed);
        assert_eq!(saved.stats.counter("cluster.reboots.saved"), 2);
        assert_eq!(streamed.stats.counter("cluster.reboots.streamed"), 2);
        assert!(
            streamed.capacity_loss < saved.capacity_loss,
            "streamed {} !< saved {}",
            streamed.capacity_loss,
            saved.capacity_loss
        );
        assert!(saved.service_never_fully_down);
        assert!(streamed.service_never_fully_down);
    }

    #[test]
    fn too_aggressive_stagger_loses_the_service() {
        // Cold reboots 30 s apart on a 2-host cluster overlap: at some
        // instant both hosts are down.
        let report = rolling_rejuvenation(
            2,
            2,
            ServiceKind::Ssh,
            RebootStrategy::Cold,
            secs(30),
            100.0,
        );
        assert!(!report.service_never_fully_down);
    }
}
