//! Steppable campaign-driver hooks for rolling rejuvenation.
//!
//! [`rolling_rejuvenation`](crate::rolling::rolling_rejuvenation) schedules
//! host reboots by *wall-clock stagger* and [`crate::schedule::plan_uniform`]
//! by *predicted downtime* — both bake the decision rule
//! into a timeline up front. This module exposes the decision rule itself
//! as a steppable hook: given a snapshot of every host's phase
//! ([`FleetView`]), a [`CampaignDriver`] answers "which hosts may start a
//! warm reboot *now*?". That form is what the `rh-lint fleet` model
//! checker drives event-by-event to prove the two fleet invariants
//! (DESIGN.md §14):
//!
//! * **I6 capacity-floor** — at least `hosts - max_down` hosts serve in
//!   every reachable interleaving (the [`ScheduleConstraints`] floor,
//!   ROADMAP item 1's SLA requirement), and
//! * **I7 single-recovery** — no host starts a second reboot while its
//!   crash recovery is still in flight (ROADMAP item 4's invariant).
//!
//! Two drivers ship: [`SerialDriver`], the correct rule (strictly ordered,
//! recovery-aware), and [`OverlapBugDriver`], a deliberately wrong
//! poll-based rule modeling a real class of campaign-controller bug — it
//! decides from the *reboot window* instead of the host's actual phase, so
//! a crash-then-recovery window looks "done" and the driver both restarts
//! the recovering host (I7) and lets the next host proceed under it (I6).
//! `rh-lint fleet --buggy-overlap` must find both, shortest first.

use crate::schedule::ScheduleConstraints;

/// A host's lifecycle phase as the campaign driver sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Up and serving traffic behind the load balancer.
    Serving,
    /// Executing a warm VMM reboot (out of the balancer rotation).
    Rebooting,
    /// The VMM crashed mid-reboot; ReHype-style recovery is in flight.
    Recovering,
}

/// An immutable fleet snapshot handed to a driver at each decision point.
#[derive(Debug, Clone, Copy)]
pub struct FleetView<'a> {
    /// Current phase of each host, indexed by host id.
    pub phases: &'a [HostPhase],
    /// Whether each host's rejuvenation has completed successfully.
    pub completed: &'a [bool],
    /// Maximum hosts that may be out of serving at once
    /// ([`ScheduleConstraints::max_down`]).
    pub max_down: u32,
}

impl<'a> FleetView<'a> {
    /// Builds a view; `max_down` comes from the campaign's
    /// [`ScheduleConstraints`].
    pub fn new(phases: &'a [HostPhase], completed: &'a [bool], max_down: u32) -> Self {
        FleetView {
            phases,
            completed,
            max_down,
        }
    }

    /// Hosts currently serving traffic.
    pub fn serving(&self) -> u32 {
        self.phases
            .iter()
            .filter(|p| **p == HostPhase::Serving)
            .count() as u32
    }

    /// Hosts out of rotation (rebooting or recovering).
    pub fn down(&self) -> u32 {
        self.phases.len() as u32 - self.serving()
    }

    /// The I6 capacity floor implied by this view's constraints: the
    /// serving count may never drop below `hosts - max_down`.
    pub fn capacity_floor(&self) -> u32 {
        (self.phases.len() as u32).saturating_sub(self.max_down)
    }
}

/// The steppable decision rule of a rolling-rejuvenation campaign.
pub trait CampaignDriver: Sync {
    /// Hosts that may start a warm reboot in this snapshot, in host order.
    /// The caller (simulator or model checker) applies zero or more of
    /// them; the driver must stay correct under any subset.
    fn eligible_starts(&self, view: &FleetView<'_>) -> Vec<u32>;
}

/// The correct campaign rule: hosts rejuvenate strictly in index order,
/// a host starts only while it is actually serving, and the down count
/// (rebooting **or** recovering) must leave headroom under `max_down`.
///
/// A crashed host is retried only after its recovery completes and it
/// serves again — exactly what I7 demands.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialDriver;

impl CampaignDriver for SerialDriver {
    fn eligible_starts(&self, view: &FleetView<'_>) -> Vec<u32> {
        let mut out = Vec::new();
        for (h, completed) in view.completed.iter().enumerate() {
            if *completed {
                continue;
            }
            // Strictly serial: only the first pending host is a candidate,
            // and only from a healthy phase with down-count headroom.
            if view.phases[h] == HostPhase::Serving && view.down() < view.max_down {
                out.push(h as u32);
            }
            break;
        }
        out
    }
}

/// A deliberately buggy poll-based rule (`rh-lint fleet --buggy-overlap`).
///
/// The controller polls reboot *windows*, not phases: a host counts as
/// down only while `Rebooting`, and a pending host is (re)started whenever
/// it is not currently rebooting. A host sitting in `Recovering` is
/// therefore invisible to the down count — the driver hands out a second
/// reboot for it (I7) and starts the next host on top of the recovery
/// (I6). This is the checker's target, not an API anyone should drive a
/// real campaign with.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapBugDriver;

impl CampaignDriver for OverlapBugDriver {
    fn eligible_starts(&self, view: &FleetView<'_>) -> Vec<u32> {
        let rebooting = view
            .phases
            .iter()
            .filter(|p| **p == HostPhase::Rebooting)
            .count() as u32;
        let mut out = Vec::new();
        for (h, completed) in view.completed.iter().enumerate() {
            if *completed {
                continue;
            }
            if view.phases[h] != HostPhase::Rebooting && rebooting < view.max_down {
                out.push(h as u32);
            }
        }
        out
    }
}

/// Convenience: the `max_down` a [`FleetView`] should carry for a campaign
/// planned under `constraints` (the same bound [`crate::schedule::verify`]
/// enforces on planned outage windows).
pub fn view_max_down(constraints: &ScheduleConstraints) -> u32 {
    constraints.max_down
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::plan_uniform;
    use rh_sim::time::SimDuration;

    /// Drives a crash-free campaign to completion with `driver`, returning
    /// the start order. Each step starts every eligible host, then lets
    /// all reboots finish before the next poll (the densest correct
    /// schedule).
    fn run_campaign(driver: &dyn CampaignDriver, hosts: usize, max_down: u32) -> Vec<u32> {
        let mut phases = vec![HostPhase::Serving; hosts];
        let mut completed = vec![false; hosts];
        let mut order = Vec::new();
        while completed.iter().any(|c| !c) {
            let starts = driver.eligible_starts(&FleetView::new(&phases, &completed, max_down));
            assert!(!starts.is_empty(), "campaign stalled: {completed:?}");
            for h in &starts {
                phases[*h as usize] = HostPhase::Rebooting;
                order.push(*h);
            }
            for h in &starts {
                phases[*h as usize] = HostPhase::Serving;
                completed[*h as usize] = true;
            }
        }
        order
    }

    #[test]
    fn serial_driver_matches_the_planned_wave_order() {
        // The steppable rule and the up-front planner agree on a
        // one-at-a-time campaign: same hosts, same order.
        let order = run_campaign(&SerialDriver, 4, 1);
        let plan = plan_uniform(
            4,
            SimDuration::from_secs(42),
            &ScheduleConstraints::one_at_a_time(),
        )
        .unwrap();
        let planned: Vec<u32> = plan.starts.iter().map(|(h, _)| *h).collect();
        assert_eq!(order, planned);
    }

    #[test]
    fn serial_driver_waits_for_recovery() {
        let completed = vec![false, false, false];
        let recovering = vec![
            HostPhase::Recovering,
            HostPhase::Serving,
            HostPhase::Serving,
        ];
        let starts = SerialDriver.eligible_starts(&FleetView::new(&recovering, &completed, 1));
        assert!(
            starts.is_empty(),
            "no start may be issued while host 0 recovers"
        );
        // Once recovery completes, host 0 is retried first.
        let healthy = vec![HostPhase::Serving; 3];
        let starts = SerialDriver.eligible_starts(&FleetView::new(&healthy, &completed, 1));
        assert_eq!(starts, vec![0]);
    }

    #[test]
    fn serial_driver_respects_max_down_headroom() {
        let phases = vec![HostPhase::Rebooting, HostPhase::Serving, HostPhase::Serving];
        let completed = vec![false, false, false];
        // max_down 1: host 0's reboot consumes the headroom.
        let starts = SerialDriver.eligible_starts(&FleetView::new(&phases, &completed, 1));
        assert!(starts.is_empty());
    }

    #[test]
    fn overlap_bug_driver_restarts_a_recovering_host() {
        let phases = vec![
            HostPhase::Recovering,
            HostPhase::Serving,
            HostPhase::Serving,
        ];
        let completed = vec![false, false, false];
        let starts = OverlapBugDriver.eligible_starts(&FleetView::new(&phases, &completed, 1));
        // The bug, both halves: host 0 is re-issued mid-recovery (the I7
        // hazard) and hosts 1, 2 are offered on top of it (the I6 hazard).
        assert_eq!(starts, vec![0, 1, 2]);
    }

    #[test]
    fn overlap_bug_driver_is_benign_without_a_crash() {
        // While a reboot is actually in flight the poll sees it; the bug
        // only bites when a crash parks a host in Recovering.
        let phases = vec![HostPhase::Rebooting, HostPhase::Serving, HostPhase::Serving];
        let completed = vec![false, false, false];
        let starts = OverlapBugDriver.eligible_starts(&FleetView::new(&phases, &completed, 1));
        assert!(starts.is_empty());
        assert_eq!(run_campaign(&OverlapBugDriver, 3, 1), vec![0, 1, 2]);
    }

    #[test]
    fn view_accounting() {
        let phases = vec![
            HostPhase::Serving,
            HostPhase::Rebooting,
            HostPhase::Recovering,
            HostPhase::Serving,
        ];
        let completed = vec![true, false, false, false];
        let view = FleetView::new(&phases, &completed, 1);
        assert_eq!(view.serving(), 2);
        assert_eq!(view.down(), 2);
        assert_eq!(view.capacity_floor(), 3);
        assert_eq!(view_max_down(&ScheduleConstraints::one_at_a_time()), 1);
    }
}
