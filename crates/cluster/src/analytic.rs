//! The Fig. 9 analytic cluster-throughput model.
//!
//! §6 considers a cluster of `m` hosts behind a load balancer, each
//! contributing throughput `p`, and derives the total-throughput timeline
//! while one host's VMM is rejuvenated:
//!
//! * **warm**: dip to `(m−1)p` for the warm downtime (≈42 s), then full
//!   recovery — no cache-miss tail;
//! * **cold**: dip to `(m−1)p` for the cold downtime (≈241 s with JBoss),
//!   then `(m−δ)p` with `δ ≈ 0.69` while the page cache refills;
//! * **migration**: steady state is already `(m−1)p` because one host is
//!   reserved as the migration target; while migrating, `(m−1.12)p` for
//!   ≈17 minutes.

use rh_sim::series::TimeSeries;
use rh_sim::time::{SimDuration, SimTime};

use crate::migration::MigrationModel;

/// Scenario parameters for the Fig. 9 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterScenario {
    /// Hosts in the cluster.
    pub hosts: u32,
    /// Per-host throughput `p` (requests/second, arbitrary units).
    pub per_host_throughput: f64,
    /// VMs per host.
    pub vms_per_host: u32,
    /// VM memory in bytes.
    pub vm_mem_bytes: u64,
    /// Warm-reboot downtime of one host (s).
    pub warm_downtime_secs: f64,
    /// Cold-reboot downtime of one host (s).
    pub cold_downtime_secs: f64,
    /// Post-cold cache-miss degradation δ (0.69 in §5.5/§6).
    pub delta: f64,
    /// How long the cache-refill degradation lasts (s).
    pub warmup_secs: f64,
}

impl ClusterScenario {
    /// The paper's running example: 11 × 1 GB VMs per host, JBoss numbers
    /// (warm 42 s, cold 241 s), δ = 0.69.
    pub fn paper(hosts: u32, per_host_throughput: f64) -> Self {
        ClusterScenario {
            hosts,
            per_host_throughput,
            vms_per_host: 11,
            vm_mem_bytes: 1 << 30,
            warm_downtime_secs: 42.0,
            cold_downtime_secs: 241.0,
            delta: 0.69,
            warmup_secs: 60.0,
        }
    }

    fn mp(&self) -> f64 {
        self.hosts as f64 * self.per_host_throughput
    }

    /// Total throughput over time while ONE host is rejuvenated with the
    /// warm-VM reboot at `at`.
    pub fn warm_series(&self, at: SimTime, horizon: SimDuration) -> TimeSeries {
        let mut s = TimeSeries::new("warm");
        let p = self.per_host_throughput;
        s.push(SimTime::ZERO, self.mp());
        s.push(at, self.mp() - p);
        s.push(
            at + SimDuration::from_secs_f64(self.warm_downtime_secs),
            self.mp(),
        );
        s.push(SimTime::ZERO + horizon, self.mp());
        s
    }

    /// Same for the cold-VM reboot, including the `(m−δ)p` warm-up tail.
    pub fn cold_series(&self, at: SimTime, horizon: SimDuration) -> TimeSeries {
        let mut s = TimeSeries::new("cold");
        let p = self.per_host_throughput;
        s.push(SimTime::ZERO, self.mp());
        s.push(at, self.mp() - p);
        let back_up = at + SimDuration::from_secs_f64(self.cold_downtime_secs);
        s.push(back_up, self.mp() - self.delta * p);
        s.push(
            back_up + SimDuration::from_secs_f64(self.warmup_secs),
            self.mp(),
        );
        s.push(SimTime::ZERO + horizon, self.mp());
        s
    }

    /// Same for rejuvenation-by-migration: one host is permanently the
    /// spare, and the evacuating host is degraded by 12 % while moving.
    pub fn migration_series(
        &self,
        model: &MigrationModel,
        at: SimTime,
        horizon: SimDuration,
    ) -> TimeSeries {
        let mut s = TimeSeries::new("migration");
        let p = self.per_host_throughput;
        let steady = (self.hosts as f64 - 1.0) * p;
        s.push(SimTime::ZERO, steady);
        let est = model.evacuate_host(self.vms_per_host, self.vm_mem_bytes);
        s.push(at, steady - model.degradation * p);
        s.push(at + est.total, steady);
        s.push(SimTime::ZERO + horizon, steady);
        s
    }

    /// Requests *lost* relative to the no-rejuvenation ideal `m·p·horizon`,
    /// for a series produced by the methods above.
    pub fn capacity_loss(&self, series: &TimeSeries, horizon: SimDuration) -> f64 {
        let ideal = self.mp() * horizon.as_secs_f64();
        ideal - series.integral(SimTime::ZERO, SimTime::ZERO + horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scen() -> ClusterScenario {
        ClusterScenario::paper(4, 100.0)
    }

    fn hour() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    fn at() -> SimTime {
        SimTime::from_secs(600)
    }

    #[test]
    fn warm_dip_is_shallow_and_short() {
        let s = scen().warm_series(at(), hour());
        // During the dip: (m-1)p = 300.
        assert_eq!(s.value_at(SimTime::from_secs(620)), Some(300.0));
        // Recovered right after 42 s.
        assert_eq!(s.value_at(SimTime::from_secs(643)), Some(400.0));
    }

    #[test]
    fn cold_dip_is_long_with_cache_tail() {
        let s = scen().cold_series(at(), hour());
        assert_eq!(s.value_at(SimTime::from_secs(700)), Some(300.0));
        // After 241 s the host is back but degraded: (m − 0.69)p = 331.
        let tail = s.value_at(SimTime::from_secs(600 + 242)).unwrap();
        assert!((tail - 331.0).abs() < 1e-9, "tail {tail}");
        // Fully recovered after the warm-up.
        assert_eq!(s.value_at(SimTime::from_secs(600 + 242 + 61)), Some(400.0));
    }

    #[test]
    fn migration_steady_state_sacrifices_a_host() {
        let m = MigrationModel::paper();
        let s = scen().migration_series(&m, at(), hour());
        // (m−1)p even when idle.
        assert_eq!(s.value_at(SimTime::from_secs(10)), Some(300.0));
        // (m−1.12)p while migrating.
        let migrating = s.value_at(SimTime::from_secs(650)).unwrap();
        assert!((migrating - 288.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_loss_ordering_matches_paper_argument() {
        // §6's conclusion: warm loses the least capacity; migration's
        // permanently idle spare dwarfs both reboot strategies when m is
        // small.
        let scen = scen();
        let m = MigrationModel::paper();
        let warm = scen.capacity_loss(&scen.warm_series(at(), hour()), hour());
        let cold = scen.capacity_loss(&scen.cold_series(at(), hour()), hour());
        let mig = scen.capacity_loss(&scen.migration_series(&m, at(), hour()), hour());
        assert!(warm < cold, "warm {warm:.0} !< cold {cold:.0}");
        assert!(cold < mig, "cold {cold:.0} !< migration {mig:.0}");
        // Warm loses exactly p × 42 s.
        assert!((warm - 100.0 * 42.0).abs() < 1.0);
        // Cold adds the δ tail: p × 241 + 0.69p × 60.
        assert!((cold - (100.0 * 241.0 + 69.0 * 60.0)).abs() < 2.0);
    }

    #[test]
    fn spare_host_cost_amortizes_with_cluster_size() {
        // §6: migration's steady state is (m−1)/m of full capacity —
        // "this is critical if m is not large enough".
        let m = MigrationModel::paper();
        let h = hour();
        let frac = |hosts: u32| {
            let scen = ClusterScenario::paper(hosts, 100.0);
            let loss = scen.capacity_loss(&scen.migration_series(&m, at(), h), h);
            loss / (scen.mp() * h.as_secs_f64())
        };
        // Losing one host of three is severe; of fifty, mild.
        assert!(frac(3) > 0.30, "m=3 loss fraction {:.3}", frac(3));
        assert!(frac(50) < 0.03, "m=50 loss fraction {:.3}", frac(50));
        assert!(frac(50) < frac(10) && frac(10) < frac(3));
    }
}
