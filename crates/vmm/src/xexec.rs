//! The xexec facility: staging the next VMM instance (paper §4.3).
//!
//! "To load a new VMM instance into the current VMM, we have implemented
//! the xexec system call in the Linux kernel for domain 0 and the xexec
//! hypercall in the VMM. This hypercall loads a new executable image
//! consisting of a VMM, a kernel for domain 0, and an initial RAM disk for
//! domain 0 into memory."
//!
//! [`XexecImage`] models that three-part executable image with content
//! digests; [`XexecState`] tracks the staging slot inside the VMM. Quick
//! reload refuses to run without a staged image, and the reboot verifies
//! the image's integrity before jumping to its entry point — a staged
//! image corrupted by a stray write must be caught, not booted.

use std::fmt;

use rh_sim::rng::splitmix64;

/// The three-part executable image xexec loads (VMM + dom0 kernel +
/// initrd), with per-part content digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XexecImage {
    /// Digest of the hypervisor executable.
    pub vmm_digest: u64,
    /// Digest of the domain-0 kernel.
    pub dom0_kernel_digest: u64,
    /// Digest of the initial RAM disk.
    pub initrd_digest: u64,
    /// Total size of the image in bytes.
    pub size_bytes: u64,
    /// Version tag of the build being staged.
    pub version: u32,
}

impl XexecImage {
    /// Builds a release image of `version` (digests derived
    /// deterministically — a real build system's artifacts).
    pub fn build(version: u32) -> Self {
        let seed = splitmix64(version as u64 ^ 0xB007);
        XexecImage {
            vmm_digest: splitmix64(seed ^ 1),
            dom0_kernel_digest: splitmix64(seed ^ 2),
            initrd_digest: splitmix64(seed ^ 3),
            // Xen 3.0 + dom0 kernel + initrd: ~24 MiB.
            size_bytes: 24 * 1024 * 1024,
            version,
        }
    }

    /// Combined integrity checksum over all three parts.
    pub fn checksum(&self) -> u64 {
        splitmix64(
            self.vmm_digest
                ^ splitmix64(self.dom0_kernel_digest)
                ^ splitmix64(self.initrd_digest ^ self.size_bytes),
        )
    }
}

impl fmt::Display for XexecImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xexec image v{} ({} MiB, checksum {:#018x})",
            self.version,
            self.size_bytes / (1024 * 1024),
            self.checksum()
        )
    }
}

/// Errors from the xexec facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XexecError {
    /// Quick reload was attempted with no staged image.
    NothingStaged,
    /// The staged image's checksum no longer matches (memory corruption
    /// between staging and reboot).
    IntegrityViolation {
        /// Checksum at staging time.
        expected: u64,
        /// Checksum at boot time.
        actual: u64,
    },
}

impl fmt::Display for XexecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XexecError::NothingStaged => write!(f, "xexec: no image staged for quick reload"),
            XexecError::IntegrityViolation { expected, actual } => write!(
                f,
                "xexec: staged image corrupted (checksum {expected:#x} != {actual:#x})"
            ),
        }
    }
}

impl std::error::Error for XexecError {}

/// The VMM's xexec staging slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XexecState {
    staged: Option<(XexecImage, u64)>,
    loads: u64,
    boots: u64,
}

impl XexecState {
    /// An empty staging slot.
    pub fn new() -> Self {
        XexecState::default()
    }

    /// True if an image is staged and ready.
    pub fn is_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// The staged image, if any.
    pub fn staged_image(&self) -> Option<&XexecImage> {
        self.staged.as_ref().map(|(i, _)| i)
    }

    /// Images loaded over the VMM's lifetime.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Successful reboots into staged images.
    pub fn boots(&self) -> u64 {
        self.boots
    }

    /// The xexec hypercall: stages `image`, recording its checksum.
    /// Restaging replaces any previous image.
    pub fn load(&mut self, image: XexecImage) {
        self.staged = Some((image, image.checksum()));
        self.loads += 1;
    }

    /// Simulates memory corruption of the staged image (for tests and the
    /// integrity ablation): flips the recorded payload without updating
    /// the checksum.
    pub fn corrupt_staged(&mut self) {
        if let Some((image, _)) = self.staged.as_mut() {
            image.initrd_digest ^= 0xDEAD;
        }
    }

    /// Like [`corrupt_staged`](Self::corrupt_staged) with a caller-chosen
    /// mask (fault injection draws it from a seeded stream). Returns whether
    /// an image was staged to corrupt. A zero mask is forced to `0xDEAD`
    /// so the call always actually flips bits.
    pub fn corrupt_staged_with(&mut self, xor: u64) -> bool {
        match self.staged.as_mut() {
            Some((image, _)) => {
                image.initrd_digest ^= if xor == 0 { 0xDEAD } else { xor };
                true
            }
            None => false,
        }
    }

    /// The reboot path: verifies and consumes the staged image, returning
    /// it so the new instance can report its version.
    ///
    /// # Errors
    ///
    /// [`XexecError::NothingStaged`] with an empty slot;
    /// [`XexecError::IntegrityViolation`] if the image was corrupted after
    /// staging.
    pub fn take_for_boot(&mut self) -> Result<XexecImage, XexecError> {
        let (image, expected) = self.staged.take().ok_or(XexecError::NothingStaged)?;
        let actual = image.checksum();
        if actual != expected {
            return Err(XexecError::IntegrityViolation { expected, actual });
        }
        self.boots += 1;
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_and_versioned() {
        let a = XexecImage::build(7);
        let b = XexecImage::build(7);
        let c = XexecImage::build(8);
        assert_eq!(a, b);
        assert_ne!(a.checksum(), c.checksum());
        assert_eq!(a.version, 7);
        assert!(a.to_string().contains("v7"));
    }

    #[test]
    fn stage_and_boot_cycle() {
        let mut x = XexecState::new();
        assert!(!x.is_staged());
        assert!(matches!(x.take_for_boot(), Err(XexecError::NothingStaged)));
        x.load(XexecImage::build(1));
        assert!(x.is_staged());
        assert_eq!(x.staged_image().unwrap().version, 1);
        let booted = x.take_for_boot().unwrap();
        assert_eq!(booted.version, 1);
        assert!(!x.is_staged(), "boot consumes the image");
        assert_eq!(x.loads(), 1);
        assert_eq!(x.boots(), 1);
    }

    #[test]
    fn restaging_replaces_the_image() {
        let mut x = XexecState::new();
        x.load(XexecImage::build(1));
        x.load(XexecImage::build(2));
        assert_eq!(x.staged_image().unwrap().version, 2);
        assert_eq!(x.loads(), 2);
    }

    #[test]
    fn corruption_is_detected_at_boot() {
        let mut x = XexecState::new();
        x.load(XexecImage::build(3));
        x.corrupt_staged();
        let err = x.take_for_boot().unwrap_err();
        assert!(matches!(err, XexecError::IntegrityViolation { .. }));
        assert!(err.to_string().contains("corrupted"));
        assert_eq!(x.boots(), 0);
        // The corrupted image is gone; a fresh stage works again.
        x.load(XexecImage::build(3));
        assert!(x.take_for_boot().is_ok());
    }
}
