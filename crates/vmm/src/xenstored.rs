//! The xenstored daemon of domain 0 — and its famous leak.
//!
//! Paper §2: "Xen had a bug of memory leaks in its daemon named xenstored
//! running on a privileged VM" (changeset 8640), and "since xenstored is
//! not restartable, restoring from such memory leaks needs to reboot the
//! privileged VM" — which in turn forces a VMM reboot. This is one of the
//! concrete aging vectors that motivates the warm-VM reboot.
//!
//! [`XenStored`] models the daemon's resident memory: every watch/transact
//! operation may leak a few bytes; when memory pressure passes a threshold
//! the privileged VM's I/O slows down (degrading every guest), and at
//! exhaustion the daemon wedges.

use std::fmt;

/// Health of the xenstored daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XenStoredHealth {
    /// Operating normally.
    Healthy,
    /// Memory pressure is degrading I/O processing for all guests.
    Degraded,
    /// Out of memory; the daemon is wedged and unrestartable.
    Wedged,
}

impl fmt::Display for XenStoredHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XenStoredHealth::Healthy => write!(f, "healthy"),
            XenStoredHealth::Degraded => write!(f, "degraded"),
            XenStoredHealth::Wedged => write!(f, "wedged"),
        }
    }
}

/// The xenstored daemon's memory accounting.
///
/// # Examples
///
/// ```
/// use rh_vmm::xenstored::{XenStored, XenStoredHealth};
///
/// let mut xs = XenStored::new(1024, 16); // tiny, for demonstration
/// assert_eq!(xs.health(), XenStoredHealth::Healthy);
/// for _ in 0..40 { xs.transact(); }
/// assert_ne!(xs.health(), XenStoredHealth::Healthy);
/// xs.reboot(); // only a privileged-VM (hence VMM) reboot clears it
/// assert_eq!(xs.health(), XenStoredHealth::Healthy);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XenStored {
    capacity_bytes: u64,
    leaked_bytes: u64,
    leak_per_op: u64,
    ops: u64,
}

/// Fraction of capacity above which I/O degrades.
pub const DEGRADE_THRESHOLD: f64 = 0.5;

impl XenStored {
    /// Creates a daemon with `capacity_bytes` of memory budget and a leak
    /// of `leak_per_op` bytes per transaction.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: u64, leak_per_op: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        XenStored {
            capacity_bytes,
            leaked_bytes: 0,
            leak_per_op,
            ops: 0,
        }
    }

    /// A realistically sized daemon: 64 MB budget (privileged VMs "do not
    /// need a large amount of memory", §2), leaking 512 bytes per
    /// transaction — aging over days, not seconds.
    pub fn realistic() -> Self {
        XenStored::new(64 * 1024 * 1024, 512)
    }

    /// Memory budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes leaked so far.
    pub fn leaked_bytes(&self) -> u64 {
        self.leaked_bytes
    }

    /// Transactions processed since the last reboot.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Memory pressure in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.leaked_bytes as f64 / self.capacity_bytes as f64
    }

    /// Current health.
    pub fn health(&self) -> XenStoredHealth {
        if self.leaked_bytes >= self.capacity_bytes {
            XenStoredHealth::Wedged
        } else if self.pressure() >= DEGRADE_THRESHOLD {
            XenStoredHealth::Degraded
        } else {
            XenStoredHealth::Healthy
        }
    }

    /// The I/O slow-down factor the daemon currently imposes on all guests:
    /// 1.0 healthy, rising linearly to 2.0 at exhaustion.
    pub fn io_slowdown(&self) -> f64 {
        let p = self.pressure().min(1.0);
        if p < DEGRADE_THRESHOLD {
            1.0
        } else {
            1.0 + (p - DEGRADE_THRESHOLD) / (1.0 - DEGRADE_THRESHOLD)
        }
    }

    /// Processes one transaction (a domain create/destroy, a device watch,
    /// ...), leaking `leak_per_op` bytes.
    pub fn transact(&mut self) {
        self.ops += 1;
        self.leaked_bytes = (self.leaked_bytes + self.leak_per_op).min(self.capacity_bytes);
    }

    /// Rejuvenation: the privileged VM rebooted (with the VMM); the daemon
    /// starts fresh.
    pub fn reboot(&mut self) {
        self.leaked_bytes = 0;
        self.ops = 0;
    }
}

impl Default for XenStored {
    fn default() -> Self {
        XenStored::realistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_initially() {
        let xs = XenStored::realistic();
        assert_eq!(xs.health(), XenStoredHealth::Healthy);
        assert_eq!(xs.io_slowdown(), 1.0);
        assert_eq!(xs.pressure(), 0.0);
    }

    #[test]
    fn leaks_accumulate_to_degradation_then_wedge() {
        let mut xs = XenStored::new(1000, 100);
        for _ in 0..4 {
            xs.transact();
        }
        assert_eq!(xs.health(), XenStoredHealth::Healthy);
        xs.transact(); // 500 bytes = 50 %
        assert_eq!(xs.health(), XenStoredHealth::Degraded);
        assert_eq!(
            xs.io_slowdown(),
            1.0,
            "slowdown starts rising past the threshold"
        );
        xs.transact(); // 60 %
        assert!(xs.io_slowdown() > 1.0);
        for _ in 0..5 {
            xs.transact();
        }
        assert_eq!(xs.health(), XenStoredHealth::Wedged);
        assert_eq!(xs.leaked_bytes(), 1000, "leak clamps at capacity");
        assert!((xs.io_slowdown() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_grows_monotonically() {
        let mut xs = XenStored::new(1000, 50);
        let mut last = 1.0;
        for _ in 0..20 {
            xs.transact();
            let s = xs.io_slowdown();
            assert!(s >= last, "slowdown must not decrease");
            last = s;
        }
    }

    #[test]
    fn reboot_rejuvenates() {
        let mut xs = XenStored::new(1000, 500);
        xs.transact();
        xs.transact();
        assert_eq!(xs.health(), XenStoredHealth::Wedged);
        xs.reboot();
        assert_eq!(xs.health(), XenStoredHealth::Healthy);
        assert_eq!(xs.ops(), 0);
        assert_eq!(xs.leaked_bytes(), 0);
    }

    #[test]
    fn op_counter_tracks() {
        let mut xs = XenStored::new(1 << 20, 1);
        for _ in 0..7 {
            xs.transact();
        }
        assert_eq!(xs.ops(), 7);
        assert_eq!(xs.leaked_bytes(), 7);
    }
}
