//! Calibrated timing parameters.
//!
//! Every wall-clock constant of the simulated host lives here, with its
//! derivation from the paper's reported numbers (see also DESIGN.md §5).
//! The defaults reproduce the paper's testbed: a two-socket dual-core
//! Opteron with 12 GB RAM, one 15 krpm Ultra320 SCSI disk, gigabit
//! Ethernet, Xen 3.0.0.
//!
//! Key back-derivations:
//!
//! * `hw reset ≈ 47 s` (paper §5.6 `reset_hw`): BIOS POST base + per-GiB
//!   memory check + SCSI controller init.
//! * `quick reload ≈ 11 s` (§5.2): control transfer + new VMM init,
//!   including P2M-table-driven re-reservation.
//! * `dom0 boot ≈ 26 s`: residual of the 42 s warm downtime at 11 VMs
//!   after subtracting reload (11 s) and resume (4.2 s).
//! * `cold VMM+dom0 boot ≈ 43 s` (§5.6 `reboot_vmm(0)`): the hardware path
//!   re-probes devices that quick reload keeps alive.
//! * `domain create ≈ 0.35 s` serialized in dom0, which with the 60 ms
//!   in-guest resume handler yields `resume(n) ≈ 0.41 n` against the
//!   paper's `0.43 n − 0.07`.

use rh_sim::time::SimDuration;
use rh_storage::disk::DiskConfig;

/// All timing constants of the simulated host.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Physical disk model.
    pub disk: DiskConfig,
    /// CPU pool capacity in core-seconds per second (4 = two dual-core
    /// Opteron 280s).
    pub cpu_cores: f64,
    /// Aggregate network service capacity, bytes/second (gigabit Ethernet
    /// with protocol overhead).
    pub net_bandwidth_bps: f64,
    /// Memory copy bandwidth for page-cache hits, bytes/second.
    pub mem_bandwidth_bps: f64,
    /// Efficiency of file-level (seeky) reads relative to raw sequential
    /// disk bandwidth; Fig. 8(a)'s −91 % follows from this.
    pub file_read_efficiency: f64,
    /// Fixed per-request server overhead for web requests.
    pub request_overhead: SimDuration,

    /// BIOS power-on self-test base time.
    pub post_base: SimDuration,
    /// Additional POST time per GiB of installed RAM (the "time-consuming
    /// check of large amount of main memory", §2).
    pub post_per_gib: SimDuration,
    /// SCSI controller/bus initialization during a hardware reset.
    pub scsi_init: SimDuration,

    /// xexec: loading the new VMM executable image into memory (§4.3).
    pub xexec_load: SimDuration,
    /// Quick reload: control transfer + new VMM initialization (excluding
    /// per-domain P2M re-reservation and the free-memory scrub).
    pub quick_reload_base: SimDuration,
    /// P2M re-reservation cost per GiB of preserved domain memory.
    pub p2m_reserve_per_gib: SimDuration,
    /// VMM init scrubs/initializes *free* machine memory; preserved
    /// (frozen) memory is skipped. More suspended VMs ⇒ less free memory
    /// ⇒ a *faster* VMM reboot — this is the mechanism behind the
    /// otherwise puzzling negative slope of the paper's
    /// `reboot_vmm(n) = −0.55n + 43` (§5.6).
    pub vmm_scrub_per_free_gib: SimDuration,
    /// VMM initialization after a *hardware* reset (more device probing
    /// than the quick-reload path).
    pub vmm_boot_hw: SimDuration,
    /// Domain 0 (privileged VM) boot.
    pub dom0_boot: SimDuration,
    /// Domain 0 shutdown scripts.
    pub dom0_shutdown: SimDuration,
    /// Delay from the reboot command until guests begin shutting down on
    /// the cold path (Fig. 7: the web server stops ≈7 s after the command).
    pub cold_guest_stop_delay: SimDuration,
    /// Serialized per-domain creation work in domain 0 (allocate, build,
    /// attach) — applies to resume, restore and cold boot alike.
    pub domain_create: SimDuration,
    /// The suspend hypercall itself: freezing is O(1) in memory size.
    pub suspend_hypercall: SimDuration,
    /// Size of the saved execution state per domain (16 KB, §4.2).
    pub exec_state_bytes: u64,
    /// Probe interval of the downtime-measuring client.
    pub probe_interval: SimDuration,
}

impl TimingParams {
    /// The paper's testbed defaults.
    pub fn paper_testbed() -> Self {
        TimingParams {
            disk: DiskConfig::ultra320_15krpm(),
            cpu_cores: 4.0,
            net_bandwidth_bps: 110.0e6,
            mem_bandwidth_bps: 640.0e6,
            file_read_efficiency: 0.68,
            request_overhead: SimDuration::from_millis(1),
            post_base: SimDuration::from_secs(20),
            post_per_gib: SimDuration::from_millis(1_900),
            scsi_init: SimDuration::from_secs(4),
            xexec_load: SimDuration::from_millis(1_000),
            quick_reload_base: SimDuration::from_millis(5_200),
            p2m_reserve_per_gib: SimDuration::from_millis(50),
            vmm_scrub_per_free_gib: SimDuration::from_millis(550),
            vmm_boot_hw: SimDuration::from_secs(12),
            dom0_boot: SimDuration::from_secs(31),
            dom0_shutdown: SimDuration::from_secs(14),
            cold_guest_stop_delay: SimDuration::from_secs(7),
            domain_create: SimDuration::from_millis(350),
            suspend_hypercall: SimDuration::from_millis(5),
            exec_state_bytes: 16 * 1024,
            probe_interval: SimDuration::from_millis(500),
        }
    }

    /// Hardware reset time for a host with `ram_gib` GiB of memory.
    ///
    /// With the default parameters and the paper's 12 GiB this is ≈46.8 s,
    /// matching `reset_hw = 47` (§5.6).
    pub fn hw_reset(&self, ram_gib: f64) -> SimDuration {
        self.post_base + self.post_per_gib * ram_gib + self.scsi_init
    }

    /// Quick-reload time when `preserved_gib` GiB of domain memory must be
    /// re-reserved from the P2M tables and `free_gib` GiB of unpreserved
    /// memory is scrubbed by VMM init.
    pub fn quick_reload(&self, preserved_gib: f64, free_gib: f64) -> SimDuration {
        self.quick_reload_base
            + self.p2m_reserve_per_gib * preserved_gib
            + self.vmm_scrub_per_free_gib * free_gib
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_reset_matches_paper_at_12_gib() {
        let t = TimingParams::paper_testbed();
        let reset = t.hw_reset(12.0).as_secs_f64();
        assert!((reset - 46.8).abs() < 0.5, "reset_hw = {reset:.1}");
    }

    #[test]
    fn quick_reload_is_about_eleven_seconds() {
        let t = TimingParams::paper_testbed();
        // The §5.2 configuration: one 1 GiB VM frozen, ~10.5 GiB free.
        let reload = t.quick_reload(1.0, 10.5).as_secs_f64();
        assert!((reload - 11.0).abs() < 0.5, "quick reload = {reload:.1}");
        // Quick reload bypasses the hardware reset: the §5.2 comparison
        // (11 s vs 59 s, a 48 s saving).
        let hw_path = (t.hw_reset(12.0) + t.vmm_boot_hw).as_secs_f64();
        assert!((hw_path - 59.0).abs() < 1.0, "hw path = {hw_path:.1}");
        let saved = hw_path - reload;
        assert!(
            (saved - 48.0).abs() < 1.5,
            "quick reload saves {saved:.0}s (paper: 48 s)"
        );
    }

    #[test]
    fn reboot_vmm_slope_is_negative_like_the_paper() {
        // §5.6: reboot_vmm(n) = −0.55n + 43. With the free-memory scrub
        // model, each extra frozen 1 GiB VM removes 0.55 s of scrubbing
        // and adds only 0.05 s of P2M re-reservation.
        let t = TimingParams::paper_testbed();
        let reboot_vmm = |n: f64| {
            let free = 12.0 - 0.5 - n; // total − dom0 − frozen guests
            (t.quick_reload(n, free) + t.dom0_boot).as_secs_f64()
        };
        let slope = (reboot_vmm(11.0) - reboot_vmm(1.0)) / 10.0;
        assert!(
            (slope + 0.5).abs() < 0.1,
            "slope = {slope:.2} (paper: −0.55)"
        );
        assert!(
            (reboot_vmm(0.0) - 43.0).abs() < 1.0,
            "reboot_vmm(0) = {:.1}",
            reboot_vmm(0.0)
        );
    }

    #[test]
    fn warm_downtime_components_sum_to_42s() {
        // suspend + quick reload + dom0 boot + resume(11) ≈ 42 s (Fig. 6).
        let t = TimingParams::paper_testbed();
        let resume_11 = (t.domain_create.as_secs_f64() + 0.06) * 11.0;
        let total =
            0.04 + t.quick_reload(11.0, 0.5).as_secs_f64() + t.dom0_boot.as_secs_f64() + resume_11;
        assert!(
            (total - 42.0).abs() < 2.0,
            "warm downtime model = {total:.1}"
        );
    }

    #[test]
    fn cold_vmm_path_matches_reboot_vmm0() {
        // reboot_vmm(0) = 43 in §5.6: VMM + dom0 boot after a reset.
        let t = TimingParams::paper_testbed();
        let cold_boot = (t.vmm_boot_hw + t.dom0_boot).as_secs_f64();
        assert!(
            (cold_boot - 43.0).abs() < 1.0,
            "cold VMM+dom0 boot = {cold_boot:.1}"
        );
    }

    #[test]
    fn defaults_are_paper_testbed() {
        assert_eq!(TimingParams::default(), TimingParams::paper_testbed());
    }

    #[test]
    fn exec_state_is_sixteen_kib() {
        assert_eq!(TimingParams::default().exec_state_bytes, 16 * 1024);
    }
}
