//! # rh-vmm — RootHammer, the warm-VM reboot VMM
//!
//! The paper's core contribution, implemented over the simulated machine:
//!
//! * [`vmm`] — the VMM's memory-side mechanisms: domain creation and
//!   destruction, **on-memory suspend/resume** (freeze the image in place,
//!   save 16 KB of execution state), **quick reload** (a kexec-style VMM
//!   replacement that re-reserves frozen domain memory from the preserved
//!   P2M tables before its allocator runs), and the hardware reset that
//!   destroys everything on the cold path;
//! * [`host`] — the event-driven host world that sequences the three
//!   reboot strategies (warm / cold / saved) over shared disk, CPU and
//!   network resources, measuring downtime, phase timelines and request
//!   throughput;
//! * [`harness`] — a blocking-style driver ([`harness::HostSim`]) for
//!   experiments;
//! * [`domain`], [`timing`], [`config`], [`metrics`], [`xenstored`] —
//!   domains, calibrated constants, configuration, Fig. 7 phase spans, and
//!   the aging-prone xenstored daemon.
//!
//! ## Example: reproduce the headline result
//!
//! ```
//! use rh_guest::services::ServiceKind;
//! use rh_vmm::config::{HostConfig, RebootStrategy};
//! use rh_vmm::harness::HostSim;
//!
//! // A 12 GiB host with three 1 GiB ssh guests.
//! let cfg = HostConfig::paper_testbed().with_vms(3, ServiceKind::Ssh);
//! let mut sim = HostSim::new(cfg);
//! sim.power_on_and_wait();
//!
//! let warm = sim.reboot_and_wait(RebootStrategy::Warm);
//! assert!(warm.corrupted.is_empty());        // memory verifiably preserved
//! let warm_dt = warm.mean_downtime();
//!
//! let cold = sim.reboot_and_wait(RebootStrategy::Cold);
//! assert!(warm_dt * 2 < cold.mean_downtime()); // warm wins by a wide margin
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod domain;
pub mod events;
pub mod fault;
pub mod harness;
pub mod host;
pub mod hypercall;
pub mod metrics;
pub mod timing;
pub mod vmm;
pub mod xenstored;
pub mod xexec;

pub use config::{HostConfig, RebootStrategy, SuspendOrder};
pub use domain::{Domain, DomainId, DomainSpec, ExecState};
pub use events::{ChannelError, ChannelKind, EventChannel, EventChannelTable};
pub use fault::{FaultAction, FaultContext, FaultHook, InjectPoint};
pub use harness::{booted_host, HostSim};
pub use host::{FileReadResult, Host, HostEvent, RebootReport};
pub use hypercall::{dispatch, dispatch_hooked, Hypercall, HypercallError, HypercallResult};
pub use metrics::{PhaseSpan, RebootMetrics};
pub use timing::TimingParams;
pub use vmm::{Vmm, VmmError, VmmState};
pub use xenstored::{XenStored, XenStoredHealth};
pub use xexec::{XexecError, XexecImage, XexecState};
