//! Domains: the VMM's unit of virtualization.
//!
//! Following Xen's terminology (paper §4): the privileged VM that manages
//! the others and performs I/O is *domain 0*; ordinary guests are *domain
//! U*s. The paper treats domain 0 as part of the VMM for rejuvenation
//! purposes — rebooting it implies rebooting the VMM — so domain 0 carries
//! no service and is never suspended.

use std::fmt;

use rh_guest::aging::GuestAging;
use rh_guest::fs::{FileSet, FileSystem};
use rh_guest::kernel::GuestKernel;
use rh_guest::pagecache::PageCache;
use rh_guest::services::{Service, ServiceKind};
use rh_memory::p2m::P2mTable;

/// Identifies a domain. Domain 0 is the privileged VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The privileged domain.
    pub const DOM0: DomainId = DomainId(0);

    /// True for domain 0.
    pub fn is_dom0(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dom0() {
            write!(f, "dom0")
        } else {
            write!(f, "domU{}", self.0)
        }
    }
}

impl From<DomainId> for rh_obs::DomId {
    fn from(id: DomainId) -> Self {
        rh_obs::DomId(id.0)
    }
}

/// The execution state saved by the suspend hypercall (§4.2): "execution
/// context such as CPU registers and shared information such as the status
/// of event channels", plus the domain configuration. 16 KB in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecState {
    /// Digest of CPU register state.
    pub cpu_context: u64,
    /// Digest of event-channel status.
    pub event_channels: u64,
    /// Digest of the device configuration.
    pub device_config: u64,
    /// Size of the saved record in bytes.
    pub bytes: u64,
}

impl ExecState {
    /// Maximum size of a saved execution-state record: the 16 KB the paper
    /// budgets per domain (§4.2). The suspend hypercall rejects anything
    /// larger — the preserved slots are fixed-size, and an oversized record
    /// would spill into memory the quick reload does not protect.
    pub const MAX_BYTES: u64 = 16 * 1024;

    /// Captures a synthetic execution state derived from `seed`.
    pub fn capture(seed: u64, bytes: u64) -> Self {
        use rh_sim::rng::splitmix64;
        ExecState {
            cpu_context: splitmix64(seed ^ 0x1),
            event_channels: splitmix64(seed ^ 0x2),
            device_config: splitmix64(seed ^ 0x3),
            bytes,
        }
    }
}

/// Static configuration of a domain U.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSpec {
    /// Human-readable name.
    pub name: String,
    /// Pseudo-physical memory size in bytes.
    pub mem_bytes: u64,
    /// The service this guest runs, if any.
    pub service: Option<ServiceKind>,
    /// File corpus on the guest's virtual disk, if any.
    pub files: Option<FileSet>,
    /// A *driver domain* (paper §7): a domain U that hosts device drivers.
    /// Driver domains localize driver faults, but they "cannot be
    /// suspended" — a warm VMM reboot must shut them down and boot them
    /// like the cold path, increasing downtime for the services they run.
    pub driver_domain: bool,
    /// The domain whose backends serve this guest's I/O: domain 0 by
    /// default (`None`), or a driver domain. While the backend is down,
    /// this guest's service is unreachable even if the guest itself runs.
    pub backend: Option<u32>,
}

impl DomainSpec {
    /// A 1 GiB guest running `service` — the paper's standard VM.
    pub fn standard(name: impl Into<String>, service: ServiceKind) -> Self {
        DomainSpec {
            name: name.into(),
            mem_bytes: 1 << 30,
            service: Some(service),
            files: match service {
                ServiceKind::ApacheWeb => Some(FileSet::apache_corpus()),
                _ => None,
            },
            driver_domain: false,
            backend: None,
        }
    }

    /// Marks this guest as a driver domain (cannot be suspended; see the
    /// field docs and paper §7).
    pub fn as_driver_domain(mut self) -> Self {
        self.driver_domain = true;
        self
    }

    /// Routes this guest's device I/O through the given driver domain
    /// instead of domain 0.
    pub fn with_backend(mut self, backend: u32) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the memory size.
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Overrides the file corpus.
    pub fn with_files(mut self, files: FileSet) -> Self {
        self.files = Some(files);
        self
    }
}

/// A live domain: spec + all mutable guest/VMM state.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Identifier.
    pub id: DomainId,
    /// Static configuration.
    pub spec: DomainSpec,
    /// Guest kernel lifecycle.
    pub kernel: GuestKernel,
    /// The guest's service process, if configured.
    pub service: Option<Service>,
    /// The guest's page cache. Preserved by suspend/resume, emptied by an
    /// OS boot.
    pub cache: PageCache,
    /// The guest's filesystem over its virtual disk partition.
    pub fs: Option<FileSystem>,
    /// The PFN→MFN mapping maintained by the VMM for this domain.
    pub p2m: P2mTable,
    /// Content salt used to (re)fill this domain's memory at boot; changes
    /// each boot generation so stale images are detectable.
    pub salt: u64,
    /// Saved execution state while suspended.
    pub exec_state: Option<ExecState>,
    /// OS-level aging state (kernel memory / swap wear), when enabled.
    /// Preserved by suspend/resume — a warm VMM reboot does *not*
    /// rejuvenate the guest OS (that is exactly Fig. 2's point) — and
    /// reset by an OS boot.
    pub aging: Option<GuestAging>,
    /// The domain's event-channel table (§4.2: its status is part of the
    /// preserved execution state; device channels detach at suspend and
    /// re-establish at resume).
    pub channels: crate::events::EventChannelTable,
}

/// Fraction of guest memory used as page cache ("modern operating systems
/// use most of free memory as the file cache", §2).
pub const CACHE_FRACTION: f64 = 0.85;

impl Domain {
    /// Creates a not-yet-booted domain.
    pub fn new(id: DomainId, spec: DomainSpec, salt: u64) -> Self {
        let cache = PageCache::new((spec.mem_bytes as f64 * CACHE_FRACTION) as u64);
        let fs = spec.files.map(|set| FileSystem::new(set, &cache));
        let service = spec.service.map(Service::new);
        Domain {
            id,
            spec,
            kernel: GuestKernel::new(),
            service,
            cache,
            fs,
            p2m: P2mTable::new(),
            salt,
            exec_state: None,
            aging: None,
            channels: crate::events::EventChannelTable::new(),
        }
    }

    /// Memory size in whole pages.
    pub fn mem_pages(&self) -> u64 {
        self.spec.mem_bytes / rh_memory::frame::PAGE_SIZE
    }

    /// Memory size in GiB (fractional).
    pub fn mem_gib(&self) -> f64 {
        self.spec.mem_bytes as f64 / (1u64 << 30) as f64
    }

    /// Pages actually mapped in the P2M right now. Differs from
    /// [`mem_pages`](Self::mem_pages) when a balloon is inflated: the
    /// spec still says the configured size, but ballooned-out pages are
    /// no longer owned by the domain.
    pub fn resident_pages(&self) -> u64 {
        self.p2m.total_pages()
    }

    /// Resident memory in GiB (fractional) — the P2M-mapped size, which
    /// excludes ballooned-out pages.
    pub fn resident_gib(&self) -> f64 {
        (self.p2m.total_pages() * rh_memory::frame::PAGE_SIZE) as f64 / (1u64 << 30) as f64
    }

    /// True if the guest kernel is running and its service (if any) is
    /// serving — i.e. the domain is observable as "up" from the network.
    pub fn service_up(&self) -> bool {
        self.kernel.is_running()
            && self
                .service
                .as_ref()
                .map(|s| s.is_running())
                .unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_identity() {
        assert!(DomainId::DOM0.is_dom0());
        assert!(!DomainId(3).is_dom0());
        assert_eq!(DomainId::DOM0.to_string(), "dom0");
        assert_eq!(DomainId(7).to_string(), "domU7");
    }

    #[test]
    fn standard_spec_is_one_gib() {
        let spec = DomainSpec::standard("vm1", ServiceKind::Ssh);
        assert_eq!(spec.mem_bytes, 1 << 30);
        assert_eq!(spec.service, Some(ServiceKind::Ssh));
        assert!(spec.files.is_none());
        let web = DomainSpec::standard("web", ServiceKind::ApacheWeb);
        assert!(web.files.is_some(), "web guests get the apache corpus");
    }

    #[test]
    fn spec_overrides() {
        let spec = DomainSpec::standard("big", ServiceKind::Ssh)
            .with_mem_bytes(11 << 30)
            .with_files(FileSet::single_large_file());
        assert_eq!(spec.mem_bytes, 11 << 30);
        assert_eq!(spec.files.unwrap().files, 1);
    }

    #[test]
    fn domain_geometry() {
        let d = Domain::new(
            DomainId(1),
            DomainSpec::standard("vm", ServiceKind::Ssh),
            42,
        );
        assert_eq!(d.mem_pages(), 262_144);
        assert!((d.mem_gib() - 1.0).abs() < 1e-9);
        // Page cache sized to 85 % of guest memory.
        let expect = ((1u64 << 30) as f64 * CACHE_FRACTION) as u64;
        assert_eq!(d.cache.capacity_bytes(), expect);
    }

    #[test]
    fn service_up_requires_kernel_and_service() {
        let mut d = Domain::new(DomainId(1), DomainSpec::standard("vm", ServiceKind::Ssh), 1);
        assert!(!d.service_up());
        d.kernel.begin_boot().unwrap();
        d.kernel.finish_boot().unwrap();
        assert!(!d.service_up(), "kernel up but sshd not started");
        let svc = d.service.as_mut().unwrap();
        svc.begin_start().unwrap();
        svc.finish_start().unwrap();
        assert!(d.service_up());
    }

    #[test]
    fn exec_state_capture_is_deterministic() {
        let a = ExecState::capture(7, 16 * 1024);
        let b = ExecState::capture(7, 16 * 1024);
        assert_eq!(a, b);
        let c = ExecState::capture(8, 16 * 1024);
        assert_ne!(a, c);
        assert_eq!(a.bytes, 16 * 1024);
    }
}
