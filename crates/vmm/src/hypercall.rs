//! The hypercall interface.
//!
//! Guests and domain 0 talk to the VMM "like a system call to the
//! operating system" (paper §4.2). This module gives RootHammer-RS the
//! same typed boundary: a [`Hypercall`] value enters
//! [`dispatch`], which validates the caller's privilege, routes to the
//! VMM's mechanism, and returns a [`HypercallResult`].
//!
//! The paper's two additions to Xen's hypercall table are here —
//! `suspend` (§4.2, issued by a guest after its suspend handler ran) and
//! `xexec` (§4.3, issued by domain 0 to stage the next VMM image) — plus
//! the standard memory-management calls the mechanisms depend on.

use std::collections::BTreeMap;
use std::fmt;

use rh_memory::contents::FrameContents;
use rh_sim::time::SimTime;

use crate::domain::{Domain, DomainId, ExecState};
use crate::fault::{FaultAction, FaultContext, FaultHook, InjectPoint};
use crate::vmm::{Vmm, VmmError};
use crate::xexec::XexecImage;

/// A request into the VMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Hypercall {
    /// §4.2: freeze the calling domain's memory in place and save its
    /// execution state (`exec_state_bytes` long) into preserved memory.
    Suspend {
        /// Size of the execution-state record to save.
        exec_state_bytes: u64,
    },
    /// §4.3: stage the next VMM executable image (domain 0 only).
    Xexec {
        /// The image to stage.
        image: XexecImage,
    },
    /// Balloon pages out of the calling domain (release to the VMM).
    BalloonOut {
        /// Pages to surrender.
        pages: u64,
    },
    /// Balloon pages into the calling domain (claim from the VMM).
    BalloonIn {
        /// Pages to claim.
        pages: u64,
    },
    /// Query the VMM's heap pressure (a management/monitoring call,
    /// domain 0 only).
    HeapInfo,
}

/// What a hypercall returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HypercallResult {
    /// Completed with nothing to report.
    Ok,
    /// `Suspend`: the saved execution state.
    Suspended(ExecState),
    /// `HeapInfo`: free bytes and pressure of the VMM heap.
    HeapInfo {
        /// Bytes available.
        free_bytes: u64,
        /// Fraction of the heap unavailable, in `[0, 1]`.
        pressure: f64,
    },
}

/// Errors crossing the hypercall boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum HypercallError {
    /// The call is restricted to domain 0.
    PrivilegeViolation {
        /// Who called.
        caller: DomainId,
        /// Which call.
        call: &'static str,
    },
    /// The caller does not exist.
    NoSuchDomain(DomainId),
    /// The VMM rejected the operation.
    Vmm(VmmError),
}

impl fmt::Display for HypercallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypercallError::PrivilegeViolation { caller, call } => {
                write!(f, "hypercall {call} denied: {caller} is not privileged")
            }
            HypercallError::NoSuchDomain(id) => write!(f, "hypercall from unknown domain {id}"),
            HypercallError::Vmm(e) => write!(f, "hypercall failed: {e}"),
        }
    }
}

impl std::error::Error for HypercallError {}

impl From<VmmError> for HypercallError {
    fn from(e: VmmError) -> Self {
        HypercallError::Vmm(e)
    }
}

/// Dispatches `call` issued by `caller` into the VMM.
///
/// # Errors
///
/// [`HypercallError::PrivilegeViolation`] for domain-0-only calls from
/// guests, [`HypercallError::NoSuchDomain`] for unknown callers, and
/// [`HypercallError::Vmm`] for mechanism-level failures.
pub fn dispatch(
    vmm: &mut Vmm,
    domains: &mut BTreeMap<DomainId, Domain>,
    contents: &mut FrameContents,
    caller: DomainId,
    call: Hypercall,
) -> Result<HypercallResult, HypercallError> {
    let Some(dom) = domains.get_mut(&caller) else {
        return Err(HypercallError::NoSuchDomain(caller));
    };
    match call {
        Hypercall::Suspend { exec_state_bytes } => {
            vmm.on_memory_suspend(dom, exec_state_bytes)?;
            let exec = dom
                .exec_state
                .ok_or(HypercallError::Vmm(VmmError::BadDomainState(
                    caller,
                    "expose the execution state it just saved",
                )))?;
            Ok(HypercallResult::Suspended(exec))
        }
        Hypercall::Xexec { image } => {
            if !caller.is_dom0() {
                return Err(HypercallError::PrivilegeViolation {
                    caller,
                    call: "xexec",
                });
            }
            vmm.stage_next_image(image);
            Ok(HypercallResult::Ok)
        }
        Hypercall::BalloonOut { pages } => {
            vmm.balloon_out(dom, contents, pages)?;
            Ok(HypercallResult::Ok)
        }
        Hypercall::BalloonIn { pages } => {
            vmm.balloon_in(dom, contents, pages)?;
            Ok(HypercallResult::Ok)
        }
        Hypercall::HeapInfo => {
            if !caller.is_dom0() {
                return Err(HypercallError::PrivilegeViolation {
                    caller,
                    call: "heap_info",
                });
            }
            Ok(HypercallResult::HeapInfo {
                free_bytes: vmm.heap().free_bytes(),
                pressure: vmm.heap().pressure(),
            })
        }
    }
}

/// [`dispatch`] with a fault hook consulted at [`InjectPoint::Hypercall`]
/// before the call is routed. Supported actions: `CrashVmm` (the VMM dies
/// mid-call; the caller gets [`VmmError::BadDomainState`]),
/// `CorruptStagedImage`, and `DropExecState`. Other actions are ignored at
/// this boundary — they belong to the host pipeline's points.
///
/// # Errors
///
/// As [`dispatch`], plus [`HypercallError::Vmm`] when an injected crash
/// takes the VMM down before the call completes.
pub fn dispatch_hooked(
    vmm: &mut Vmm,
    domains: &mut BTreeMap<DomainId, Domain>,
    contents: &mut FrameContents,
    caller: DomainId,
    call: Hypercall,
    hook: &mut dyn FaultHook,
    now: SimTime,
) -> Result<HypercallResult, HypercallError> {
    let ctx = FaultContext {
        now,
        domain: Some(caller),
    };
    for action in hook.consult(InjectPoint::Hypercall, &ctx) {
        match action {
            FaultAction::CrashVmm => {
                vmm.set_down();
                return Err(HypercallError::Vmm(VmmError::BadDomainState(
                    caller,
                    "complete a hypercall into a crashed VMM",
                )));
            }
            FaultAction::CorruptStagedImage { xor } => {
                vmm.xexec_mut().corrupt_staged_with(xor);
            }
            FaultAction::DropExecState { dom } => {
                if let Some(d) = domains.get_mut(&dom) {
                    d.exec_state = None;
                }
            }
            _ => {}
        }
    }
    dispatch(vmm, domains, contents, caller, call)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainSpec;
    use rh_guest::services::ServiceKind;
    use rh_memory::frame::FRAMES_PER_GIB;

    fn setup() -> (Vmm, BTreeMap<DomainId, Domain>, FrameContents) {
        let mut vmm = Vmm::new(4 * FRAMES_PER_GIB);
        let mut contents = FrameContents::new();
        let mut domains = BTreeMap::new();
        let dom0_spec = DomainSpec {
            name: "dom0".into(),
            mem_bytes: 512 << 20,
            service: None,
            files: None,
            driver_domain: false,
            backend: None,
        };
        domains.insert(DomainId::DOM0, Domain::new(DomainId::DOM0, dom0_spec, 0));
        let mut guest = Domain::new(
            DomainId(1),
            DomainSpec::standard("vm1", ServiceKind::Ssh),
            0,
        );
        vmm.create_domain(&mut guest, &mut contents).unwrap();
        domains.insert(DomainId(1), guest);
        (vmm, domains, contents)
    }

    #[test]
    fn suspend_hypercall_returns_exec_state() {
        let (mut vmm, mut domains, mut contents) = setup();
        let result = dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(1),
            Hypercall::Suspend {
                exec_state_bytes: 16 * 1024,
            },
        )
        .unwrap();
        match result {
            HypercallResult::Suspended(exec) => assert_eq!(exec.bytes, 16 * 1024),
            other => panic!("unexpected result {other:?}"),
        }
        assert!(domains[&DomainId(1)].exec_state.is_some());
    }

    #[test]
    fn xexec_is_dom0_only() {
        let (mut vmm, mut domains, mut contents) = setup();
        let image = XexecImage::build(2);
        let err = dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(1),
            Hypercall::Xexec { image },
        )
        .unwrap_err();
        assert!(matches!(err, HypercallError::PrivilegeViolation { .. }));
        assert!(!vmm.xexec().is_staged());
        dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId::DOM0,
            Hypercall::Xexec { image },
        )
        .unwrap();
        assert!(vmm.xexec().is_staged());
    }

    #[test]
    fn heap_info_reports_pressure() {
        let (mut vmm, mut domains, mut contents) = setup();
        vmm.heap_mut().leak(8 * 1024 * 1024);
        let result = dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId::DOM0,
            Hypercall::HeapInfo,
        )
        .unwrap();
        match result {
            HypercallResult::HeapInfo {
                free_bytes,
                pressure,
            } => {
                assert!(free_bytes < 8 * 1024 * 1024);
                assert!(pressure > 0.5);
            }
            other => panic!("unexpected result {other:?}"),
        }
        // Guests may not peek at the VMM heap.
        assert!(dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(1),
            Hypercall::HeapInfo,
        )
        .is_err());
    }

    #[test]
    fn balloon_hypercalls_round_trip() {
        let (mut vmm, mut domains, mut contents) = setup();
        let pages_before = domains[&DomainId(1)].p2m.total_pages();
        dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(1),
            Hypercall::BalloonOut { pages: 1000 },
        )
        .unwrap();
        assert_eq!(domains[&DomainId(1)].p2m.total_pages(), pages_before - 1000);
        dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(1),
            Hypercall::BalloonIn { pages: 1000 },
        )
        .unwrap();
        assert_eq!(domains[&DomainId(1)].p2m.total_pages(), pages_before);
    }

    #[test]
    fn unknown_caller_rejected() {
        let (mut vmm, mut domains, mut contents) = setup();
        let err = dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(99),
            Hypercall::HeapInfo,
        )
        .unwrap_err();
        assert!(matches!(err, HypercallError::NoSuchDomain(_)));
        assert!(err.to_string().contains("unknown"));
    }

    #[test]
    fn vmm_errors_propagate() {
        let (mut vmm, mut domains, mut contents) = setup();
        let err = dispatch(
            &mut vmm,
            &mut domains,
            &mut contents,
            DomainId(1),
            Hypercall::BalloonOut {
                pages: u64::MAX / 8,
            },
        )
        .unwrap_err();
        assert!(matches!(err, HypercallError::Vmm(_)));
    }
}
