//! Event channels — the VMM↔guest notification fabric.
//!
//! Paravirtualized guests and the VMM signal each other through *event
//! channels* (Xen's interrupt-like primitive). They matter to the warm-VM
//! reboot twice (paper §4.2):
//!
//! * the VMM delivers the **suspend event** to each domain U over a
//!   channel, triggering the in-guest suspend handler;
//! * the suspend hypercall saves "shared information such as the status of
//!   event channels" into the preserved execution state, and the resume
//!   handler "re-establish\[es\] the communication channels to the VMM".
//!
//! [`EventChannelTable`] models one domain's channel table: binding,
//! notification, masking, the suspend-time detach and the resume-time
//! re-establishment, plus a digest that feeds the preserved execution
//! state.

use std::collections::BTreeMap;
use std::fmt;

use rh_sim::rng::splitmix64;

/// What a channel is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// The suspend-request channel from the VMM (one per domain U).
    Suspend,
    /// A virtual IRQ (timer, console, ...).
    Virq(u8),
    /// An interdomain channel to another domain (device frontends to
    /// domain 0's backends).
    Interdomain {
        /// Peer domain id.
        peer: u32,
    },
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::Suspend => write!(f, "suspend"),
            ChannelKind::Virq(n) => write!(f, "virq{n}"),
            ChannelKind::Interdomain { peer } => write!(f, "interdomain->dom{peer}"),
        }
    }
}

/// One bound channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventChannel {
    /// Port number within the domain's table.
    pub port: u32,
    /// Binding.
    pub kind: ChannelKind,
    /// An event is pending delivery.
    pub pending: bool,
    /// Delivery is masked.
    pub masked: bool,
}

/// Errors from channel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The port is not bound.
    BadPort(u32),
    /// A second suspend channel was requested.
    SuspendAlreadyBound,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::BadPort(p) => write!(f, "event channel port {p} is not bound"),
            ChannelError::SuspendAlreadyBound => write!(f, "suspend channel already bound"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// One domain's event-channel table.
///
/// # Examples
///
/// ```
/// use rh_vmm::events::{ChannelKind, EventChannelTable};
///
/// let mut table = EventChannelTable::new();
/// let suspend = table.bind(ChannelKind::Suspend)?;
/// table.notify(suspend)?;                       // the VMM requests suspend
/// assert!(table.take_pending(suspend)?);        // the guest handler sees it
/// # Ok::<(), rh_vmm::events::ChannelError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventChannelTable {
    channels: BTreeMap<u32, EventChannel>,
    next_port: u32,
    notifications: u64,
}

impl EventChannelTable {
    /// An empty table.
    pub fn new() -> Self {
        EventChannelTable::default()
    }

    /// The standard set a freshly booted domain U binds: the suspend
    /// channel, timer and console VIRQs, and block/net frontends to
    /// domain 0.
    pub fn standard_domu() -> Self {
        let mut t = EventChannelTable::new();
        let standard = [
            ChannelKind::Suspend,
            ChannelKind::Virq(0),                 // timer
            ChannelKind::Virq(1),                 // console
            ChannelKind::Interdomain { peer: 0 }, // blkfront
            ChannelKind::Interdomain { peer: 0 }, // netfront
        ];
        for kind in standard {
            // Binding into a fresh table cannot collide or run out of
            // ports, so the error arm is unreachable; ignoring it keeps
            // this constructor panic-free.
            let _ = t.bind(kind);
        }
        t
    }

    /// Number of bound channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if no channels are bound.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Total notifications delivered over the table's lifetime.
    pub fn notifications(&self) -> u64 {
        self.notifications
    }

    /// Binds a new channel, returning its port.
    ///
    /// # Errors
    ///
    /// [`ChannelError::SuspendAlreadyBound`] for a duplicate suspend
    /// channel — a domain has exactly one.
    pub fn bind(&mut self, kind: ChannelKind) -> Result<u32, ChannelError> {
        if kind == ChannelKind::Suspend && self.suspend_port().is_some() {
            return Err(ChannelError::SuspendAlreadyBound);
        }
        let port = self.next_port;
        self.next_port += 1;
        self.channels.insert(
            port,
            EventChannel {
                port,
                kind,
                pending: false,
                masked: false,
            },
        );
        Ok(port)
    }

    /// Closes a channel.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadPort`] if unbound.
    pub fn close(&mut self, port: u32) -> Result<(), ChannelError> {
        self.channels
            .remove(&port)
            .map(|_| ())
            .ok_or(ChannelError::BadPort(port))
    }

    /// The suspend channel's port, if bound.
    pub fn suspend_port(&self) -> Option<u32> {
        self.channels
            .values()
            .find(|c| c.kind == ChannelKind::Suspend)
            .map(|c| c.port)
    }

    /// Looks up a channel.
    pub fn get(&self, port: u32) -> Option<&EventChannel> {
        self.channels.get(&port)
    }

    /// Raises an event on `port` (unless masked).
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadPort`] if unbound.
    pub fn notify(&mut self, port: u32) -> Result<(), ChannelError> {
        let c = self
            .channels
            .get_mut(&port)
            .ok_or(ChannelError::BadPort(port))?;
        if !c.masked {
            c.pending = true;
            self.notifications += 1;
        }
        Ok(())
    }

    /// Consumes a pending event on `port`, returning whether one was
    /// pending.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadPort`] if unbound.
    pub fn take_pending(&mut self, port: u32) -> Result<bool, ChannelError> {
        let c = self
            .channels
            .get_mut(&port)
            .ok_or(ChannelError::BadPort(port))?;
        Ok(std::mem::take(&mut c.pending))
    }

    /// Masks or unmasks a channel.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadPort`] if unbound.
    pub fn set_masked(&mut self, port: u32, masked: bool) -> Result<(), ChannelError> {
        let c = self
            .channels
            .get_mut(&port)
            .ok_or(ChannelError::BadPort(port))?;
        c.masked = masked;
        Ok(())
    }

    /// The suspend handler's device-detach step (§4.2): interdomain
    /// channels (device frontends) are closed; the suspend channel and
    /// VIRQs stay, their status going into the saved execution state.
    /// Returns the number of channels detached.
    pub fn detach_for_suspend(&mut self) -> usize {
        let victims: Vec<u32> = self
            .channels
            .values()
            .filter(|c| matches!(c.kind, ChannelKind::Interdomain { .. }))
            .map(|c| c.port)
            .collect();
        for p in &victims {
            self.channels.remove(p);
        }
        victims.len()
    }

    /// The resume handler's re-establishment step (§4.2): rebinds the
    /// device frontends to domain 0 and clears stale pending bits.
    pub fn reestablish_after_resume(&mut self) {
        for c in self.channels.values_mut() {
            c.pending = false;
        }
        let _ = self.bind(ChannelKind::Interdomain { peer: 0 });
        let _ = self.bind(ChannelKind::Interdomain { peer: 0 });
    }

    /// Digest of the table's status — the "shared information" the suspend
    /// hypercall folds into the preserved execution state.
    pub fn digest(&self) -> u64 {
        let mut acc = splitmix64(self.channels.len() as u64);
        for c in self.channels.values() {
            let kind_tag = match c.kind {
                ChannelKind::Suspend => 1u64 << 32,
                ChannelKind::Virq(n) => (2u64 << 32) | n as u64,
                ChannelKind::Interdomain { peer } => (3u64 << 32) | peer as u64,
            };
            let flags = (c.pending as u64) | ((c.masked as u64) << 1);
            acc = splitmix64(acc ^ splitmix64(c.port as u64 ^ kind_tag) ^ flags);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_shape() {
        let t = EventChannelTable::standard_domu();
        assert_eq!(t.len(), 5);
        assert!(t.suspend_port().is_some());
        let interdomain = t
            .channels
            .values()
            .filter(|c| matches!(c.kind, ChannelKind::Interdomain { .. }))
            .count();
        assert_eq!(interdomain, 2);
    }

    #[test]
    fn notify_and_take_pending() {
        let mut t = EventChannelTable::new();
        let p = t.bind(ChannelKind::Virq(0)).unwrap();
        assert!(!t.take_pending(p).unwrap());
        t.notify(p).unwrap();
        assert!(t.get(p).unwrap().pending);
        assert!(t.take_pending(p).unwrap());
        assert!(!t.take_pending(p).unwrap(), "pending is consumed");
        assert_eq!(t.notifications(), 1);
    }

    #[test]
    fn masked_channels_drop_events() {
        let mut t = EventChannelTable::new();
        let p = t.bind(ChannelKind::Virq(3)).unwrap();
        t.set_masked(p, true).unwrap();
        t.notify(p).unwrap();
        assert!(!t.take_pending(p).unwrap());
        assert_eq!(t.notifications(), 0);
        t.set_masked(p, false).unwrap();
        t.notify(p).unwrap();
        assert!(t.take_pending(p).unwrap());
    }

    #[test]
    fn only_one_suspend_channel() {
        let mut t = EventChannelTable::new();
        t.bind(ChannelKind::Suspend).unwrap();
        assert_eq!(
            t.bind(ChannelKind::Suspend),
            Err(ChannelError::SuspendAlreadyBound)
        );
    }

    #[test]
    fn bad_ports_are_rejected() {
        let mut t = EventChannelTable::new();
        assert_eq!(t.notify(7), Err(ChannelError::BadPort(7)));
        assert_eq!(t.close(7), Err(ChannelError::BadPort(7)));
        assert_eq!(t.take_pending(7), Err(ChannelError::BadPort(7)));
        assert_eq!(t.set_masked(7, true), Err(ChannelError::BadPort(7)));
    }

    #[test]
    fn suspend_detach_and_resume_reestablish_round_trip() {
        // The §4.2 handler sequence: detach frontends at suspend, rebind
        // at resume; the table ends structurally equivalent.
        let mut t = EventChannelTable::standard_domu();
        let suspend = t.suspend_port().unwrap();
        // The VMM requests suspend over the channel.
        t.notify(suspend).unwrap();
        assert!(t.take_pending(suspend).unwrap());
        let detached = t.detach_for_suspend();
        assert_eq!(detached, 2, "both frontends detach");
        assert_eq!(t.len(), 3, "suspend + 2 virqs remain");
        // ... VMM reboots; the remaining table status was preserved ...
        let frozen_digest = t.digest();
        t.reestablish_after_resume();
        assert_eq!(t.len(), 5, "frontends rebound");
        assert_ne!(t.digest(), frozen_digest, "rebinding changes the status");
        assert!(t.suspend_port().is_some(), "suspend channel persists");
    }

    #[test]
    fn repeated_suspend_resume_cycles_do_not_leak_channels() {
        // Recovery can suspend and resume the same guest several times
        // (fallback retries); the table must end each cycle with exactly
        // the standard shape — no accumulated frontends, no stale bits.
        let mut t = EventChannelTable::standard_domu();
        for cycle in 0..10 {
            let virq = t
                .channels
                .values()
                .find(|c| matches!(c.kind, ChannelKind::Virq(_)))
                .map(|c| c.port)
                .unwrap();
            t.notify(virq).unwrap();
            assert_eq!(t.detach_for_suspend(), 2, "cycle {cycle}");
            t.reestablish_after_resume();
            assert_eq!(t.len(), 5, "cycle {cycle} leaked channels");
            let interdomain = t
                .channels
                .values()
                .filter(|c| matches!(c.kind, ChannelKind::Interdomain { .. }))
                .count();
            assert_eq!(interdomain, 2, "cycle {cycle}");
            assert!(
                t.channels.values().all(|c| !c.pending),
                "cycle {cycle} left a stale pending bit"
            );
        }
    }

    #[test]
    fn digest_captures_status_changes() {
        let mut t = EventChannelTable::standard_domu();
        let d0 = t.digest();
        let p = t.suspend_port().unwrap();
        t.notify(p).unwrap();
        let d1 = t.digest();
        assert_ne!(d0, d1, "pending bit is part of the status");
        t.take_pending(p).unwrap();
        assert_eq!(t.digest(), d0, "acking restores the status");
        t.set_masked(p, true).unwrap();
        assert_ne!(t.digest(), d0, "mask bit is part of the status");
    }

    #[test]
    fn close_frees_the_port_for_reuse_detection() {
        let mut t = EventChannelTable::new();
        let p = t.bind(ChannelKind::Virq(9)).unwrap();
        t.close(p).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.notify(p), Err(ChannelError::BadPort(p)));
        // Ports are not reused: a fresh bind gets a new number.
        let q = t.bind(ChannelKind::Virq(9)).unwrap();
        assert_ne!(p, q);
    }
}
