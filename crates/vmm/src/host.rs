//! The simulated host: VMM + domains + disk + CPU + network + clients.
//!
//! [`Host`] implements [`rh_sim::World`] and orchestrates, event by event,
//! the three rejuvenation strategies the paper compares:
//!
//! * **warm** ([`Host::warm_reboot`]) — dom0 shuts down while guests keep
//!   serving; the VMM then suspends every domain U on memory, quick-reloads
//!   itself, boots dom0, and resumes the frozen domains;
//! * **cold** ([`Host::cold_reboot`]) — guests shut down, hardware reset,
//!   VMM + dom0 boot, guests boot, services restart;
//! * **saved** ([`Host::saved_reboot`]) — Xen's suspend-to-disk of every
//!   image, hardware reset, restore-from-disk.
//!
//! Every timing result in the paper's §5 is produced by driving this world:
//! downtime meters record service outages, [`RebootMetrics`] records the
//! Fig. 7 phase breakdown, the httperf client records the throughput
//! traces, and memory digests verify (not assume!) image preservation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use rh_guest::boot::{
    linux_guest_boot, linux_guest_shutdown, resume_handler, suspend_handler, WorkProfile,
};
use rh_memory::contents::FrameContents;
use rh_memory::frame::frames_for_bytes;
use rh_net::downtime::{DowntimeMeter, ProbeLog};
use rh_net::httperf::HttperfClient;
use rh_obs::{Event, EventLog, Metrics, Phase, RecoveryKind};
use rh_sim::engine::{Scheduler, World};
use rh_sim::histogram::LatencyHistogram;
use rh_sim::resource::{JobId, PsResource, Retick};
use rh_sim::rng::SimRng;
use rh_sim::time::{SimDuration, SimTime};
use rh_storage::disk::{Disk, IoKind};
use rh_storage::image::{dirty_extent_bytes, DeltaChain, MemoryImage};
use rh_storage::partition::{PartitionId, PartitionTable};

use crate::config::{HostConfig, RebootStrategy, SuspendOrder};
use crate::domain::{Domain, DomainId, ExecState};
use crate::fault::{FaultAction, FaultContext, FaultHook, InjectPoint};
use crate::metrics::RebootMetrics;
use crate::timing::TimingParams;
use crate::vmm::{Vmm, VmmError};

/// Events of the host world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostEvent {
    /// The shared disk may have completed transfers.
    DiskWake,
    /// The shared CPU pool may have completed work.
    CpuWake,
    /// The network may have completed transfers.
    NetWake,
    /// A lifecycle operation's fixed-latency part elapsed.
    WorkFixedDone(DomainId, WorkTag),
    /// A step of the VMM reboot sequence, tagged with the host epoch that
    /// scheduled it. A crash mid-reboot bumps the epoch; queued steps from
    /// the interrupted run arrive with a stale tag and are dropped.
    Reboot(RebootStep, u64),
    /// Issue httperf requests for free workers.
    HttperfKick,
    /// Send a round of liveness probes.
    ProbeTick,
    /// A guest's dirty-page writer fires.
    DirtyTick(DomainId),
    /// Periodic background delta snapshot (incremental strategy).
    SnapshotTick,
}

/// Lifecycle operations that flow through the work pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkTag {
    /// Guest OS boot.
    BootOs,
    /// Guest OS shutdown (includes clean service stop).
    ShutdownOs,
    /// The in-guest suspend handler.
    SuspendHandler,
    /// The in-guest resume handler.
    ResumeHandler,
    /// Service start after boot.
    StartService,
}

/// Steps of a VMM reboot sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebootStep {
    /// Cold path: guests begin shutting down.
    GuestsStop,
    /// Domain 0 finished its shutdown scripts.
    Dom0ShutdownDone,
    /// The new VMM instance is up (quick reload path).
    QuickReloadDone,
    /// The hardware reset (BIOS POST + SCSI init) completed.
    HwResetDone,
    /// The VMM initialized after a hardware reset.
    VmmBootDone,
    /// Domain 0 finished booting.
    Dom0BootDone,
    /// Serialized per-domain setup (create/resume/restore) slot.
    NextDomainSetup,
    /// Single-domain OS rejuvenation: create + boot after shutdown.
    SingleSetup(DomainId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiskPurpose {
    Work(DomainId),
    SaveImage(DomainId),
    RestoreImage(DomainId),
    RequestMiss(u64),
    FileRead(DomainId),
    /// Background post-copy fault-in of a streamed domain's residual image.
    StreamIn(DomainId),
    /// Background delta-snapshot write (incremental strategy).
    SnapshotDelta(DomainId),
}

#[derive(Debug, Clone, Copy)]
struct WorkState {
    tag: WorkTag,
    profile: WorkProfile,
}

/// Outcome of one fault-hook consultation (see [`Host`]'s `inject`).
#[derive(Debug, Clone, Copy, Default)]
struct Injected {
    crashed: bool,
    fail_resume: bool,
    dom0_extra: SimDuration,
}

#[derive(Debug)]
struct RebootRun {
    strategy: RebootStrategy,
    commanded_at: SimTime,
    dom0_shutdown_done: bool,
    reset_started: bool,
    /// True for runs driven by crash recovery (micro-reboot or cold): a
    /// domain that fails validation falls back to a cold boot (with bounded
    /// retries) instead of being resumed corrupted or abandoned.
    recovery: bool,
    pending_stops: BTreeSet<DomainId>,
    setup_queue: VecDeque<DomainId>,
    pending_setup: BTreeSet<DomainId>,
    digests: BTreeMap<DomainId, u64>,
    /// Epoch stamps `(contents_epoch, p2m_epoch)` taken alongside each
    /// frozen digest. If neither epoch-window moved over the domain's
    /// frames by resume time, the digest is unchanged by construction and
    /// verification can skip the O(frames) rehash (PERFORMANCE.md).
    digest_stamps: BTreeMap<DomainId, (u64, u64)>,
    /// Domains that lost their frozen image and were (or will be) rebuilt
    /// from scratch during this run.
    cold_fallbacks: BTreeSet<DomainId>,
    /// Per-domain cold-boot retry counts (recovery runs only).
    retries: BTreeMap<DomainId, u32>,
}

impl RebootRun {
    fn new(strategy: RebootStrategy, commanded_at: SimTime) -> Self {
        RebootRun {
            strategy,
            commanded_at,
            dom0_shutdown_done: false,
            reset_started: false,
            recovery: false,
            pending_stops: BTreeSet::new(),
            setup_queue: VecDeque::new(),
            pending_setup: BTreeSet::new(),
            digests: BTreeMap::new(),
            digest_stamps: BTreeMap::new(),
            cold_fallbacks: BTreeSet::new(),
            retries: BTreeMap::new(),
        }
    }
}

/// A completed reboot, summarized.
#[derive(Debug, Clone)]
pub struct RebootReport {
    /// Strategy used.
    pub strategy: RebootStrategy,
    /// When the reboot command was issued.
    pub commanded_at: SimTime,
    /// When the last domain came back up.
    pub completed_at: SimTime,
    /// Per-domain service outage across this reboot.
    pub downtime: BTreeMap<DomainId, SimDuration>,
    /// Domains whose post-reboot memory digest did not match the frozen
    /// image (must be empty for warm and saved reboots).
    pub corrupted: Vec<DomainId>,
    /// Domains that lost their memory image during this reboot and came
    /// back via a cold boot (driver domains on the warm path, and recovery
    /// fallbacks after a VMM failure).
    pub cold_booted: Vec<DomainId>,
}

impl RebootReport {
    /// Mean per-domain downtime.
    pub fn mean_downtime(&self) -> SimDuration {
        if self.downtime.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.downtime.values().copied().sum();
        total / self.downtime.len() as u64
    }

    /// Maximum per-domain downtime.
    pub fn max_downtime(&self) -> SimDuration {
        self.downtime
            .values()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[derive(Debug, Clone)]
struct SavedDomain {
    image: MemoryImage,
    exec: ExecState,
    snapshot: Domain,
}

/// A background delta snapshot whose disk write is in flight.
#[derive(Debug, Clone)]
struct PendingSnapshot {
    image: MemoryImage,
    bytes: u64,
    contents_epoch: u64,
    p2m_epoch: u64,
    /// True when this is a full (re)base rather than a delta on an
    /// existing chain.
    full: bool,
}

#[derive(Debug, Clone, Copy)]
struct Request {
    dom: DomainId,
    bytes: u64,
    issued: SimTime,
}

/// One completed in-guest file read (the Fig. 8a workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileReadResult {
    /// Domain that read.
    pub dom: DomainId,
    /// Read start.
    pub start: SimTime,
    /// Read end.
    pub end: SimTime,
    /// Bytes read.
    pub bytes: u64,
}

impl FileReadResult {
    /// Observed throughput in bytes/second.
    pub fn throughput_bps(&self) -> f64 {
        self.bytes as f64 / (self.end - self.start).as_secs_f64()
    }
}

/// The simulated host.
#[derive(Debug)]
pub struct Host {
    cfg: HostConfig,
    t: TimingParams,
    vmm: Vmm,
    contents: FrameContents,
    domains: BTreeMap<DomainId, Domain>,
    disk: Disk,
    disk_wake: Retick,
    cpu: PsResource,
    cpu_wake: Retick,
    net: PsResource,
    net_wake: Retick,
    disk_jobs: BTreeMap<JobId, DiskPurpose>,
    cpu_jobs: BTreeMap<JobId, DomainId>,
    net_jobs: BTreeMap<JobId, u64>,
    work: BTreeMap<DomainId, WorkState>,
    run: Option<RebootRun>,
    saved: BTreeMap<DomainId, SavedDomain>,
    /// Domains resumed from a partial (working-set) restore whose residual
    /// image is still streaming in from disk — served degraded meanwhile.
    streaming: BTreeSet<DomainId>,
    /// Per-domain incremental snapshot chains (consolidated image + write
    /// ledger).
    delta_chains: BTreeMap<DomainId, DeltaChain>,
    /// Delta snapshots whose disk write has not completed yet.
    pending_snapshots: BTreeMap<DomainId, PendingSnapshot>,
    meters: BTreeMap<DomainId, DowntimeMeter>,
    probes: BTreeMap<DomainId, ProbeLog>,
    httperf: Option<(DomainId, HttperfClient)>,
    requests: BTreeMap<u64, Request>,
    next_req: u64,
    /// Pending guest file reads: start, logical bytes, and the memory-copy
    /// tail still owed after any disk stage (zero on the cache-miss path).
    file_reads: BTreeMap<DomainId, (SimTime, u64, SimDuration)>,
    file_read_results: Vec<FileReadResult>,
    /// Phase timeline of the most recent reboot (Fig. 7 data).
    pub metrics: RebootMetrics,
    /// Typed structured event trace.
    pub trace: EventLog,
    /// Counters and timers accumulated across the host's whole life
    /// (reboot counts per strategy, per-strategy duration histograms,
    /// guest suspend/resume tallies, fault and recovery tallies).
    pub stats: Metrics,
    reports: Vec<RebootReport>,
    errors: Vec<VmmError>,
    single_rejuvs: BTreeSet<DomainId>,
    latencies: LatencyHistogram,
    dirty_writers: BTreeMap<DomainId, (u64, SimDuration)>,
    rng: SimRng,
    partitions: PartitionTable,
    partition_of: BTreeMap<DomainId, PartitionId>,
    aging_clock: BTreeMap<DomainId, SimTime>,
    hook: Option<Box<dyn FaultHook>>,
    /// Bumped whenever a crash abandons an in-flight reboot; scheduled
    /// `Reboot` events carry the epoch they were created under and stale
    /// ones are dropped.
    epoch: u64,
    last_fault_at: Option<SimTime>,
}

impl Host {
    /// Builds a host from `cfg`. Call [`power_on`](Self::power_on) to bring
    /// it up.
    pub fn new(cfg: HostConfig) -> Self {
        let t = cfg.timing.clone();
        let vmm = Vmm::new(frames_for_bytes(cfg.ram_bytes));
        let mut domains = BTreeMap::new();
        // Domain 0: 512 MB, no service (paper §5).
        let dom0_spec = crate::domain::DomainSpec {
            name: "dom0".to_string(),
            mem_bytes: 512 << 20,
            service: None,
            files: None,
            driver_domain: false,
            backend: None,
        };
        domains.insert(DomainId::DOM0, Domain::new(DomainId::DOM0, dom0_spec, 0));
        let mut meters = BTreeMap::new();
        let mut probes = BTreeMap::new();
        for (i, spec) in cfg.domains.iter().enumerate() {
            let id = DomainId(i as u32 + 1);
            let mut dom = Domain::new(id, spec.clone(), 0);
            if cfg.guest_aging {
                dom.aging = Some(rh_guest::aging::GuestAging::typical_2007_linux());
            }
            domains.insert(id, dom);
            meters.insert(id, DowntimeMeter::new());
            probes.insert(id, ProbeLog::new(t.probe_interval));
        }
        let trace = if cfg.trace {
            EventLog::new()
        } else {
            EventLog::disabled()
        };
        // One physical partition per VM on the 36.7 GB disk (paper §5).
        let mut partitions = PartitionTable::new(36_700_000_000);
        let mut partition_of = BTreeMap::new();
        let slice = 36_700_000_000 / (cfg.domains.len() as u64 + 1).max(1);
        for i in 0..cfg.domains.len() {
            let id = DomainId(i as u32 + 1);
            if let Ok(pid) = partitions.create(id.0, slice) {
                partition_of.insert(id, pid);
            }
        }
        Host {
            disk: Disk::new(t.disk),
            cpu: PsResource::new(t.cpu_cores),
            net: PsResource::new(t.net_bandwidth_bps),
            t,
            vmm,
            contents: FrameContents::new(),
            domains,
            disk_wake: Retick::new(),
            cpu_wake: Retick::new(),
            net_wake: Retick::new(),
            disk_jobs: BTreeMap::new(),
            cpu_jobs: BTreeMap::new(),
            net_jobs: BTreeMap::new(),
            work: BTreeMap::new(),
            run: None,
            saved: BTreeMap::new(),
            streaming: BTreeSet::new(),
            delta_chains: BTreeMap::new(),
            pending_snapshots: BTreeMap::new(),
            meters,
            probes,
            httperf: None,
            requests: BTreeMap::new(),
            next_req: 0,
            file_reads: BTreeMap::new(),
            file_read_results: Vec::new(),
            metrics: RebootMetrics::new(),
            trace,
            stats: Metrics::new(),
            reports: Vec::new(),
            errors: Vec::new(),
            single_rejuvs: BTreeSet::new(),
            latencies: LatencyHistogram::new(),
            dirty_writers: BTreeMap::new(),
            rng: SimRng::from_seed(cfg.seed),
            partitions,
            partition_of,
            aging_clock: BTreeMap::new(),
            hook: None,
            epoch: 0,
            last_fault_at: None,
            cfg,
        }
    }

    /// Arms a fault-injection hook; the host consults it at every
    /// [`InjectPoint`]. With no hook armed the host behaves byte-identically
    /// to one built before fault injection existed.
    pub fn arm_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.hook = Some(hook);
    }

    /// Disarms the fault hook, returning it (to read hit counters).
    pub fn disarm_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        self.hook.take()
    }

    /// When the last injected VMM failure struck, if any.
    pub fn last_fault_at(&self) -> Option<SimTime> {
        self.last_fault_at
    }

    /// Schedules a reboot step tagged with the current host epoch.
    fn sched_reboot(&self, sched: &mut Scheduler<HostEvent>, delay: SimDuration, step: RebootStep) {
        sched.schedule_in(delay, HostEvent::Reboot(step, self.epoch));
    }

    /// Opens `phase` on the Fig. 7 timeline and mirrors the transition
    /// into the event trace.
    fn phase_begin(&mut self, at: SimTime, phase: Phase) {
        self.metrics.begin(at, phase);
        self.trace.emit(at, Event::PhaseBegin(phase));
    }

    /// Closes `phase` on the timeline and mirrors the transition into the
    /// event trace.
    fn phase_end(&mut self, at: SimTime, phase: Phase) {
        self.metrics.end(at, phase);
        self.trace.emit(at, Event::PhaseEnd(phase));
    }

    /// Closes `phase` if it is open; the end event is emitted only when a
    /// span was actually closed.
    fn phase_end_if_open(&mut self, at: SimTime, phase: Phase) {
        if self.metrics.end_if_open(at, phase) {
            self.trace.emit(at, Event::PhaseEnd(phase));
        }
    }

    /// Consults the armed fault hook (if any) at `point` and applies the
    /// actions it returns. With no hook armed this is a single `Option`
    /// check. Corruption actions apply immediately; `CrashVmm` tears the
    /// VMM down via [`fault_vmm_crash`](Self::fault_vmm_crash) and the
    /// caller must stop its pipeline step when `crashed` comes back true.
    fn inject(
        &mut self,
        sched: &mut Scheduler<HostEvent>,
        point: InjectPoint,
        domain: Option<DomainId>,
    ) -> Injected {
        let mut out = Injected::default();
        let Some(mut hook) = self.hook.take() else {
            return out;
        };
        let ctx = FaultContext {
            now: sched.now(),
            domain,
        };
        let actions = hook.consult(point, &ctx);
        self.hook = Some(hook);
        for action in actions {
            match action {
                FaultAction::CrashVmm => out.crashed = true,
                FaultAction::CorruptStagedImage { xor } => {
                    if self.vmm.xexec_mut().corrupt_staged_with(xor) {
                        self.stats.inc("fault.injected");
                        self.trace.emit(sched.now(), Event::StagedImageCorrupted);
                    }
                }
                FaultAction::CorruptP2m { dom, extent, xor } => {
                    if let Some(d) = self.domains.get_mut(&dom) {
                        if d.p2m.corrupt_extent(extent, xor) {
                            self.stats.inc("fault.injected");
                            self.trace
                                .emit(sched.now(), Event::P2mCorrupted(dom.into()));
                        }
                    }
                }
                FaultAction::CorruptFrame { dom, page, xor } => {
                    let Some(d) = self.domains.get(&dom) else {
                        continue;
                    };
                    let total = d.p2m.total_pages();
                    if total == 0 {
                        continue;
                    }
                    let pfn = rh_memory::frame::Pfn(page % total);
                    if let Some(mfn) = d.p2m.lookup(pfn) {
                        self.contents.corrupt(mfn, xor);
                        self.stats.inc("fault.injected");
                        self.trace.emit(
                            sched.now(),
                            Event::FrameCorrupted {
                                dom: dom.into(),
                                pfn: pfn.0,
                            },
                        );
                    }
                }
                FaultAction::DropExecState { dom } => {
                    let Some(mut d) = self.domains.remove(&dom) else {
                        continue;
                    };
                    d.exec_state = None;
                    if let Err(e) = self.vmm.release_domain_memory(&mut d, &mut self.contents) {
                        self.errors.push(e);
                    }
                    self.domains.insert(dom, d);
                    self.stats.inc("fault.injected");
                    self.trace
                        .emit(sched.now(), Event::ExecStateLost(dom.into()));
                }
                FaultAction::FailResume { dom } => {
                    if domain == Some(dom) {
                        out.fail_resume = true;
                    }
                }
                FaultAction::HangDom0 { extra_ms } => {
                    out.dom0_extra = out.dom0_extra + SimDuration::from_millis(extra_ms);
                }
            }
        }
        if out.crashed {
            self.fault_vmm_crash(sched);
        }
        out
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Mutable access to domain 0.
    ///
    /// # Panics
    ///
    /// Panics if domain 0 is missing — it is inserted in [`Host::new`] and
    /// never removed, so that indicates a corrupted host.
    fn dom0_mut(&mut self) -> &mut Domain {
        self.domains
            .get_mut(&DomainId::DOM0)
            // lint:allow(unwrap-panic): dom0 is inserted in new() and never removed
            .expect("dom0 exists")
    }

    /// Mutable access to the domain `id`, which the work pipeline has
    /// already validated.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id — the work pipeline only queues operations
    /// for live domains, so that indicates a sequencing bug.
    fn dom_mut(&mut self, id: DomainId) -> &mut Domain {
        self.domains
            .get_mut(&id)
            // lint:allow(unwrap-panic): the work pipeline only queues ops for live domains
            .expect("domain exists")
    }

    /// Mutable access to the in-flight reboot run.
    ///
    /// # Panics
    ///
    /// Panics when no reboot is in progress — run-phase handlers are only
    /// dispatched while `self.run` is populated.
    fn run_mut(&mut self) -> &mut RebootRun {
        self.run
            .as_mut()
            // lint:allow(unwrap-panic): run-phase handlers only fire while a run is active
            .expect("run active")
    }

    /// The configuration this host was built from.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The VMM.
    pub fn vmm(&self) -> &Vmm {
        &self.vmm
    }

    /// Mutable VMM access (aging injection).
    pub fn vmm_mut(&mut self) -> &mut Vmm {
        &mut self.vmm
    }

    /// All domains (including dom0).
    pub fn domains(&self) -> &BTreeMap<DomainId, Domain> {
        &self.domains
    }

    /// One domain.
    pub fn domain(&self, id: DomainId) -> Option<&Domain> {
        self.domains.get(&id)
    }

    /// Mutable access to one domain (experiment setup, e.g. cache warming).
    pub fn domain_mut(&mut self, id: DomainId) -> Option<&mut Domain> {
        self.domains.get_mut(&id)
    }

    /// Ids of all domain Us, ascending.
    pub fn domu_ids(&self) -> Vec<DomainId> {
        self.domains
            .keys()
            .copied()
            .filter(|d| !d.is_dom0())
            .collect()
    }

    /// The exact downtime meter of a domain U.
    pub fn meter(&self, id: DomainId) -> Option<&DowntimeMeter> {
        self.meters.get(&id)
    }

    /// The sampled probe log of a domain U.
    pub fn probe_log(&self, id: DomainId) -> Option<&ProbeLog> {
        self.probes.get(&id)
    }

    /// Completed reboot reports, oldest first.
    pub fn reports(&self) -> &[RebootReport] {
        &self.reports
    }

    /// The most recent reboot report.
    pub fn last_report(&self) -> Option<&RebootReport> {
        self.reports.last()
    }

    /// Errors the VMM raised (heap exhaustion under aging, ...).
    pub fn errors(&self) -> &[VmmError] {
        &self.errors
    }

    /// Completed file-read measurements.
    pub fn file_read_results(&self) -> &[FileReadResult] {
        &self.file_read_results
    }

    /// The httperf client, if attached.
    pub fn httperf(&self) -> Option<&HttperfClient> {
        self.httperf.as_ref().map(|(_, c)| c)
    }

    /// The shared physical disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// True when every configured domain U is up and serving.
    pub fn all_services_up(&self) -> bool {
        self.vmm.is_running()
            && self
                .domains
                .values()
                .filter(|d| !d.id.is_dom0())
                .all(|d| d.service_up())
    }

    /// True while a VMM reboot is in progress.
    pub fn reboot_in_progress(&self) -> bool {
        self.run.is_some()
    }

    /// Domains whose residual image is still streaming in from disk after
    /// a streamed (post-copy) resume.
    pub fn streaming_domains(&self) -> &BTreeSet<DomainId> {
        &self.streaming
    }

    /// A domain's incremental snapshot chain, if one has been based.
    pub fn delta_chain(&self, id: DomainId) -> Option<&DeltaChain> {
        self.delta_chains.get(&id)
    }

    /// True while any background delta-snapshot write is in flight.
    pub fn snapshot_in_flight(&self) -> bool {
        !self.pending_snapshots.is_empty()
    }

    /// Digest of a domain's current memory image.
    pub fn domain_digest(&self, id: DomainId) -> Option<u64> {
        self.domains
            .get(&id)
            .map(|d| self.vmm.domain_digest(d, &self.contents))
    }

    /// Histogram of completed web-request latencies.
    pub fn request_latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// The disk partition table (one slice per VM, paper §5).
    pub fn partitions(&self) -> &PartitionTable {
        &self.partitions
    }

    /// The partition backing a domain's virtual disk.
    pub fn partition_of(&self, id: DomainId) -> Option<PartitionId> {
        self.partition_of.get(&id).copied()
    }

    /// Advances a domain's OS aging to `now` (uptime wear + one served
    /// request) and returns the current service-time multiplier.
    fn aging_slowdown(&mut self, id: DomainId, now: SimTime) -> f64 {
        let Some(dom) = self.domains.get_mut(&id) else {
            return 1.0;
        };
        let Some(aging) = dom.aging.as_mut() else {
            return 1.0;
        };
        let last = self.aging_clock.get(&id).copied().unwrap_or(now);
        if now > last {
            aging.advance(now - last);
        }
        aging.on_requests(1);
        self.aging_clock.insert(id, now);
        aging.service_slowdown()
    }

    fn account_read(&mut self, id: DomainId, bytes: f64) {
        if let Some(pid) = self.partition_of.get(&id) {
            let _ = self.partitions.record_read(*pid, bytes);
        }
    }

    /// Starts a dirty-page writer inside a guest: every `interval`,
    /// `pages_per_tick` random pages of the domain are overwritten. This
    /// models a working set that mutates continuously — the state the
    /// warm-VM reboot must carry across intact (and the load a pre-copy
    /// migration would have to chase).
    ///
    /// # Panics
    ///
    /// Panics if the domain is unknown or a writer is already attached.
    pub fn start_dirty_writer(
        &mut self,
        sched: &mut Scheduler<HostEvent>,
        id: DomainId,
        pages_per_tick: u64,
        interval: SimDuration,
    ) {
        assert!(self.domains.contains_key(&id), "unknown domain {id}");
        let prev = self.dirty_writers.insert(id, (pages_per_tick, interval));
        assert!(prev.is_none(), "{id} already has a dirty writer");
        sched.schedule_in(interval, HostEvent::DirtyTick(id));
    }

    /// Stops a domain's dirty-page writer.
    pub fn stop_dirty_writer(&mut self, id: DomainId) {
        self.dirty_writers.remove(&id);
    }

    fn on_dirty_tick(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let Some(&(pages, interval)) = self.dirty_writers.get(&id) else {
            return; // writer stopped; stale event
        };
        // Only a *running* kernel dirties memory; a frozen or rebooting
        // guest must not (that would falsify the preservation digests).
        if let Some(dom) = self.domains.get_mut(&id) {
            if dom.kernel.is_running() {
                let total = dom.p2m.total_pages();
                if total > 0 {
                    for _ in 0..pages {
                        let pfn = rh_memory::frame::Pfn(self.rng.below(total));
                        if let Some(mfn) = dom.p2m.lookup(pfn) {
                            self.contents.write(mfn, self.rng.next_u64());
                        }
                    }
                }
            }
        }
        sched.schedule_in(interval, HostEvent::DirtyTick(id));
    }

    fn observable_up(&self, id: DomainId) -> bool {
        if !self.vmm.is_running() {
            return false;
        }
        let Some(dom) = self.domains.get(&id) else {
            return false;
        };
        if !dom.service_up() {
            return false;
        }
        // I/O flows through the backend domain's drivers (§7): a guest
        // behind a down driver domain is unreachable.
        match dom.spec.backend {
            Some(b) => self
                .domains
                .get(&DomainId(b))
                .map(|d| d.kernel.is_running())
                .unwrap_or(false),
            None => true,
        }
    }

    fn refresh(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        if id.is_dom0() {
            return;
        }
        // A backend's state change changes its dependents' reachability.
        let dependents: Vec<DomainId> = self
            .domains
            .values()
            .filter(|d| d.spec.backend == Some(id.0))
            .map(|d| d.id)
            .collect();
        for dep in dependents {
            self.refresh_one(sched, dep);
        }
        self.refresh_one(sched, id);
    }

    fn refresh_one(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let up = self.observable_up(id);
        let was_up = self.meters.get(&id).map(|m| m.is_up()).unwrap_or(false);
        if let Some(m) = self.meters.get_mut(&id) {
            if up {
                m.mark_up(sched.now());
            } else {
                m.mark_down(sched.now());
            }
        }
        if up && !was_up {
            if let Some((dom, _)) = &self.httperf {
                if *dom == id {
                    sched.schedule_in(SimDuration::ZERO, HostEvent::HttperfKick);
                }
            }
        }
        if !up && was_up {
            self.abort_requests_for(sched, id);
        }
    }

    // ------------------------------------------------------------------
    // Bring-up and reboots (public commands)
    // ------------------------------------------------------------------

    /// Powers the host on: dom0 boots, then every guest is created, booted
    /// and its service started. Run the simulation until
    /// [`all_services_up`](Self::all_services_up).
    pub fn power_on(&mut self, sched: &mut Scheduler<HostEvent>) {
        assert!(self.run.is_none(), "already powering on or rebooting");
        self.trace.emit(sched.now(), Event::PowerOn);
        if self.dom0_mut().kernel.begin_boot().is_err() {
            // dom0 is not off: a repeated power-on. Record and refuse
            // rather than panicking.
            self.errors.push(VmmError::BadDomainState(
                DomainId::DOM0,
                "dom0 not off at power on",
            ));
            return;
        }
        let mut run = RebootRun::new(RebootStrategy::Cold, sched.now());
        run.dom0_shutdown_done = true;
        run.reset_started = true;
        self.run = Some(run);
        self.phase_begin(sched.now(), Phase::Dom0Boot);
        self.sched_reboot(sched, self.t.dom0_boot, RebootStep::Dom0BootDone);
        if self.cfg.probes {
            sched.schedule_in(self.t.probe_interval, HostEvent::ProbeTick);
        }
        if let Some(interval) = self.cfg.snapshot_interval {
            sched.schedule_in(interval, HostEvent::SnapshotTick);
        }
    }

    /// Initiates the paper's warm-VM reboot.
    ///
    /// # Panics
    ///
    /// Panics if a reboot is already in progress.
    pub fn warm_reboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        assert!(self.run.is_none(), "reboot already in progress");
        let now = sched.now();
        self.trace
            .emit(now, Event::RebootCommanded(RebootStrategy::Warm.into()));
        self.stats.inc("reboot.commanded.warm");
        self.metrics.clear();
        self.phase_begin(now, Phase::Reboot);
        // xexec: load the new VMM executable while everything still runs;
        // its end event is recorded eagerly with its completion timestamp.
        self.phase_begin(now, Phase::XexecLoad);
        self.phase_end(now + self.t.xexec_load, Phase::XexecLoad);
        let next_version = self.vmm.running_version() + 1;
        self.vmm
            .stage_next_image(crate::xexec::XexecImage::build(next_version));
        self.trace.emit(
            now,
            Event::XexecStaged {
                version: u64::from(next_version),
            },
        );
        self.run = Some(RebootRun::new(RebootStrategy::Warm, now));
        if self.inject(sched, InjectPoint::StageImage, None).crashed {
            return;
        }
        if self.dom0_mut().kernel.begin_shutdown().is_err() {
            // dom0 was not running: abandon the reboot instead of panicking.
            self.errors.push(VmmError::BadDomainState(
                DomainId::DOM0,
                "dom0 not running at warm reboot",
            ));
            self.run = None;
            return;
        }
        self.phase_begin(now, Phase::Dom0Shutdown);
        self.sched_reboot(sched, self.t.dom0_shutdown, RebootStep::Dom0ShutdownDone);
        if self.cfg.suspend_order == SuspendOrder::Dom0DuringShutdown {
            // Original-Xen ordering ablation: guests suspend while dom0 is
            // still shutting down.
            self.sched_reboot(sched, self.t.cold_guest_stop_delay, RebootStep::GuestsStop);
        }
    }

    /// Initiates a cold-VM reboot (ordinary reboot with hardware reset).
    ///
    /// # Panics
    ///
    /// Panics if a reboot is already in progress.
    pub fn cold_reboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        assert!(self.run.is_none(), "reboot already in progress");
        let now = sched.now();
        self.trace
            .emit(now, Event::RebootCommanded(RebootStrategy::Cold.into()));
        self.stats.inc("reboot.commanded.cold");
        self.metrics.clear();
        self.phase_begin(now, Phase::Reboot);
        self.run = Some(RebootRun::new(RebootStrategy::Cold, now));
        if self.dom0_mut().kernel.begin_shutdown().is_err() {
            // dom0 was not running: abandon the reboot instead of panicking.
            self.errors.push(VmmError::BadDomainState(
                DomainId::DOM0,
                "dom0 not running at cold reboot",
            ));
            self.run = None;
            return;
        }
        self.phase_begin(now, Phase::Dom0Shutdown);
        self.sched_reboot(sched, self.t.dom0_shutdown, RebootStep::Dom0ShutdownDone);
        self.sched_reboot(sched, self.t.cold_guest_stop_delay, RebootStep::GuestsStop);
    }

    /// Initiates a saved-VM reboot (Xen's suspend-to-disk baseline).
    ///
    /// # Panics
    ///
    /// Panics if a reboot is already in progress.
    pub fn saved_reboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        self.disked_reboot(sched, RebootStrategy::Saved);
    }

    /// Initiates a streamed (post-copy) reboot: identical to a saved
    /// reboot up to the restore, which reads only each image's working
    /// set before resuming; the residual pages stream in from disk while
    /// the guest serves (degraded by cache misses meanwhile, Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if a reboot is already in progress.
    pub fn streamed_reboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        self.disked_reboot(sched, RebootStrategy::Streamed);
    }

    /// Initiates an incremental reboot: a saved reboot whose at-reboot
    /// save writes only the extents dirtied since the last background
    /// delta snapshot (arm the ticker with
    /// [`HostConfig::with_snapshot_interval`](crate::config::HostConfig::with_snapshot_interval);
    /// with no chain based yet, the save degenerates to a full one).
    ///
    /// # Panics
    ///
    /// Panics if a reboot is already in progress.
    pub fn incremental_reboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        self.disked_reboot(sched, RebootStrategy::Incremental);
    }

    /// Shared entry for the strategies that park guest images on disk
    /// across the hardware reset (saved / streamed / incremental).
    fn disked_reboot(&mut self, sched: &mut Scheduler<HostEvent>, strategy: RebootStrategy) {
        assert!(self.run.is_none(), "reboot already in progress");
        let now = sched.now();
        self.trace
            .emit(now, Event::RebootCommanded(strategy.into()));
        self.stats.inc(&format!("reboot.commanded.{strategy}"));
        self.metrics.clear();
        self.phase_begin(now, Phase::Reboot);
        self.run = Some(RebootRun::new(strategy, now));
        self.phase_begin(now, Phase::Save);
        // Original Xen: dom0 suspends and saves every guest while it is
        // still up; its own shutdown comes after the saves.
        self.begin_guest_stops(sched);
    }

    /// Crashes the VMM — the aging failure the paper's proactive
    /// rejuvenation exists to preempt (§2: out-of-memory errors "can lead
    /// \[to\] performance degradation or crash failure of the VMM. Such
    /// problems of the VMM directly affect all the VMs").
    ///
    /// Every guest dies with it; recovery is reactive: a hardware reset
    /// followed by a full cold boot, driven automatically. A
    /// [`RebootReport`] with `strategy == Cold` is pushed when the host is
    /// back up.
    ///
    /// A crash may land while a reboot is already in progress: the
    /// interrupted run is abandoned and its queued steps are cancelled (the
    /// epoch bump makes them arrive stale), then the usual reactive cold
    /// recovery takes over.
    pub fn crash_vmm(&mut self, sched: &mut Scheduler<HostEvent>) {
        // Cancel any in-flight reboot: bump the epoch so queued Reboot
        // events from the abandoned run are dropped on arrival.
        self.epoch = self.epoch.wrapping_add(1);
        self.run = None;
        let now = sched.now();
        self.trace.emit(now, Event::VmmCrashed);
        self.stats.inc("fault.vmm_crash");
        self.metrics.clear();
        self.phase_begin(now, Phase::Reboot);
        // Everything running dies instantly: no clean shutdowns, no
        // suspend handlers, no flushed caches.
        self.vmm.set_down();
        let ids: Vec<DomainId> = self.domains.keys().copied().collect();
        for dom in self.domains.values_mut() {
            if let Some(svc) = dom.service.as_mut() {
                svc.kill();
            }
            dom.kernel.crash();
        }
        // Tear down in-flight work and I/O.
        self.work.clear();
        self.disk.cancel_all(now);
        self.disk_jobs.clear();
        self.cpu.cancel_all(now);
        self.cpu_jobs.clear();
        self.net.cancel_all(now);
        self.net_jobs.clear();
        self.rearm_disk(sched);
        self.rearm_cpu(sched);
        self.rearm_net(sched);
        // Free httperf workers whose requests evaporated with the host.
        let stale: Vec<u64> = self.requests.keys().copied().collect();
        for rid in stale {
            self.requests.remove(&rid);
            if let Some((_, client)) = self.httperf.as_mut() {
                client.abort();
            }
        }
        self.file_reads.clear();
        // In-flight streams and delta snapshots died with their disk jobs;
        // the chains survive on disk but go stale at the next restore.
        self.streaming.clear();
        self.pending_snapshots.clear();
        // Any half-done single-domain rejuvenations died with the host.
        self.single_rejuvs.clear();
        for id in &ids {
            self.refresh(sched, *id);
        }
        // Reactive recovery: watchdog-initiated hardware reset, then the
        // ordinary cold bring-up. The reset wipes the crashed domains'
        // memory wholesale.
        let mut run = RebootRun::new(RebootStrategy::Cold, now);
        run.dom0_shutdown_done = true;
        self.run = Some(run);
        self.maybe_start_reset(sched);
    }

    /// An unplanned VMM failure (the fault-injection path): the VMM dies in
    /// place and *nothing* is driven automatically. Guest kernels are left
    /// frozen where they sit — their memory images, P2M tables and exec
    /// state survive in RAM exactly as at the instant of failure — while
    /// every service becomes unreachable (the meters go down). A recovery
    /// engine must notice ([`Vmm::is_running`] false with
    /// [`reboot_in_progress`](Self::reboot_in_progress) false) and command
    /// [`recover_microreboot`](Self::recover_microreboot) or
    /// [`recover_cold`](Self::recover_cold).
    ///
    /// Safe to call at any instant, including mid-reboot: the interrupted
    /// run is abandoned and its queued steps cancelled via the epoch bump.
    pub fn fault_vmm_crash(&mut self, sched: &mut Scheduler<HostEvent>) {
        let now = sched.now();
        self.epoch = self.epoch.wrapping_add(1);
        self.run = None;
        self.last_fault_at = Some(now);
        self.trace.emit(now, Event::VmmFailed);
        self.stats.inc("fault.vmm_failed");
        self.vmm.set_down();
        // In-flight work and I/O stall with the VMM; the frozen guests do
        // not execute, so nothing completes.
        self.work.clear();
        self.disk.cancel_all(now);
        self.disk_jobs.clear();
        self.cpu.cancel_all(now);
        self.cpu_jobs.clear();
        self.net.cancel_all(now);
        self.net_jobs.clear();
        self.rearm_disk(sched);
        self.rearm_cpu(sched);
        self.rearm_net(sched);
        let stale: Vec<u64> = self.requests.keys().copied().collect();
        for rid in stale {
            self.requests.remove(&rid);
            if let Some((_, client)) = self.httperf.as_mut() {
                client.abort();
            }
        }
        self.file_reads.clear();
        self.streaming.clear();
        self.pending_snapshots.clear();
        self.single_rejuvs.clear();
        let ids: Vec<DomainId> = self.domains.keys().copied().collect();
        for id in ids {
            self.refresh(sched, id);
        }
    }

    /// ReHype-style recovery (Le & Tamir): micro-reboot the failed VMM via
    /// quick reload and salvage every domain whose memory image is still
    /// coherent. Domains caught mid-transition (booting, shutting down,
    /// resuming) or already dead are unsalvageable and fall back to a cold
    /// boot; so does any salvaged domain whose post-resume digest fails
    /// validation. Completion pushes a [`RebootReport`] whose
    /// `cold_booted` lists the fallbacks.
    ///
    /// # Panics
    ///
    /// Panics if the VMM is still running or a reboot is in progress — the
    /// caller detects the failure first.
    pub fn recover_microreboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        assert!(!self.vmm.is_running(), "recovery requires a failed VMM");
        assert!(self.run.is_none(), "recovery already in progress");
        let now = sched.now();
        self.trace
            .emit(now, Event::RecoveryCommanded(RecoveryKind::Microreboot));
        self.metrics.clear();
        self.phase_begin(now, Phase::Reboot);
        // Recovery boots the same build that was running (no staged image
        // survives a crash reliably; restage deterministically).
        self.vmm
            .stage_next_image(crate::xexec::XexecImage::build(self.vmm.running_version()));
        let mut run = RebootRun::new(RebootStrategy::Warm, now);
        run.recovery = true;
        run.dom0_shutdown_done = true;
        // Triage every domain U in place.
        for id in self.domu_ids() {
            let Some(mut dom) = self.domains.remove(&id) else {
                continue;
            };
            let salvageable = !dom.spec.driver_domain
                && matches!(
                    dom.kernel.state(),
                    rh_guest::kernel::KernelState::Running
                        | rh_guest::kernel::KernelState::Suspending
                        | rh_guest::kernel::KernelState::Suspended
                );
            let frozen = if !salvageable {
                false
            } else if dom.kernel.state() == rh_guest::kernel::KernelState::Suspended {
                // Already frozen (the crash hit mid-warm-reboot); its image
                // is intact iff the exec state survived.
                dom.exec_state.is_some()
            } else {
                // Freeze the interrupted guest exactly where it stopped:
                // the frontends never detached cleanly, so force-detach,
                // then capture exec state from the frozen registers.
                if dom.kernel.state() == rh_guest::kernel::KernelState::Running {
                    let _ = dom.kernel.begin_suspend();
                }
                dom.channels.detach_for_suspend();
                match self
                    .vmm
                    .on_memory_suspend(&mut dom, self.t.exec_state_bytes)
                {
                    Ok(()) => dom.kernel.finish_suspend().is_ok(),
                    Err(e) => {
                        self.errors.push(e);
                        false
                    }
                }
            };
            if frozen {
                let digest = self.vmm.domain_digest(&dom, &self.contents);
                run.digests.insert(id, digest);
                run.digest_stamps
                    .insert(id, (self.contents.epoch(), dom.p2m.epoch()));
                self.stats.inc("recovery.salvaged");
                self.trace.emit(now, Event::Salvaged(id.into()));
            } else {
                // Unsalvageable: release what is left and plan a cold boot.
                if let Err(e) = self.vmm.destroy_domain(&mut dom, &mut self.contents) {
                    self.errors.push(e);
                }
                dom.kernel.destroy();
                if let Some(svc) = dom.service.as_mut() {
                    svc.kill();
                }
                dom.cache.clear();
                run.cold_fallbacks.insert(id);
                self.stats.inc("recovery.cold_fallback");
                self.trace.emit(now, Event::LostColdBoot(id.into()));
            }
            self.domains.insert(id, dom);
        }
        // dom0 is rebuilt from scratch on every reboot; it holds no
        // preserved memory.
        self.dom0_mut().kernel.destroy();
        self.run = Some(run);
        self.begin_quick_reload(sched);
    }

    /// Baseline reactive recovery: give up on all preserved state and drive
    /// the ordinary crash path (hardware reset + full cold boot).
    ///
    /// # Panics
    ///
    /// Panics if the VMM is still running or a reboot is in progress.
    pub fn recover_cold(&mut self, sched: &mut Scheduler<HostEvent>) {
        assert!(!self.vmm.is_running(), "recovery requires a failed VMM");
        assert!(self.run.is_none(), "recovery already in progress");
        let now = sched.now();
        self.trace
            .emit(now, Event::RecoveryCommanded(RecoveryKind::Cold));
        self.metrics.clear();
        self.phase_begin(now, Phase::Reboot);
        let mut run = RebootRun::new(RebootStrategy::Cold, now);
        run.dom0_shutdown_done = true;
        run.recovery = true;
        for id in self.domu_ids() {
            run.cold_fallbacks.insert(id);
        }
        for dom in self.domains.values_mut() {
            if let Some(svc) = dom.service.as_mut() {
                svc.kill();
            }
            dom.kernel.crash();
        }
        self.run = Some(run);
        self.maybe_start_reset(sched);
    }

    /// Rejuvenates a single guest OS (time-based OS rejuvenation, §3.2/§5.3)
    /// without touching the VMM.
    ///
    /// # Panics
    ///
    /// Panics if the domain is unknown, is dom0, or a VMM reboot is in
    /// progress.
    pub fn os_reboot(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        assert!(!id.is_dom0(), "dom0 rejuvenation implies a VMM reboot");
        assert!(self.run.is_none(), "VMM reboot in progress");
        assert!(self.domains.contains_key(&id), "unknown domain {id}");
        let running = self
            .domains
            .get(&id)
            .map(|d| d.kernel.is_running())
            .unwrap_or(false);
        if !running {
            // Nothing to rejuvenate: the guest is already down (e.g. wedged
            // by heap exhaustion). Leave it to crash recovery.
            self.trace
                .emit(sched.now(), Event::OsRejuvenationSkipped(id.into()));
            return;
        }
        self.trace
            .emit(sched.now(), Event::OsRejuvenation(id.into()));
        self.single_rejuvs.insert(id);
        self.begin_guest_shutdown(sched, id);
    }

    /// Starts the Fig. 8(a) workload: the guest reads `file` from its
    /// corpus; the result lands in [`file_read_results`](Self::file_read_results).
    ///
    /// # Panics
    ///
    /// Panics if the domain has no filesystem, is not running, or already
    /// has a read in flight.
    pub fn file_read(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId, file: u32) {
        let now = sched.now();
        // Direct field access (not dom_mut) so file_reads stays borrowable.
        // lint:allow(unwrap-panic): documented panicking API, see doc comment
        let dom = self.domains.get_mut(&id).expect("unknown domain");
        assert!(dom.kernel.is_running(), "{id} is not running");
        assert!(!self.file_reads.contains_key(&id), "{id} already reading");
        // lint:allow(unwrap-panic): documented panicking API, see doc comment
        let fs = dom.fs.as_ref().expect("domain has no filesystem").clone();
        let plan = fs.plan_read(&mut dom.cache, file);
        let bytes = plan.total_bytes();
        // Post-copy degradation: the non-local fraction of the read faults
        // its pages in from the streaming image first.
        let fault_bytes = if self.streaming.contains(&id) {
            bytes as f64 * (1.0 - self.cfg.stream_locality)
        } else {
            0.0
        };
        if fault_bytes > 0.0 {
            self.stats.add("stream.fault_bytes", fault_bytes as u64);
        }
        let memcpy = SimDuration::from_secs_f64(bytes as f64 / self.t.mem_bandwidth_bps);
        // A faulting read still copies the whole file out of memory after
        // the fault-in; without this tail a small fault at a fast disk
        // would finish *before* the warm-cache read it degrades.
        let faulting = fault_bytes > 0.0;
        let tail = if faulting { memcpy } else { SimDuration::ZERO };
        self.file_reads.insert(id, (now, bytes, tail));
        if plan.miss_bytes == 0 && !faulting {
            // Pure memory read: finishes after bytes / memcpy bandwidth.
            // Completion is routed through a timer event; handle() matches
            // the pending entry in `file_reads` before the work table.
            sched.schedule_in(memcpy, HostEvent::WorkFixedDone(id, WorkTag::ResumeHandler));
        } else {
            if plan.miss_bytes > 0 {
                fs.commit_read(&mut dom.cache, file);
                self.account_read(id, plan.miss_bytes as f64);
            }
            let slow = self.vmm.xenstored().io_slowdown();
            let work = (plan.miss_bytes as f64 / self.t.file_read_efficiency + fault_bytes) * slow;
            let job = self.disk.submit(now, IoKind::Read, work);
            self.disk_jobs.insert(job, DiskPurpose::FileRead(id));
            self.rearm_disk(sched);
        }
    }

    /// Attaches an httperf fleet to `target`.
    ///
    /// # Panics
    ///
    /// Panics if a fleet is already attached.
    pub fn attach_httperf(
        &mut self,
        sched: &mut Scheduler<HostEvent>,
        target: DomainId,
        client: HttperfClient,
    ) {
        assert!(self.httperf.is_none(), "httperf already attached");
        self.httperf = Some((target, client));
        sched.schedule_in(SimDuration::ZERO, HostEvent::HttperfKick);
    }

    /// Detaches the httperf fleet, aborting its in-flight requests, and
    /// returns the client with its completion log for analysis.
    pub fn detach_httperf(&mut self, sched: &mut Scheduler<HostEvent>) -> Option<HttperfClient> {
        let target = self.httperf.as_ref().map(|(d, _)| *d)?;
        self.abort_requests_for(sched, target);
        self.httperf.take().map(|(_, c)| c)
    }

    /// Runtime ballooning: adjusts a domain's resident memory by
    /// `delta_pages` (positive = balloon in / grow, negative = balloon
    /// out / shrink). Instantaneous in simulated time — ballooning is a
    /// background activity whose cost the paper does not model.
    ///
    /// # Errors
    ///
    /// Propagates VMM allocator/P2M failures; the domain is unchanged on
    /// error.
    pub fn balloon(&mut self, id: DomainId, delta_pages: i64) -> Result<(), VmmError> {
        let mut dom = self
            .domains
            .remove(&id)
            .ok_or(VmmError::BadDomainState(id, "balloon unknown domain"))?;
        let result = if delta_pages >= 0 {
            self.vmm
                .balloon_in(&mut dom, &mut self.contents, delta_pages as u64)
        } else {
            self.vmm
                .balloon_out(&mut dom, &mut self.contents, (-delta_pages) as u64)
        };
        self.domains.insert(id, dom);
        result
    }

    /// Host-side reclaim-under-pressure: balloons guest pages out of
    /// running domains, in domain-id order, until `want` pages are freed
    /// or every candidate is exhausted. Returns the pages actually freed
    /// (counted in `stats` as `balloon.reclaimed`).
    ///
    /// Two fences keep this safe against the warm reboot (invariant I8,
    /// proved exhaustively by `rh-lint balloon`): nothing is reclaimed
    /// while a VMM reboot is in flight, and a domain whose image is
    /// frozen (`exec_state` held for quick reload) is skipped — its
    /// frames must stay exactly where the preserved P2M table says.
    /// No domain is squeezed below `min_resident` pages.
    pub fn reclaim_under_pressure(&mut self, want: u64, min_resident: u64) -> u64 {
        if self.reboot_in_progress() {
            return 0;
        }
        let mut freed = 0;
        for id in self.domu_ids() {
            if freed >= want {
                break;
            }
            let spare = match self.domains.get(&id) {
                Some(dom) if dom.exec_state.is_none() => {
                    dom.p2m.total_pages().saturating_sub(min_resident)
                }
                _ => continue, // frozen image (or gone): I8's fence
            };
            let take = spare.min(want - freed);
            if take > 0 && self.balloon(id, -(take as i64)).is_ok() {
                freed += take;
            }
        }
        if freed > 0 {
            self.stats.add("balloon.reclaimed", freed);
        }
        freed
    }

    /// Pre-warms a domain's page cache with the first `files` files of its
    /// corpus (experiment setup; costs no simulated time, standing in for a
    /// long-running service's history).
    ///
    /// # Panics
    ///
    /// Panics if the domain has no filesystem.
    pub fn warm_cache(&mut self, id: DomainId, files: u32) {
        let dom = self.dom_mut(id);
        // lint:allow(unwrap-panic): documented panicking API, see doc comment
        let fs = dom.fs.as_ref().expect("domain has no filesystem").clone();
        fs.warm(&mut dom.cache, files);
    }

    // ------------------------------------------------------------------
    // Internal: work pipeline
    // ------------------------------------------------------------------

    fn begin_work(
        &mut self,
        sched: &mut Scheduler<HostEvent>,
        id: DomainId,
        tag: WorkTag,
        profile: WorkProfile,
    ) {
        let prev = self.work.insert(id, WorkState { tag, profile });
        debug_assert!(prev.is_none(), "{id} already has {:?} in flight", prev);
        sched.schedule_in(profile.fixed, HostEvent::WorkFixedDone(id, tag));
    }

    fn work_fixed_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId, tag: WorkTag) {
        let Some(state) = self.work.get(&id).copied() else {
            return; // stale event (work aborted)
        };
        if state.tag != tag {
            return; // stale event from a previous op
        }
        let now = sched.now();
        if state.profile.disk_bytes() > 0.0 {
            let kind = if state.profile.disk_read_bytes > 0.0 {
                IoKind::Read
            } else {
                IoKind::Write
            };
            let job = self.disk.submit(now, kind, state.profile.disk_bytes());
            self.disk_jobs.insert(job, DiskPurpose::Work(id));
            self.rearm_disk(sched);
        } else if state.profile.cpu_work > 0.0 {
            let job = self.cpu.submit(now, state.profile.cpu_work);
            self.cpu_jobs.insert(job, id);
            self.rearm_cpu(sched);
        } else {
            self.work_done(sched, id, tag);
        }
    }

    fn work_shared_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId, was_disk: bool) {
        let Some(state) = self.work.get(&id).copied() else {
            return;
        };
        if was_disk && state.profile.cpu_work > 0.0 {
            let job = self.cpu.submit(sched.now(), state.profile.cpu_work);
            self.cpu_jobs.insert(job, id);
            self.rearm_cpu(sched);
        } else {
            self.work_done(sched, id, state.tag);
        }
    }

    fn work_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId, tag: WorkTag) {
        self.work.remove(&id);
        match tag {
            WorkTag::ShutdownOs => self.on_guest_shutdown_done(sched, id),
            WorkTag::BootOs => self.on_guest_boot_done(sched, id),
            WorkTag::SuspendHandler => self.on_suspend_handler_done(sched, id),
            WorkTag::ResumeHandler => self.on_resume_handler_done(sched, id),
            WorkTag::StartService => self.on_service_started(sched, id),
        }
    }

    // ------------------------------------------------------------------
    // Internal: resource wake-ups
    // ------------------------------------------------------------------

    fn rearm_disk(&mut self, sched: &mut Scheduler<HostEvent>) {
        let at = self.disk.next_completion(sched.now());
        self.disk_wake.reschedule(sched, at, || HostEvent::DiskWake);
    }

    fn rearm_cpu(&mut self, sched: &mut Scheduler<HostEvent>) {
        let at = self.cpu.next_completion(sched.now());
        self.cpu_wake.reschedule(sched, at, || HostEvent::CpuWake);
    }

    fn rearm_net(&mut self, sched: &mut Scheduler<HostEvent>) {
        let at = self.net.next_completion(sched.now());
        self.net_wake.reschedule(sched, at, || HostEvent::NetWake);
    }

    fn on_disk_wake(&mut self, sched: &mut Scheduler<HostEvent>) {
        let done = self.disk.take_completed(sched.now());
        for job in done {
            match self.disk_jobs.remove(&job) {
                Some(DiskPurpose::Work(id)) => self.work_shared_done(sched, id, true),
                Some(DiskPurpose::SaveImage(id)) => self.on_save_written(sched, id),
                Some(DiskPurpose::RestoreImage(id)) => self.on_restore_read(sched, id),
                Some(DiskPurpose::RequestMiss(rid)) => self.on_request_disk_done(sched, rid),
                Some(DiskPurpose::FileRead(id)) => self.on_file_read_disk_done(sched, id),
                Some(DiskPurpose::StreamIn(id)) => self.on_stream_in_done(sched, id),
                Some(DiskPurpose::SnapshotDelta(id)) => self.on_snapshot_written(sched, id),
                None => {}
            }
        }
        self.rearm_disk(sched);
    }

    fn on_cpu_wake(&mut self, sched: &mut Scheduler<HostEvent>) {
        let done = self.cpu.take_completed(sched.now());
        for job in done {
            if let Some(id) = self.cpu_jobs.remove(&job) {
                self.work_shared_done(sched, id, false);
            }
        }
        self.rearm_cpu(sched);
    }

    fn on_net_wake(&mut self, sched: &mut Scheduler<HostEvent>) {
        let done = self.net.take_completed(sched.now());
        for job in done {
            if let Some(rid) = self.net_jobs.remove(&job) {
                self.on_request_net_done(sched, rid);
            }
        }
        self.rearm_net(sched);
    }

    // ------------------------------------------------------------------
    // Internal: guest lifecycle steps
    // ------------------------------------------------------------------

    fn begin_guest_shutdown(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let dom = self.dom_mut(id);
        if !dom.kernel.is_running() {
            return;
        }
        // lint:allow(unwrap-panic): running checked immediately above
        dom.kernel.begin_shutdown().expect("running checked");
        let mut profile = linux_guest_shutdown();
        if let Some(svc) = dom.service.as_mut() {
            if svc.is_running() && svc.begin_stop().is_ok() {
                // The clean service stop is part of the shutdown scripts.
                profile.fixed += svc.spec().stop.fixed;
            }
        }
        self.trace
            .emit(sched.now(), Event::GuestShuttingDown(id.into()));
        self.refresh(sched, id);
        self.begin_work(sched, id, WorkTag::ShutdownOs, profile);
    }

    fn on_guest_shutdown_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let dom = self.dom_mut(id);
        if dom.kernel.finish_shutdown().is_err() {
            return; // stale completion: the domain was crashed meanwhile
        }
        if let Some(svc) = dom.service.as_mut() {
            if svc.status() == rh_guest::services::ServiceStatus::Stopping {
                // Stopping was checked immediately above.
                let _ = svc.finish_stop();
            }
        }
        dom.cache.clear();
        self.trace.emit(sched.now(), Event::GuestOff(id.into()));
        // Release its memory.
        let Some(mut dom) = self.domains.remove(&id) else {
            return;
        };
        if let Err(e) = self.vmm.destroy_domain(&mut dom, &mut self.contents) {
            self.errors.push(e);
        }
        self.domains.insert(id, dom);
        if self.single_rejuvs.contains(&id) {
            // Single-domain OS rejuvenation: bring it right back.
            self.sched_reboot(sched, self.t.domain_create, RebootStep::SingleSetup(id));
            return;
        }
        let Some(run) = self.run.as_mut() else {
            return;
        };
        run.pending_stops.remove(&id);
        if !run.pending_stops.is_empty() {
            return;
        }
        let strategy = run.strategy;
        self.phase_end_if_open(sched.now(), Phase::GuestShutdown);
        match strategy {
            RebootStrategy::Warm => self.begin_quick_reload(sched),
            RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental => {
                self.after_saves(sched)
            }
            RebootStrategy::Cold => self.maybe_start_reset(sched),
        }
    }

    fn setup_cold_boot(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let Some(mut dom) = self.domains.remove(&id) else {
            // Unknown domain (stale event): count the setup as done so the
            // reboot still completes.
            self.single_rejuvs.remove(&id);
            if let Some(run) = self.run.as_mut() {
                run.pending_setup.remove(&id);
            }
            self.maybe_finish_reboot(sched);
            return;
        };
        match self.vmm.create_domain(&mut dom, &mut self.contents) {
            Ok(()) => {
                if dom.kernel.begin_boot().is_err() {
                    // The shell is not off (crashed underneath the setup):
                    // count this one as lost rather than panicking.
                    self.errors.push(VmmError::BadDomainState(
                        id,
                        "cold boot from non-off kernel",
                    ));
                    self.domains.insert(id, dom);
                    self.single_rejuvs.remove(&id);
                    if let Some(run) = self.run.as_mut() {
                        run.pending_setup.remove(&id);
                    }
                    self.maybe_finish_reboot(sched);
                    return;
                }
                dom.cache.clear();
                dom.channels = crate::events::EventChannelTable::standard_domu();
                self.domains.insert(id, dom);
                if let Some(run) = self.run.as_mut() {
                    if run.strategy != RebootStrategy::Cold {
                        // A cold boot inside a warm/saved run means the
                        // domain's image was lost (driver domain, dead
                        // guest, or recovery fallback).
                        run.cold_fallbacks.insert(id);
                    }
                }
                self.trace.emit(sched.now(), Event::GuestCreated(id.into()));
                self.begin_work(sched, id, WorkTag::BootOs, linux_guest_boot());
            }
            Err(e) => {
                self.trace.emit(
                    sched.now(),
                    Event::note("vmm", format!("create {id} failed: {e}")),
                );
                self.errors.push(e);
                self.domains.insert(id, dom);
                // Recovery runs retry with exponential backoff before
                // declaring the domain lost: the first attempts can race
                // transient allocator pressure while salvage settles.
                let retrying = self.run.as_ref().map(|r| r.recovery).unwrap_or(false);
                if retrying {
                    let attempts = {
                        let Some(run) = self.run.as_mut() else {
                            return;
                        };
                        let n = run.retries.entry(id).or_insert(0);
                        *n += 1;
                        *n
                    };
                    if attempts <= 3 {
                        let delay = self.t.domain_create * (1u64 << (attempts - 1));
                        self.trace.emit(
                            sched.now(),
                            Event::ColdBootRetry {
                                dom: id.into(),
                                attempt: attempts,
                            },
                        );
                        self.sched_reboot(sched, delay, RebootStep::SingleSetup(id));
                        return;
                    }
                    self.stats.inc("recovery.lost");
                    self.trace
                        .emit(sched.now(), Event::RetriesExhausted(id.into()));
                }
                self.single_rejuvs.remove(&id);
                if let Some(run) = self.run.as_mut() {
                    run.pending_setup.remove(&id);
                }
                self.maybe_finish_reboot(sched);
            }
        }
    }

    fn on_guest_boot_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        // Direct field access (not dom_mut) so aging_clock/trace stay borrowable.
        // lint:allow(unwrap-panic): the work pipeline only queues ops for live domains
        let dom = self.domains.get_mut(&id).expect("domain exists");
        if dom.kernel.finish_boot().is_err() {
            return; // stale completion: the domain was crashed meanwhile
        }
        // A fresh kernel has no aged state; a resume keeps it (Fig. 2).
        if let Some(aging) = dom.aging.as_mut() {
            aging.rejuvenate();
        }
        self.aging_clock.insert(id, sched.now());
        self.trace.emit(sched.now(), Event::GuestBooted(id.into()));
        let start = dom
            .service
            .as_mut()
            .and_then(|svc| svc.begin_start().ok().map(|_| *svc.spec()));
        match start {
            Some(spec) => self.begin_work(sched, id, WorkTag::StartService, spec.start),
            None => self.on_domain_ready(sched, id),
        }
    }

    fn on_service_started(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let dom = self.dom_mut(id);
        if let Some(svc) = dom.service.as_mut() {
            // begin_start preceded this completion; Starting is guaranteed.
            let _ = svc.finish_start();
        }
        self.trace.emit(sched.now(), Event::ServiceUp(id.into()));
        self.on_domain_ready(sched, id);
    }

    fn on_domain_ready(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        self.refresh(sched, id);
        if self.single_rejuvs.remove(&id) {
            return;
        }
        if let Some(run) = self.run.as_mut() {
            run.pending_setup.remove(&id);
        }
        self.maybe_finish_reboot(sched);
    }

    // ------------------------------------------------------------------
    // Internal: suspend/resume (warm) and save/restore (saved)
    // ------------------------------------------------------------------

    fn begin_guest_stops(&mut self, sched: &mut Scheduler<HostEvent>) {
        let ids = self.domu_ids();
        let Some(run) = self.run.as_ref() else {
            return; // no run active: stale call
        };
        let strategy = run.strategy;
        for id in ids {
            let running = self
                .domains
                .get(&id)
                .map(|d| d.kernel.is_running())
                .unwrap_or(false);
            if !running {
                continue;
            }
            self.run_mut().pending_stops.insert(id);
            let is_driver = self
                .domains
                .get(&id)
                .map(|d| d.spec.driver_domain)
                .unwrap_or(false);
            match strategy {
                RebootStrategy::Cold => self.begin_guest_shutdown(sched, id),
                // Driver domains "cannot be suspended" (paper §7): even the
                // warm and disk-image paths must shut them down like the
                // cold path, losing their memory images.
                _ if is_driver => self.begin_guest_shutdown(sched, id),
                _ => {
                    let Some(dom) = self.domains.get_mut(&id) else {
                        continue;
                    };
                    // The suspend request travels over the domain's suspend
                    // event channel (§4.2).
                    if let Some(port) = dom.channels.suspend_port() {
                        let _ = dom.channels.notify(port);
                        let _ = dom.channels.take_pending(port);
                    }
                    // lint:allow(unwrap-panic): running checked at the top of the loop
                    dom.kernel.begin_suspend().expect("running checked");
                    self.stats.inc("guest.suspended");
                    self.trace.emit(sched.now(), Event::Suspending(id.into()));
                    self.refresh(sched, id);
                    let mut profile = suspend_handler();
                    profile.fixed += self.t.suspend_hypercall;
                    self.begin_work(sched, id, WorkTag::SuspendHandler, profile);
                }
            }
        }
        // No running guests at all: proceed straight on.
        let Some(run) = self.run.as_ref() else {
            return;
        };
        if run.pending_stops.is_empty() {
            let strategy = run.strategy;
            match strategy {
                RebootStrategy::Warm => self.begin_quick_reload(sched),
                RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental => {
                    self.after_saves(sched)
                }
                RebootStrategy::Cold => {
                    self.phase_end_if_open(sched.now(), Phase::GuestShutdown);
                    self.maybe_start_reset(sched);
                }
            }
        }
    }

    fn on_suspend_handler_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let strategy = self.run.as_ref().map(|r| r.strategy);
        let Some(mut dom) = self.domains.remove(&id) else {
            return;
        };
        // The suspend handler detaches the device frontends before the
        // hypercall freezes the image (§4.2).
        dom.channels.detach_for_suspend();
        let result = self
            .vmm
            .on_memory_suspend(&mut dom, self.t.exec_state_bytes);
        if let Err(e) = result {
            self.errors.push(e);
            self.domains.insert(id, dom);
            return;
        }
        // on_memory_suspend just succeeded, so the kernel is Suspending and
        // this transition cannot fail.
        let _ = dom.kernel.finish_suspend();
        let digest = self.vmm.domain_digest(&dom, &self.contents);
        self.trace.emit(sched.now(), Event::Frozen(id.into()));
        if let Some(run) = self.run.as_mut() {
            run.digests.insert(id, digest);
            run.digest_stamps
                .insert(id, (self.contents.epoch(), dom.p2m.epoch()));
        }
        match strategy {
            Some(RebootStrategy::Warm) => {
                self.domains.insert(id, dom);
                // The image is frozen: the classic window for a stray write
                // or a VMM failure before the reload begins.
                if self
                    .inject(sched, InjectPoint::SuspendEnd, Some(id))
                    .crashed
                {
                    return;
                }
                let run = self.run_mut();
                run.pending_stops.remove(&id);
                if run.pending_stops.is_empty() {
                    self.begin_quick_reload(sched);
                }
            }
            Some(
                RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental,
            ) => {
                // Capture the logical image and stream it to disk. An
                // incremental save writes only the extents dirtied since
                // the domain's delta chain was last current (plus the
                // exec-state record); no current chain means a full save.
                let image = MemoryImage::capture(&dom.p2m, &self.contents);
                let full_bytes = image.size_bytes();
                let write_bytes = if strategy == Some(RebootStrategy::Incremental) {
                    let dirty = match self.delta_chains.get(&id) {
                        Some(chain) if chain.p2m_epoch() == dom.p2m.epoch() => {
                            dirty_extent_bytes(&dom.p2m, &self.contents, chain.contents_epoch())
                        }
                        _ => full_bytes,
                    };
                    self.stats.add("incremental.save_bytes", dirty);
                    (dirty + self.t.exec_state_bytes) as f64
                } else {
                    full_bytes as f64
                };
                let Some(exec) = dom.exec_state else {
                    self.errors
                        .push(VmmError::BadDomainState(id, "save without exec state"));
                    self.domains.insert(id, dom);
                    return;
                };
                self.saved.insert(
                    id,
                    SavedDomain {
                        image,
                        exec,
                        snapshot: dom.clone(),
                    },
                );
                self.domains.insert(id, dom);
                let job = self.disk.submit(sched.now(), IoKind::Write, write_bytes);
                self.disk_jobs.insert(job, DiskPurpose::SaveImage(id));
                self.rearm_disk(sched);
                self.trace.emit(sched.now(), Event::SaveStarted(id.into()));
            }
            _ => {
                self.domains.insert(id, dom);
            }
        }
    }

    fn on_save_written(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        // The image is on disk; discard the resident copy (keeping the
        // snapshot for restore).
        let Some(mut dom) = self.domains.remove(&id) else {
            return;
        };
        // Update the snapshot to the final frozen state (post-suspend).
        if let Some(s) = self.saved.get_mut(&id) {
            let mut snap = dom.clone();
            snap.p2m.clear();
            s.snapshot = snap;
        }
        if let Err(e) = self.vmm.release_domain_memory(&mut dom, &mut self.contents) {
            self.errors.push(e);
        }
        self.domains.insert(id, dom);
        self.trace.emit(sched.now(), Event::Saved(id.into()));
        let run = self.run_mut();
        run.pending_stops.remove(&id);
        if run.pending_stops.is_empty() {
            self.after_saves(sched);
        }
    }

    fn after_saves(&mut self, sched: &mut Scheduler<HostEvent>) {
        if self.dom0_mut().kernel.begin_shutdown().is_err() {
            return; // stale step from an abandoned run
        }
        self.phase_end(sched.now(), Phase::Save);
        self.phase_begin(sched.now(), Phase::Dom0Shutdown);
        self.sched_reboot(sched, self.t.dom0_shutdown, RebootStep::Dom0ShutdownDone);
    }

    fn begin_quick_reload(&mut self, sched: &mut Scheduler<HostEvent>) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        if !run.dom0_shutdown_done || !run.pending_stops.is_empty() {
            return; // the other precondition will trigger us again
        }
        self.phase_end_if_open(sched.now(), Phase::Suspend);
        self.phase_begin(sched.now(), Phase::QuickReload);
        self.vmm.set_down();
        // Size the frozen set from the P2M (resident pages), not the spec:
        // a domain with an inflated balloon no longer owns the ballooned-out
        // pseudo-physical pages, and they must not be counted (or digested)
        // as part of the frozen image.
        let preserved_gib: f64 = self
            .domains
            .values()
            .filter(|d| !d.id.is_dom0() && d.exec_state.is_some())
            .map(|d| d.resident_gib())
            .sum();
        // Account the preserved metadata exactly (P2M tables at 2 MB/GB +
        // 16 KB exec slots), via the machine layout model.
        let frozen: Vec<(u32, u64)> = self
            .domains
            .values()
            .filter(|d| !d.id.is_dom0() && d.exec_state.is_some())
            .map(|d| (d.id.0, d.resident_pages() * rh_memory::frame::PAGE_SIZE))
            .collect();
        let layout =
            rh_memory::layout::MemoryLayout::plan(64 << 20, &frozen, self.t.exec_state_bytes);
        self.trace.emit(
            sched.now(),
            Event::note(
                "vmm",
                format!(
                    "quick reload ({preserved_gib:.0} GiB frozen; {} KiB of P2M tables + {} KiB exec state preserved)",
                    layout.p2m_bytes() / 1024,
                    layout.exec_state_bytes() / 1024
                ),
            ),
        );
        // Free memory (from the allocator's live view) gets scrubbed by
        // the new instance's init; frozen memory is skipped.
        let free_gib = self.vmm.ram().free_frames() as f64 * rh_memory::frame::PAGE_SIZE as f64
            / (1u64 << 30) as f64;
        self.sched_reboot(
            sched,
            self.t.quick_reload(preserved_gib, free_gib),
            RebootStep::QuickReloadDone,
        );
    }

    fn on_quick_reload_done(&mut self, sched: &mut Scheduler<HostEvent>) {
        // The new instance is coming up: a fault here models the reload
        // itself failing (or frozen state being hit by a stray write while
        // the allocator rebuilds around it).
        if self.inject(sched, InjectPoint::QuickReload, None).crashed {
            return;
        }
        let suspended: Vec<DomainId> = self
            .domains
            .values()
            .filter(|d| !d.id.is_dom0() && d.exec_state.is_some())
            .map(|d| d.id)
            .collect();
        let result = self.vmm.quick_reload(&mut self.domains, &suspended);
        if let Err(e) = result {
            let recovery = self.run.as_ref().map(|r| r.recovery).unwrap_or(false);
            if self.hook.is_some() || recovery {
                // Under fault injection a failed reload (corrupted staged
                // image, violated preservation) is a VMM failure: abandon
                // the run and leave the VMM down for the recovery engine.
                self.trace.emit(
                    sched.now(),
                    Event::note("vmm", format!("quick reload failed: {e}")),
                );
                self.errors.push(e);
                self.epoch = self.epoch.wrapping_add(1);
                self.run = None;
                self.last_fault_at = Some(sched.now());
                return;
            }
            self.errors.push(e);
        }
        self.phase_end(sched.now(), Phase::QuickReload);
        self.trace.emit(
            sched.now(),
            Event::VmmUp {
                generation: self.vmm.generation(),
            },
        );
        let inj = self.inject(sched, InjectPoint::Dom0Boot, None);
        if inj.crashed {
            return;
        }
        if self.dom0_mut().kernel.begin_boot().is_err() {
            return; // stale step from an abandoned run
        }
        self.phase_begin(sched.now(), Phase::Dom0Boot);
        self.sched_reboot(
            sched,
            self.t.dom0_boot + inj.dom0_extra,
            RebootStep::Dom0BootDone,
        );
    }

    fn maybe_start_reset(&mut self, sched: &mut Scheduler<HostEvent>) {
        let Some(run) = self.run.as_mut() else { return };
        if run.strategy == RebootStrategy::Warm {
            return;
        }
        if !run.dom0_shutdown_done || !run.pending_stops.is_empty() || run.reset_started {
            return;
        }
        run.reset_started = true;
        self.phase_begin(sched.now(), Phase::HardwareReset);
        self.vmm.set_down();
        self.trace.emit(sched.now(), Event::HardwareReset);
        let reset = self.t.hw_reset(self.cfg.ram_gib());
        self.sched_reboot(sched, reset, RebootStep::HwResetDone);
    }

    fn on_hw_reset_done(&mut self, sched: &mut Scheduler<HostEvent>) {
        self.vmm
            .hardware_reset(&mut self.domains, &mut self.contents);
        self.phase_end(sched.now(), Phase::HardwareReset);
        self.phase_begin(sched.now(), Phase::VmmBoot);
        self.trace.emit(
            sched.now(),
            Event::VmmBooting {
                generation: self.vmm.generation(),
            },
        );
        self.sched_reboot(sched, self.t.vmm_boot_hw, RebootStep::VmmBootDone);
    }

    fn on_vmm_boot_done(&mut self, sched: &mut Scheduler<HostEvent>) {
        self.phase_end(sched.now(), Phase::VmmBoot);
        let inj = self.inject(sched, InjectPoint::Dom0Boot, None);
        if inj.crashed {
            return;
        }
        if self.dom0_mut().kernel.begin_boot().is_err() {
            return; // stale step from an abandoned run
        }
        self.phase_begin(sched.now(), Phase::Dom0Boot);
        self.sched_reboot(
            sched,
            self.t.dom0_boot + inj.dom0_extra,
            RebootStep::Dom0BootDone,
        );
    }

    fn on_dom0_boot_done(&mut self, sched: &mut Scheduler<HostEvent>) {
        // Direct field access (not dom0_mut/run_mut) so domains stays borrowable.
        // lint:allow(unwrap-panic): dom0 is inserted in new() and never removed
        let dom0 = self.domains.get_mut(&DomainId::DOM0).expect("dom0 exists");
        if dom0.kernel.finish_boot().is_err() {
            return; // stale step from an abandoned run
        }
        self.phase_end(sched.now(), Phase::Dom0Boot);
        self.trace.emit(sched.now(), Event::Dom0Up);
        // lint:allow(unwrap-panic): run-phase handlers only fire while a run is active
        let run = self.run.as_mut().expect("run active");
        run.setup_queue = self
            .domains
            .keys()
            .copied()
            .filter(|d| !d.is_dom0())
            .collect();
        run.pending_setup = run.setup_queue.iter().copied().collect();
        let setup_empty = run.setup_queue.is_empty();
        let phase = match run.strategy {
            RebootStrategy::Warm => Phase::Resume,
            RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental => {
                Phase::Restore
            }
            RebootStrategy::Cold => Phase::GuestBoot,
        };
        self.phase_begin(sched.now(), phase);
        if setup_empty {
            self.maybe_finish_reboot(sched);
        } else {
            self.sched_reboot(sched, self.t.domain_create, RebootStep::NextDomainSetup);
        }
    }

    fn on_next_domain_setup(&mut self, sched: &mut Scheduler<HostEvent>) {
        let Some(run) = self.run.as_mut() else { return };
        let Some(id) = run.setup_queue.pop_front() else {
            return;
        };
        let strategy = run.strategy;
        // Warm resumes and cold creates are dom0-serialized but their
        // in-guest work overlaps; disk-image restores are fully serial —
        // Xen's `xm restore` streams one image back at a time, so the next
        // restore starts only after this one's disk read completes (for a
        // streamed restore, the *foreground* working-set read).
        if !run.setup_queue.is_empty() && !Self::restores_from_disk(strategy) {
            self.sched_reboot(sched, self.t.domain_create, RebootStep::NextDomainSetup);
        }
        let is_driver = self
            .domains
            .get(&id)
            .map(|d| d.spec.driver_domain)
            .unwrap_or(false);
        match strategy {
            RebootStrategy::Cold => self.setup_cold_boot(sched, id),
            _ if is_driver => {
                // The driver domain lost its image; rebuild it cold.
                self.setup_cold_boot(sched, id)
            }
            RebootStrategy::Warm => {
                // A domain resumes only if it still has a frozen image and
                // a kernel actually in the suspended state; anything else
                // (dead before the reboot, exec state lost to a fault) is
                // brought back cold.
                let resumable = self
                    .domains
                    .get_mut(&id)
                    .map(|d| d.exec_state.is_some() && d.kernel.begin_resume().is_ok())
                    .unwrap_or(false);
                if resumable {
                    self.trace.emit(sched.now(), Event::Resuming(id.into()));
                    self.begin_work(sched, id, WorkTag::ResumeHandler, resume_handler());
                } else {
                    self.setup_cold_boot(sched, id);
                }
            }
            RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental => {
                let Some(saved) = self.saved.get(&id) else {
                    // No image on disk (the guest was dead before the
                    // reboot): bring it back cold and keep the serial
                    // restore chain moving.
                    self.setup_cold_boot(sched, id);
                    let more = self
                        .run
                        .as_ref()
                        .map(|r| !r.setup_queue.is_empty())
                        .unwrap_or(false);
                    if more {
                        self.sched_reboot(sched, self.t.domain_create, RebootStep::NextDomainSetup);
                    }
                    return;
                };
                // Recreate the domain shell from its snapshot and stream
                // the image back from disk. A streamed restore reads only
                // the working set before resume; the residual pages are
                // kicked off as a background stream once this read lands.
                let mut dom = saved.snapshot.clone();
                let full = saved.image.size_bytes() as f64;
                let bytes = if strategy == RebootStrategy::Streamed {
                    (full * self.cfg.stream_working_set).max(1.0)
                } else {
                    full
                };
                match self.vmm.create_domain_empty(&mut dom, saved.image.pages()) {
                    Ok(()) => {
                        self.domains.insert(id, dom);
                        let job = self.disk.submit(sched.now(), IoKind::Read, bytes);
                        self.disk_jobs.insert(job, DiskPurpose::RestoreImage(id));
                        self.rearm_disk(sched);
                        self.trace
                            .emit(sched.now(), Event::RestoreStarted(id.into()));
                    }
                    Err(e) => {
                        self.errors.push(e);
                        self.domains.insert(id, dom);
                        let run = self.run_mut();
                        run.pending_setup.remove(&id);
                        let more = !run.setup_queue.is_empty();
                        if more {
                            self.sched_reboot(
                                sched,
                                self.t.domain_create,
                                RebootStep::NextDomainSetup,
                            );
                        }
                        self.maybe_finish_reboot(sched);
                    }
                }
            }
        }
    }

    fn on_restore_read(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let Some(saved) = self.saved.remove(&id) else {
            return;
        };
        let total_bytes = saved.image.size_bytes();
        // Direct field access (not dom_mut) so contents stays borrowable.
        let Some(dom) = self.domains.get_mut(&id) else {
            return;
        };
        let restored = match saved.image.restore(&dom.p2m, &mut self.contents) {
            Ok(()) => {
                dom.exec_state = Some(saved.exec);
                // The snapshot was captured frozen (Suspended).
                let _ = dom.kernel.begin_resume();
                self.trace.emit(sched.now(), Event::Restored(id.into()));
                self.begin_work(sched, id, WorkTag::ResumeHandler, resume_handler());
                true
            }
            Err(e) => {
                // The image no longer matches the recreated shell's
                // geometry; surface the error instead of resuming garbage.
                self.errors
                    .push(VmmError::BadDomainState(id, "restore geometry mismatch"));
                self.trace.emit(
                    sched.now(),
                    Event::note("vmm", format!("{id} image restore failed: {e}")),
                );
                if let Some(run) = self.run.as_mut() {
                    run.pending_setup.remove(&id);
                }
                false
            }
        };
        // Post-copy: the working set is resident and the guest resumes
        // now; the residual image streams in behind it. The *logical*
        // contents were restored in full above — the stream models disk
        // occupancy and the fault-in window, never a correctness gap (the
        // postcopy protocol checker guards the never-serve-unvalidated
        // invariant at the page level).
        if restored && self.run.as_ref().map(|r| r.strategy) == Some(RebootStrategy::Streamed) {
            let residual = total_bytes as f64 * (1.0 - self.cfg.stream_working_set);
            if residual > 0.0 {
                let was_streaming = !self.streaming.is_empty();
                self.streaming.insert(id);
                let job = self.disk.submit(sched.now(), IoKind::Read, residual);
                self.disk_jobs.insert(job, DiskPurpose::StreamIn(id));
                self.rearm_disk(sched);
                self.stats.inc("stream.started");
                self.trace
                    .emit(sched.now(), Event::StreamStarted(id.into()));
                if !was_streaming {
                    self.phase_begin(sched.now(), Phase::StreamIn);
                }
            }
        }
        // Serial restore: kick the next domain's restore now that this
        // image('s working set) is fully read back.
        let more = self
            .run
            .as_ref()
            .map(|r| !r.setup_queue.is_empty())
            .unwrap_or(false);
        if more {
            self.sched_reboot(sched, self.t.domain_create, RebootStep::NextDomainSetup);
        }
        if !restored {
            self.maybe_finish_reboot(sched);
        }
    }

    /// A streamed domain's residual image finished faulting in: it is
    /// fully resident again and serves at full speed.
    fn on_stream_in_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        if !self.streaming.remove(&id) {
            return; // stale completion (crash cleared the stream)
        }
        self.stats.inc("stream.completed");
        self.trace
            .emit(sched.now(), Event::StreamCompleted(id.into()));
        if self.streaming.is_empty() {
            self.phase_end_if_open(sched.now(), Phase::StreamIn);
        }
    }

    /// True for the strategies whose restore path reads images back from
    /// disk one at a time (saved and both refinements).
    fn restores_from_disk(strategy: RebootStrategy) -> bool {
        matches!(
            strategy,
            RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental
        )
    }

    /// One background snapshot round: for every running domain U, write
    /// the extents dirtied since its chain was last current (a full base
    /// when no current chain exists). Quiesced while a reboot is in
    /// flight; a domain whose previous snapshot write is still on the
    /// disk is skipped this round.
    fn on_snapshot_tick(&mut self, sched: &mut Scheduler<HostEvent>) {
        let Some(interval) = self.cfg.snapshot_interval else {
            return; // ticker disarmed
        };
        sched.schedule_in(interval, HostEvent::SnapshotTick);
        if self.run.is_some() || !self.vmm.is_running() {
            return;
        }
        for id in self.domu_ids() {
            if self.pending_snapshots.contains_key(&id) {
                continue;
            }
            let Some(dom) = self.domains.get(&id) else {
                continue;
            };
            if !dom.kernel.is_running() {
                continue;
            }
            let dirty =
                match self.delta_chains.get(&id) {
                    // A restore rebuilds the P2M (new epoch), so chains go
                    // conservatively stale across reboots: full re-base.
                    Some(chain) if chain.p2m_epoch() == dom.p2m.epoch() => Some(
                        dirty_extent_bytes(&dom.p2m, &self.contents, chain.contents_epoch()),
                    ),
                    _ => None,
                };
            let contents_epoch = self.contents.epoch();
            let p2m_epoch = dom.p2m.epoch();
            if dirty == Some(0) {
                // Provably clean since the chain's epoch: advance the
                // chain without touching the disk.
                if let Some(chain) = self.delta_chains.get_mut(&id) {
                    chain.mark_current(contents_epoch, p2m_epoch);
                }
                self.stats.inc("snapshot.clean_tick");
                continue;
            }
            let image = MemoryImage::capture(&dom.p2m, &self.contents);
            let full = dirty.is_none();
            let bytes = dirty.unwrap_or_else(|| image.size_bytes());
            self.pending_snapshots.insert(
                id,
                PendingSnapshot {
                    image,
                    bytes,
                    contents_epoch,
                    p2m_epoch,
                    full,
                },
            );
            let job = self.disk.submit(sched.now(), IoKind::Write, bytes as f64);
            self.disk_jobs.insert(job, DiskPurpose::SnapshotDelta(id));
        }
        self.rearm_disk(sched);
    }

    /// A background snapshot's disk write landed: fold it into the
    /// domain's chain.
    fn on_snapshot_written(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let Some(p) = self.pending_snapshots.remove(&id) else {
            return; // stale completion (crash cleared the snapshot)
        };
        match self.delta_chains.get_mut(&id) {
            Some(chain) if !p.full => {
                chain.record_delta(p.image, p.bytes, p.contents_epoch, p.p2m_epoch)
            }
            _ => {
                self.delta_chains
                    .insert(id, DeltaChain::new(p.image, p.contents_epoch, p.p2m_epoch));
            }
        }
        self.stats.inc("snapshot.delta");
        self.stats.add("snapshot.bytes", p.bytes);
        self.trace.emit(
            sched.now(),
            Event::DeltaSnapshot {
                dom: id.into(),
                bytes: p.bytes,
            },
        );
    }

    fn on_resume_handler_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        // A cached file read completes through the same event; check first.
        if self.file_reads.contains_key(&id) && !self.work.contains_key(&id) {
            self.finish_file_read(sched, id);
            return;
        }
        let inj = self.inject(sched, InjectPoint::ResumeStart, Some(id));
        if inj.crashed {
            return;
        }
        let Some(mut dom) = self.domains.remove(&id) else {
            return;
        };
        let result = if inj.fail_resume {
            Err(VmmError::BadDomainState(id, "resume failed (injected)"))
        } else {
            self.vmm.on_memory_resume(&mut dom).map(|_exec| ())
        };
        let failed = result.is_err();
        match result {
            Ok(()) => {
                // on_memory_resume only succeeds from Resuming; this
                // transition cannot fail.
                let _ = dom.kernel.finish_resume();
                // Re-establish the communication channels to the VMM and
                // re-attach the detached devices (§4.2).
                dom.channels.reestablish_after_resume();
                self.stats.inc("guest.resumed");
                self.trace.emit(sched.now(), Event::Resumed(id.into()));
            }
            Err(e) => {
                self.errors.push(e);
                dom.kernel.crash();
            }
        }
        self.domains.insert(id, dom);
        // Verify preservation: digest after resume must equal the digest
        // frozen at suspend.
        let expected = self.run.as_ref().and_then(|r| r.digests.get(&id)).copied();
        let stamp = self
            .run
            .as_ref()
            .and_then(|r| r.digest_stamps.get(&id))
            .copied();
        // Digest early-out: the digest is a pure function of the P2M table
        // and the frame contents under it. If neither moved since the
        // freeze — the P2M epoch matches and the contents dirty-window
        // shows no write overlapping this domain's frames — the digest is
        // equal by construction, so skip the O(frames) rehash. Any doubt
        // (window overflow, missing stamp) falls through to the full
        // recompute: this is an optimization, never a trust extension.
        let actual = match (expected, stamp, self.domains.get(&id)) {
            (Some(frozen), Some((ce, pe)), Some(dom))
                if dom.p2m.epoch() == pe
                    && self.contents.unchanged_since(ce, &dom.p2m.machine_ranges()) =>
            {
                self.stats.inc("digest.early_out");
                Some(frozen)
            }
            _ => {
                self.stats.inc("digest.full_rehash");
                self.domain_digest(id)
            }
        };
        let corrupted = matches!((expected, actual), (Some(e), Some(a)) if e != a);
        let recovery = self.run.as_ref().map(|r| r.recovery).unwrap_or(false);
        if recovery && (failed || corrupted) {
            // Recovery invariant: a domain is never handed back corrupted.
            // Tear it down and rebuild from scratch instead.
            self.stats.inc("recovery.cold_fallback");
            self.trace
                .emit(sched.now(), Event::ValidationFailed(id.into()));
            if let Some(mut dom) = self.domains.remove(&id) {
                if let Err(e) = self.vmm.destroy_domain(&mut dom, &mut self.contents) {
                    self.errors.push(e);
                }
                dom.kernel.destroy();
                // The process dies with its domain; the cold boot starts a
                // fresh one (and a fresh generation — sessions are lost).
                if let Some(svc) = dom.service.as_mut() {
                    svc.kill();
                }
                dom.cache.clear();
                self.domains.insert(id, dom);
            }
            if let Some(run) = self.run.as_mut() {
                run.digests.remove(&id);
                run.digest_stamps.remove(&id);
                run.cold_fallbacks.insert(id);
                // pending_setup keeps the id: the cold boot completes it.
            }
            self.sched_reboot(sched, self.t.domain_create, RebootStep::SingleSetup(id));
            self.refresh(sched, id);
            return;
        }
        if corrupted {
            self.trace.emit(sched.now(), Event::Corrupted(id.into()));
        }
        if let Some(run) = self.run.as_mut() {
            if corrupted {
                run.digests.insert(id, u64::MAX); // flag for the report
            } else {
                run.digests.remove(&id);
            }
            run.digest_stamps.remove(&id);
            run.pending_setup.remove(&id);
        }
        self.refresh(sched, id);
        self.maybe_finish_reboot(sched);
    }

    fn on_dom0_shutdown_done(&mut self, sched: &mut Scheduler<HostEvent>) {
        let dom0 = self.dom0_mut();
        if dom0.kernel.finish_shutdown().is_err() {
            return; // stale step from an abandoned run
        }
        self.phase_end(sched.now(), Phase::Dom0Shutdown);
        self.trace.emit(sched.now(), Event::Dom0Down);
        let run = self.run_mut();
        run.dom0_shutdown_done = true;
        match run.strategy {
            RebootStrategy::Warm => {
                // RootHammer ordering: the VMM itself now suspends the
                // guests (unless the ablation already did).
                let any_running = self
                    .domains
                    .values()
                    .any(|d| !d.id.is_dom0() && d.kernel.is_running());
                if any_running {
                    self.phase_begin(sched.now(), Phase::Suspend);
                    self.begin_guest_stops(sched);
                } else {
                    self.begin_quick_reload(sched);
                }
            }
            RebootStrategy::Saved
            | RebootStrategy::Streamed
            | RebootStrategy::Incremental
            | RebootStrategy::Cold => self.maybe_start_reset(sched),
        }
    }

    fn maybe_finish_reboot(&mut self, sched: &mut Scheduler<HostEvent>) {
        let Some(run) = self.run.take() else { return };
        if !run.pending_setup.is_empty() || !run.setup_queue.is_empty() {
            self.run = Some(run);
            return;
        }
        let phase = match run.strategy {
            RebootStrategy::Warm => Phase::Resume,
            RebootStrategy::Saved | RebootStrategy::Streamed | RebootStrategy::Incremental => {
                Phase::Restore
            }
            RebootStrategy::Cold => Phase::GuestBoot,
        };
        self.phase_end_if_open(sched.now(), phase);
        // Power-on flows through here too and opens no "reboot" span.
        self.phase_end_if_open(sched.now(), Phase::Reboot);
        let mut downtime = BTreeMap::new();
        for (id, m) in &self.meters {
            if let Some(outage) = m.outages().iter().rev().find(|o| o.end >= run.commanded_at) {
                downtime.insert(*id, outage.duration());
            }
        }
        let corrupted: Vec<DomainId> = run
            .digests
            .iter()
            .filter(|(_, &d)| d == u64::MAX)
            .map(|(&id, _)| id)
            .collect();
        self.trace
            .emit(sched.now(), Event::RebootComplete(run.strategy.into()));
        self.stats
            .inc(&format!("reboot.completed.{}", run.strategy));
        self.stats.record(
            &format!("reboot.duration.{}", run.strategy),
            sched.now() - run.commanded_at,
        );
        self.reports.push(RebootReport {
            strategy: run.strategy,
            commanded_at: run.commanded_at,
            completed_at: sched.now(),
            downtime,
            corrupted,
            cold_booted: run.cold_fallbacks.iter().copied().collect(),
        });
    }

    // ------------------------------------------------------------------
    // Internal: httperf requests and file reads
    // ------------------------------------------------------------------

    fn on_httperf_kick(&mut self, sched: &mut Scheduler<HostEvent>) {
        let now = sched.now();
        let Some((target, _)) = self.httperf.as_ref().map(|(d, _)| (*d, ())) else {
            return;
        };
        if !self.observable_up(target) {
            return;
        }
        loop {
            let Some((_, client)) = self.httperf.as_mut() else {
                return;
            };
            let Some(file) = client.next_request(now) else {
                break;
            };
            let rid = self.next_req;
            self.next_req += 1;
            let os_slow = self.aging_slowdown(target, now);
            let Some(dom) = self.domains.get_mut(&target) else {
                break;
            };
            let Some(fs) = dom.fs.as_ref().cloned() else {
                break;
            };
            let plan = fs.plan_read(&mut dom.cache, file);
            let bytes = plan.total_bytes();
            self.requests.insert(
                rid,
                Request {
                    dom: target,
                    bytes,
                    issued: now,
                },
            );
            // While the domain's residual image is still streaming in, the
            // non-local fraction of every request faults its pages in
            // through the disk first (post-copy degradation, Fig. 8).
            let fault_bytes = if self.streaming.contains(&target) {
                bytes as f64 * (1.0 - self.cfg.stream_locality)
            } else {
                0.0
            };
            if fault_bytes > 0.0 {
                self.stats.add("stream.fault_bytes", fault_bytes as u64);
            }
            if plan.miss_bytes > 0 || fault_bytes > 0.0 {
                if plan.miss_bytes > 0 {
                    fs.commit_read(&mut dom.cache, file);
                    self.account_read(target, plan.miss_bytes as f64);
                }
                let slow = self.vmm.xenstored().io_slowdown();
                let work = (plan.miss_bytes as f64 / self.t.file_read_efficiency + fault_bytes)
                    * slow
                    * os_slow;
                let job = self.disk.submit(now, IoKind::Read, work);
                self.disk_jobs.insert(job, DiskPurpose::RequestMiss(rid));
            } else {
                let job = self.net.submit(now, bytes as f64 * os_slow);
                self.net_jobs.insert(job, rid);
            }
        }
        self.rearm_disk(sched);
        self.rearm_net(sched);
    }

    fn on_request_disk_done(&mut self, sched: &mut Scheduler<HostEvent>, rid: u64) {
        let Some(req) = self.requests.get(&rid).copied() else {
            return;
        };
        let job = self.net.submit(sched.now(), req.bytes as f64);
        self.net_jobs.insert(job, rid);
        self.rearm_net(sched);
    }

    fn on_request_net_done(&mut self, sched: &mut Scheduler<HostEvent>, rid: u64) {
        let now = sched.now();
        let overhead = self.t.request_overhead;
        if let Some(req) = self.requests.remove(&rid) {
            self.latencies.record(now + overhead - req.issued);
            if let Some((_, client)) = self.httperf.as_mut() {
                client.complete(now + overhead);
            }
            sched.schedule_in(overhead, HostEvent::HttperfKick);
        }
    }

    fn abort_requests_for(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let now = sched.now();
        let stale: Vec<u64> = self
            .requests
            .iter()
            .filter(|(_, r)| r.dom == id)
            .map(|(&rid, _)| rid)
            .collect();
        if stale.is_empty() {
            return;
        }
        let disk_jobs: Vec<JobId> = self
            .disk_jobs
            .iter()
            .filter(|(_, p)| matches!(p, DiskPurpose::RequestMiss(rid) if stale.contains(rid)))
            .map(|(&j, _)| j)
            .collect();
        for j in disk_jobs {
            self.disk.cancel(now, j);
            self.disk_jobs.remove(&j);
        }
        let net_jobs: Vec<JobId> = self
            .net_jobs
            .iter()
            .filter(|(_, rid)| stale.contains(rid))
            .map(|(&j, _)| j)
            .collect();
        for j in net_jobs {
            self.net.cancel(now, j);
            self.net_jobs.remove(&j);
        }
        for rid in stale {
            self.requests.remove(&rid);
            if let Some((_, client)) = self.httperf.as_mut() {
                client.abort();
            }
        }
        self.rearm_disk(sched);
        self.rearm_net(sched);
    }

    /// The disk stage of a faulting/missing file read finished; pay the
    /// remaining memory-copy tail (if any) before reporting the result.
    fn on_file_read_disk_done(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let Some(entry) = self.file_reads.get_mut(&id) else {
            return;
        };
        let tail = std::mem::replace(&mut entry.2, SimDuration::ZERO);
        if tail == SimDuration::ZERO {
            self.finish_file_read(sched, id);
        } else {
            sched.schedule_in(tail, HostEvent::WorkFixedDone(id, WorkTag::ResumeHandler));
        }
    }

    fn finish_file_read(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        let Some((start, bytes, _)) = self.file_reads.remove(&id) else {
            return;
        };
        self.file_read_results.push(FileReadResult {
            dom: id,
            start,
            end: sched.now(),
            bytes,
        });
    }

    fn on_probe_tick(&mut self, sched: &mut Scheduler<HostEvent>) {
        let now = sched.now();
        let ids: Vec<DomainId> = self.probes.keys().copied().collect();
        for id in ids {
            let up = self.observable_up(id);
            if let Some(log) = self.probes.get_mut(&id) {
                log.record(now, up);
            }
        }
        sched.schedule_in(self.t.probe_interval, HostEvent::ProbeTick);
    }

    fn on_single_setup(&mut self, sched: &mut Scheduler<HostEvent>, id: DomainId) {
        self.setup_cold_boot(sched, id);
    }
}

impl World for Host {
    type Event = HostEvent;

    fn handle(&mut self, sched: &mut Scheduler<HostEvent>, event: HostEvent) {
        match event {
            HostEvent::DiskWake => self.on_disk_wake(sched),
            HostEvent::CpuWake => self.on_cpu_wake(sched),
            HostEvent::NetWake => self.on_net_wake(sched),
            HostEvent::WorkFixedDone(id, tag) => {
                // Cached file reads complete through a ResumeHandler-tagged
                // timer without a work-table entry; route them first.
                if tag == WorkTag::ResumeHandler
                    && self.file_reads.contains_key(&id)
                    && !self.work.contains_key(&id)
                {
                    self.finish_file_read(sched, id);
                } else {
                    self.work_fixed_done(sched, id, tag);
                }
            }
            HostEvent::Reboot(step, epoch) => {
                if epoch != self.epoch {
                    return; // queued by a run a crash has since abandoned
                }
                match step {
                    RebootStep::GuestsStop => {
                        if self.run.as_ref().map(|r| r.strategy) == Some(RebootStrategy::Cold) {
                            self.phase_begin(sched.now(), Phase::GuestShutdown);
                        } else {
                            self.phase_begin(sched.now(), Phase::Suspend);
                        }
                        self.begin_guest_stops(sched);
                    }
                    RebootStep::Dom0ShutdownDone => self.on_dom0_shutdown_done(sched),
                    RebootStep::QuickReloadDone => self.on_quick_reload_done(sched),
                    RebootStep::HwResetDone => self.on_hw_reset_done(sched),
                    RebootStep::VmmBootDone => self.on_vmm_boot_done(sched),
                    RebootStep::Dom0BootDone => self.on_dom0_boot_done(sched),
                    RebootStep::NextDomainSetup => self.on_next_domain_setup(sched),
                    RebootStep::SingleSetup(id) => self.on_single_setup(sched, id),
                }
            }
            HostEvent::HttperfKick => self.on_httperf_kick(sched),
            HostEvent::ProbeTick => self.on_probe_tick(sched),
            HostEvent::DirtyTick(id) => self.on_dirty_tick(sched, id),
            HostEvent::SnapshotTick => self.on_snapshot_tick(sched),
        }
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Host(gen {}, {} domUs, vmm {:?})",
            self.vmm.generation(),
            self.domains.len() - 1,
            self.vmm.state()
        )
    }
}
