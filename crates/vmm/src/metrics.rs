//! Reboot phase metrics — the data behind Fig. 7.
//!
//! Figure 7 superimposes "the time needed for each operation during the
//! reboot" onto the throughput trace. [`RebootMetrics`] records named phase
//! spans (dom0 shutdown, suspend, quick reload, hardware reset, dom0 boot,
//! resume, guest boot, ...) and renders them as a timeline.

use std::fmt;

use rh_sim::time::{SimDuration, SimTime};

/// One named phase of a reboot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (e.g. `"quick reload"`).
    pub name: String,
    /// Phase start.
    pub start: SimTime,
    /// Phase end; `None` while still open.
    pub end: Option<SimTime>,
}

impl PhaseSpan {
    /// Duration of a closed phase.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e - self.start)
    }
}

/// Accumulates phase spans for one reboot.
///
/// # Examples
///
/// ```
/// use rh_sim::time::SimTime;
/// use rh_vmm::metrics::RebootMetrics;
///
/// let mut m = RebootMetrics::new();
/// m.begin(SimTime::from_secs(20), "dom0 shutdown");
/// m.end(SimTime::from_secs(34), "dom0 shutdown");
/// assert_eq!(m.duration_of("dom0 shutdown").unwrap().as_secs_f64(), 14.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RebootMetrics {
    spans: Vec<PhaseSpan>,
}

impl RebootMetrics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RebootMetrics::default()
    }

    /// Opens a phase. Phases may overlap; re-opening a name creates a new
    /// span.
    pub fn begin(&mut self, at: SimTime, name: impl Into<String>) {
        self.spans.push(PhaseSpan {
            name: name.into(),
            start: at,
            end: None,
        });
    }

    /// Closes the most recent open span with this name.
    ///
    /// # Panics
    ///
    /// Panics if no open span with `name` exists — that is a sequencing bug
    /// in the reboot driver.
    pub fn end(&mut self, at: SimTime, name: &str) {
        let span = self
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.name == name && s.end.is_none())
            // lint:allow(unwrap-panic): documented panicking variant; end_if_open is the fallible form
            .unwrap_or_else(|| panic!("no open phase named {name:?}"));
        span.end = Some(at);
    }

    /// Closes the most recent open span with this name, if one exists.
    /// Returns `true` if a span was closed.
    pub fn end_if_open(&mut self, at: SimTime, name: &str) -> bool {
        match self
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.name == name && s.end.is_none())
        {
            Some(span) => {
                span.end = Some(at);
                true
            }
            None => false,
        }
    }

    /// All spans, in opening order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Duration of the most recent closed span with this name.
    pub fn duration_of(&self, name: &str) -> Option<SimDuration> {
        self.spans
            .iter()
            .rev()
            .find(|s| s.name == name && s.end.is_some())
            .and_then(|s| s.duration())
    }

    /// Start time of the most recent span with this name.
    pub fn start_of(&self, name: &str) -> Option<SimTime> {
        self.spans
            .iter()
            .rev()
            .find(|s| s.name == name)
            .map(|s| s.start)
    }

    /// True if any span is still open.
    pub fn has_open_spans(&self) -> bool {
        self.spans.iter().any(|s| s.end.is_none())
    }

    /// Discards all spans.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Renders the timeline, one line per span.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            match s.end {
                Some(e) => out.push_str(&format!(
                    "{:<18} {:>9} .. {:>9}  ({})\n",
                    s.name,
                    s.start.to_string(),
                    e.to_string(),
                    (e - s.start)
                )),
                None => out.push_str(&format!(
                    "{:<18} {:>9} .. (open)\n",
                    s.name,
                    s.start.to_string()
                )),
            }
        }
        out
    }
}

impl fmt::Display for RebootMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn begin_end_and_duration() {
        let mut m = RebootMetrics::new();
        m.begin(t(10), "suspend");
        m.end(t(14), "suspend");
        assert_eq!(m.duration_of("suspend"), Some(SimDuration::from_secs(4)));
        assert_eq!(m.start_of("suspend"), Some(t(10)));
        assert!(!m.has_open_spans());
    }

    #[test]
    fn overlapping_phases_allowed() {
        let mut m = RebootMetrics::new();
        m.begin(t(0), "reboot");
        m.begin(t(1), "suspend");
        m.end(t(2), "suspend");
        m.end(t(5), "reboot");
        assert_eq!(m.spans().len(), 2);
        assert_eq!(m.duration_of("reboot"), Some(SimDuration::from_secs(5)));
    }

    #[test]
    fn repeated_phase_names_take_latest() {
        let mut m = RebootMetrics::new();
        m.begin(t(0), "boot");
        m.end(t(1), "boot");
        m.begin(t(10), "boot");
        m.end(t(13), "boot");
        assert_eq!(m.duration_of("boot"), Some(SimDuration::from_secs(3)));
    }

    #[test]
    #[should_panic(expected = "no open phase")]
    fn ending_unopened_phase_panics() {
        let mut m = RebootMetrics::new();
        m.end(t(0), "ghost");
    }

    #[test]
    fn render_lists_every_span() {
        let mut m = RebootMetrics::new();
        m.begin(t(0), "hardware reset");
        m.end(t(47), "hardware reset");
        m.begin(t(47), "vmm boot");
        let r = m.render();
        assert!(r.contains("hardware reset"));
        assert!(r.contains("(open)"));
        assert_eq!(r.lines().count(), 2);
        assert_eq!(m.to_string(), r);
    }

    #[test]
    fn clear_empties() {
        let mut m = RebootMetrics::new();
        m.begin(t(0), "x");
        m.clear();
        assert!(m.spans().is_empty());
    }
}
