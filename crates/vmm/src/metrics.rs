//! Reboot phase metrics — the data behind Fig. 7.
//!
//! Figure 7 superimposes "the time needed for each operation during the
//! reboot" onto the throughput trace. The recorder itself now lives in
//! `rh-obs` as the typed [`Timeline`](rh_obs::Timeline): spans are keyed
//! by the closed [`Phase`] set instead of free-form
//! strings, so producers (the host driver) and consumers (the figure
//! harnesses) cannot drift apart. This module re-exports it under the
//! historical `RebootMetrics` name; rendering is byte-identical to the
//! old string-keyed recorder.

pub use rh_obs::{Phase, PhaseSpan, Timeline as RebootMetrics};
