//! Host configuration.
//!
//! [`HostConfig`] describes one simulated server: installed RAM, the set of
//! guest domains, the timing calibration, and the knobs the paper's
//! experiments (and our ablations) turn.

use rh_guest::services::ServiceKind;
use rh_sim::equeue::QueueKind;
use rh_sim::time::SimDuration;

use crate::domain::DomainSpec;
use crate::timing::TimingParams;

/// The VMM rejuvenation strategies: the paper's three plus two
/// disk-image refinements (streamed post-copy restore and incremental
/// delta saves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RebootStrategy {
    /// The paper's warm-VM reboot: on-memory suspend + quick reload.
    Warm,
    /// Xen's suspend-to-disk, hardware reset, restore-from-disk.
    Saved,
    /// Ordinary shutdown, hardware reset, boot.
    Cold,
    /// Saved reboot with a post-copy restore: only the working set is
    /// read before resume; the rest streams in while the guest serves
    /// (degraded, Fig. 8-style).
    Streamed,
    /// Saved reboot with periodic background delta snapshots, so the
    /// at-reboot save writes only extents dirtied since the last delta.
    Incremental,
}

impl RebootStrategy {
    /// All strategies, in paper-then-refinement order.
    pub const ALL: [RebootStrategy; 5] = [
        RebootStrategy::Warm,
        RebootStrategy::Saved,
        RebootStrategy::Cold,
        RebootStrategy::Streamed,
        RebootStrategy::Incremental,
    ];
}

impl std::fmt::Display for RebootStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebootStrategy::Warm => write!(f, "warm"),
            RebootStrategy::Saved => write!(f, "saved"),
            RebootStrategy::Cold => write!(f, "cold"),
            RebootStrategy::Streamed => write!(f, "streamed"),
            RebootStrategy::Incremental => write!(f, "incremental"),
        }
    }
}

impl From<RebootStrategy> for rh_obs::StrategyKind {
    fn from(s: RebootStrategy) -> Self {
        match s {
            RebootStrategy::Warm => rh_obs::StrategyKind::Warm,
            RebootStrategy::Saved => rh_obs::StrategyKind::Saved,
            RebootStrategy::Cold => rh_obs::StrategyKind::Cold,
            RebootStrategy::Streamed => rh_obs::StrategyKind::Streamed,
            RebootStrategy::Incremental => rh_obs::StrategyKind::Incremental,
        }
    }
}

/// Who initiates the on-memory suspend, and when (a DESIGN.md ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuspendOrder {
    /// The paper's RootHammer ordering: the VMM suspends domain Us *after*
    /// domain 0 has shut down, so guests keep serving ~14 s longer (§4.2,
    /// Fig. 7 credits ≈7 s of downtime to this).
    VmmAfterDom0Shutdown,
    /// The original Xen ordering: domain 0 suspends the guests while it is
    /// itself shutting down, stopping them earlier.
    Dom0DuringShutdown,
}

/// Full description of one simulated host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Installed machine memory in bytes (the paper's host: 12 GiB).
    pub ram_bytes: u64,
    /// Guest domain specs (domain 0 is implicit).
    pub domains: Vec<DomainSpec>,
    /// Timing calibration.
    pub timing: TimingParams,
    /// Experiment RNG seed.
    pub seed: u64,
    /// Suspend-ordering ablation.
    pub suspend_order: SuspendOrder,
    /// Retain a full event trace (disable for long benchmark runs).
    pub trace: bool,
    /// Send liveness probes every `timing.probe_interval` (client-side
    /// sampled downtime, cross-checking the exact meters).
    pub probes: bool,
    /// Model OS-level aging inside guests (kernel-memory/swap wear that
    /// slows request service until an OS reboot).
    pub guest_aging: bool,
    /// Event-queue backend for the simulation engine. Both backends are
    /// observationally identical (enforced by `crates/sim/tests/queue_props.rs`
    /// and `tests/determinism.rs`); this knob exists for benchmarking.
    pub event_queue: QueueKind,
    /// Fraction of each image read before resume under
    /// [`RebootStrategy::Streamed`] (the restored working set).
    pub stream_working_set: f64,
    /// Probability that a request touches only the restored working set
    /// while a domain is still streaming; the complement of each
    /// request's bytes is faulted in through the disk.
    pub stream_locality: f64,
    /// Interval between background delta snapshots under
    /// [`RebootStrategy::Incremental`] (`None` disarms the ticker, so an
    /// incremental reboot degenerates to a full saved reboot).
    pub snapshot_interval: Option<SimDuration>,
}

impl HostConfig {
    /// The paper's testbed: 12 GiB RAM, no guests yet.
    pub fn paper_testbed() -> Self {
        HostConfig {
            ram_bytes: 12 << 30,
            domains: Vec::new(),
            timing: TimingParams::paper_testbed(),
            seed: 0x5EED,
            suspend_order: SuspendOrder::VmmAfterDom0Shutdown,
            trace: true,
            probes: false,
            guest_aging: false,
            event_queue: QueueKind::default(),
            stream_working_set: 0.15,
            stream_locality: 0.9,
            snapshot_interval: None,
        }
    }

    /// Adds `n` standard 1 GiB guests running `service`.
    pub fn with_vms(mut self, n: u32, service: ServiceKind) -> Self {
        let base = self.domains.len() as u32;
        for i in 0..n {
            self.domains
                .push(DomainSpec::standard(format!("vm{}", base + i + 1), service));
        }
        self
    }

    /// Adds one custom domain.
    pub fn with_domain(mut self, spec: DomainSpec) -> Self {
        self.domains.push(spec);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the suspend ordering (ablation).
    pub fn with_suspend_order(mut self, order: SuspendOrder) -> Self {
        self.suspend_order = order;
        self
    }

    /// Enables or disables tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables or disables client-side probes.
    pub fn with_probes(mut self, on: bool) -> Self {
        self.probes = on;
        self
    }

    /// Enables or disables guest OS aging.
    pub fn with_guest_aging(mut self, on: bool) -> Self {
        self.guest_aging = on;
        self
    }

    /// Overrides the timing parameters.
    pub fn with_timing(mut self, timing: TimingParams) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the engine's event-queue backend (benchmarking knob;
    /// does not change observable behaviour).
    pub fn with_event_queue(mut self, kind: QueueKind) -> Self {
        self.event_queue = kind;
        self
    }

    /// Overrides the streamed-restore working-set fraction (clamped to
    /// `(0, 1]`; a full working set makes Streamed behave like Saved).
    pub fn with_stream_working_set(mut self, fraction: f64) -> Self {
        self.stream_working_set = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Overrides the streaming request locality (clamped to `[0, 1]`).
    pub fn with_stream_locality(mut self, locality: f64) -> Self {
        self.stream_locality = locality.clamp(0.0, 1.0);
        self
    }

    /// Arms (or disarms) the background delta-snapshot ticker.
    pub fn with_snapshot_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.snapshot_interval = interval;
        self
    }

    /// Installed RAM in GiB.
    pub fn ram_gib(&self) -> f64 {
        self.ram_bytes as f64 / (1u64 << 30) as f64
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_defaults() {
        let c = HostConfig::paper_testbed();
        assert_eq!(c.ram_bytes, 12 << 30);
        assert!((c.ram_gib() - 12.0).abs() < 1e-9);
        assert!(c.domains.is_empty());
        assert_eq!(c.suspend_order, SuspendOrder::VmmAfterDom0Shutdown);
    }

    #[test]
    fn with_vms_appends_specs() {
        let c = HostConfig::paper_testbed().with_vms(11, ServiceKind::Ssh);
        assert_eq!(c.domains.len(), 11);
        assert_eq!(c.domains[0].name, "vm1");
        assert_eq!(c.domains[10].name, "vm11");
        for d in &c.domains {
            assert_eq!(d.mem_bytes, 1 << 30);
        }
    }

    #[test]
    fn builder_overrides() {
        let c = HostConfig::paper_testbed()
            .with_seed(99)
            .with_trace(false)
            .with_probes(true)
            .with_suspend_order(SuspendOrder::Dom0DuringShutdown)
            .with_event_queue(QueueKind::Calendar);
        assert_eq!(c.seed, 99);
        assert!(!c.trace);
        assert!(c.probes);
        assert_eq!(c.suspend_order, SuspendOrder::Dom0DuringShutdown);
        assert_eq!(c.event_queue, QueueKind::Calendar);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(RebootStrategy::Warm.to_string(), "warm");
        assert_eq!(RebootStrategy::Saved.to_string(), "saved");
        assert_eq!(RebootStrategy::Cold.to_string(), "cold");
        assert_eq!(RebootStrategy::Streamed.to_string(), "streamed");
        assert_eq!(RebootStrategy::Incremental.to_string(), "incremental");
    }

    #[test]
    fn strategy_display_matches_obs_kind() {
        for s in RebootStrategy::ALL {
            let kind: rh_obs::StrategyKind = s.into();
            assert_eq!(s.to_string(), kind.name(), "{s:?}");
        }
    }

    #[test]
    fn streaming_knob_defaults_and_clamps() {
        let c = HostConfig::paper_testbed();
        assert!((c.stream_working_set - 0.15).abs() < 1e-12);
        assert!((c.stream_locality - 0.9).abs() < 1e-12);
        assert_eq!(c.snapshot_interval, None);

        let c = c
            .with_stream_working_set(7.0)
            .with_stream_locality(-0.5)
            .with_snapshot_interval(Some(SimDuration::from_secs(120)));
        assert!((c.stream_working_set - 1.0).abs() < 1e-12);
        assert_eq!(c.stream_locality, 0.0);
        assert_eq!(c.snapshot_interval, Some(SimDuration::from_secs(120)));
    }
}
