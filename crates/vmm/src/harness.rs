//! High-level experiment driver.
//!
//! [`HostSim`] wraps a [`Host`] in a [`Simulation`] and provides the
//! blocking-style operations experiments want: "power on and wait until
//! every service is up", "reboot warm and give me the report". All waiting
//! is simulated-time-bounded so a sequencing bug fails fast instead of
//! spinning.

// lint:allow-file(unwrap-panic): experiment driver; a missed report or wait
// cap is a sequencing bug and failing fast here is the designed behaviour.

use rh_sim::engine::Simulation;
use rh_sim::time::{SimDuration, SimTime};

use crate::config::{HostConfig, RebootStrategy};
use crate::domain::DomainId;
use crate::host::{Host, RebootReport};

/// Default cap on any single wait: two simulated hours.
pub const DEFAULT_WAIT_CAP: SimDuration = SimDuration::from_secs(2 * 3600);

/// A simulated host plus its event loop.
///
/// # Examples
///
/// ```
/// use rh_guest::services::ServiceKind;
/// use rh_vmm::config::{HostConfig, RebootStrategy};
/// use rh_vmm::harness::HostSim;
///
/// let cfg = HostConfig::paper_testbed().with_vms(2, ServiceKind::Ssh);
/// let mut sim = HostSim::new(cfg);
/// sim.power_on_and_wait();
/// let report = sim.reboot_and_wait(RebootStrategy::Warm);
/// assert!(report.corrupted.is_empty());
/// assert!(report.max_downtime().as_secs_f64() < 60.0);
/// ```
#[derive(Debug)]
pub struct HostSim {
    sim: Simulation<Host>,
}

impl HostSim {
    /// Builds the host (powered off), honouring `cfg.event_queue`.
    pub fn new(cfg: HostConfig) -> Self {
        let kind = cfg.event_queue;
        HostSim {
            sim: Simulation::with_queue(Host::new(cfg), kind),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The host.
    pub fn host(&self) -> &Host {
        self.sim.world()
    }

    /// Mutable host access (experiment setup: cache warming, aging
    /// injection, ...).
    pub fn host_mut(&mut self) -> &mut Host {
        self.sim.world_mut()
    }

    /// Runs the simulation for `span` of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        self.sim.run_for(span);
    }

    /// Runs until `pred` holds or `cap` elapses; returns whether it held.
    pub fn run_until(&mut self, cap: SimDuration, pred: impl Fn(&Host) -> bool) -> bool {
        let deadline = self.sim.now() + cap;
        loop {
            if pred(self.sim.world()) {
                return true;
            }
            match self.sim.scheduler_mut().peek_next_time() {
                Some(t) if t <= deadline => {
                    self.sim.step();
                }
                _ => {
                    self.sim.run_until(deadline);
                    return pred(self.sim.world());
                }
            }
        }
    }

    /// Powers the host on and waits until every configured service is up.
    ///
    /// # Panics
    ///
    /// Panics if the host does not come up within [`DEFAULT_WAIT_CAP`].
    pub fn power_on_and_wait(&mut self) -> SimTime {
        {
            let (host, sched) = self.sim.parts_mut();
            host.power_on(sched);
        }
        // `all_services_up` is vacuously true for a guest-less host, so
        // also wait for the power-on sequence itself to finish.
        let ok = self.run_until(DEFAULT_WAIT_CAP, |h| {
            h.all_services_up() && !h.reboot_in_progress()
        });
        assert!(ok, "host failed to come up: {:?}", self.host().errors());
        self.now()
    }

    /// Issues a VMM reboot of the given strategy and waits for completion.
    ///
    /// # Panics
    ///
    /// Panics if the reboot does not complete within [`DEFAULT_WAIT_CAP`].
    pub fn reboot_and_wait(&mut self, strategy: RebootStrategy) -> RebootReport {
        let reports_before = self.host().reports().len();
        {
            let (host, sched) = self.sim.parts_mut();
            match strategy {
                RebootStrategy::Warm => host.warm_reboot(sched),
                RebootStrategy::Cold => host.cold_reboot(sched),
                RebootStrategy::Saved => host.saved_reboot(sched),
                RebootStrategy::Streamed => host.streamed_reboot(sched),
                RebootStrategy::Incremental => host.incremental_reboot(sched),
            }
        }
        let ok = self.run_until(DEFAULT_WAIT_CAP, |h| h.reports().len() > reports_before);
        assert!(
            ok,
            "{strategy} reboot did not complete: {:?}",
            self.host().errors()
        );
        self.host().last_report().expect("report pushed").clone()
    }

    /// Rejuvenates one guest OS and waits for it to come back.
    ///
    /// # Panics
    ///
    /// Panics if the guest does not come back within [`DEFAULT_WAIT_CAP`].
    pub fn os_reboot_and_wait(&mut self, id: DomainId) -> SimDuration {
        let start = self.now();
        {
            let (host, sched) = self.sim.parts_mut();
            host.os_reboot(sched, id);
        }
        let ok = self.run_until(DEFAULT_WAIT_CAP, |h| {
            h.domain(id).map(|d| d.service_up()).unwrap_or(false)
        });
        assert!(ok, "OS rejuvenation of {id} did not complete");
        // The outage is measured by the meter, not wall time from here.
        self.host()
            .meter(id)
            .and_then(|m| m.outages().iter().rev().find(|o| o.end >= start))
            .map(|o| o.duration())
            .unwrap_or(SimDuration::ZERO)
    }

    /// Runs a Fig. 8(a)-style in-guest file read to completion and returns
    /// the observed throughput in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if the read does not finish within [`DEFAULT_WAIT_CAP`].
    pub fn file_read_and_wait(&mut self, id: DomainId, file: u32) -> f64 {
        let results_before = self.host().file_read_results().len();
        {
            let (host, sched) = self.sim.parts_mut();
            host.file_read(sched, id, file);
        }
        let ok = self.run_until(DEFAULT_WAIT_CAP, |h| {
            h.file_read_results().len() > results_before
        });
        assert!(ok, "file read on {id} did not complete");
        self.host().file_read_results()[results_before].throughput_bps()
    }

    /// Crashes the VMM and waits for the reactive (cold) recovery to
    /// complete, returning the recovery report.
    ///
    /// # Panics
    ///
    /// Panics if recovery does not complete within [`DEFAULT_WAIT_CAP`].
    pub fn crash_and_recover(&mut self) -> RebootReport {
        let reports_before = self.host().reports().len();
        {
            let (host, sched) = self.sim.parts_mut();
            host.crash_vmm(sched);
        }
        let ok = self.run_until(DEFAULT_WAIT_CAP, |h| h.reports().len() > reports_before);
        assert!(ok, "crash recovery did not complete");
        self.host().last_report().expect("report pushed").clone()
    }

    /// Attaches an httperf fleet targeting `target`.
    ///
    /// # Panics
    ///
    /// Panics if a fleet is already attached.
    pub fn attach_httperf(&mut self, target: DomainId, client: rh_net::httperf::HttperfClient) {
        let (host, sched) = self.sim.parts_mut();
        host.attach_httperf(sched, target, client);
    }

    /// Detaches the httperf fleet, returning it with its completion log.
    pub fn detach_httperf(&mut self) -> Option<rh_net::httperf::HttperfClient> {
        let (host, sched) = self.sim.parts_mut();
        host.detach_httperf(sched)
    }

    /// Direct access to the inner simulation (advanced use).
    pub fn simulation_mut(&mut self) -> &mut Simulation<Host> {
        &mut self.sim
    }
}

/// Convenience: build a paper-testbed host with `n` standard VMs of
/// `service`, power it on, and return the driver.
pub fn booted_host(n: u32, service: rh_guest::services::ServiceKind) -> HostSim {
    let cfg = HostConfig::paper_testbed().with_vms(n, service);
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_guest::services::ServiceKind;

    #[test]
    fn crash_landing_mid_warm_reboot_cancels_the_stale_run() {
        // Regression: a VMM crash arriving while a warm reboot is in
        // flight used to trip an assertion (and could leave the host
        // wedged with `reboot_in_progress()` stuck true while stale
        // reboot-step events replayed into the new run). The crash must
        // take over the run at any offset into the pipeline.
        for offset_s in [1.0, 5.0, 12.0, 20.0, 35.0] {
            let mut sim = booted_host(3, ServiceKind::Ssh);
            {
                let (host, sched) = sim.sim.parts_mut();
                host.warm_reboot(sched);
            }
            sim.run_for(SimDuration::from_secs_f64(offset_s));
            let reports_before = sim.host().reports().len();
            let gen_at_crash = sim.host().vmm().generation();
            {
                let (host, sched) = sim.sim.parts_mut();
                host.crash_vmm(sched);
            }
            let ok = sim.run_until(DEFAULT_WAIT_CAP, |h| h.reports().len() > reports_before);
            assert!(ok, "recovery stuck at offset {offset_s}s");
            assert!(
                !sim.host().reboot_in_progress(),
                "run leaked at offset {offset_s}s"
            );
            let report = sim.host().last_report().expect("report pushed");
            assert_eq!(report.strategy, RebootStrategy::Cold);
            assert!(sim.host().all_services_up(), "host wedged at {offset_s}s");
            assert_eq!(sim.host().vmm().generation(), gen_at_crash + 1);
        }
    }

    #[test]
    fn power_on_brings_all_services_up() {
        let mut sim = HostSim::new(HostConfig::paper_testbed().with_vms(3, ServiceKind::Ssh));
        let up_at = sim.power_on_and_wait();
        assert!(sim.host().all_services_up());
        // dom0 boot (26) + creates + boot(3) + ssh: under a minute.
        assert!(up_at.as_secs_f64() < 60.0, "bring-up took {up_at}");
        assert!(
            up_at.as_secs_f64() > 30.0,
            "bring-up suspiciously fast: {up_at}"
        );
    }

    #[test]
    fn warm_reboot_at_eleven_vms_matches_paper_downtime() {
        // Paper Fig. 6(a): warm downtime ≈ 42 s at 11 VMs.
        let mut sim = booted_host(11, ServiceKind::Ssh);
        let report = sim.reboot_and_wait(RebootStrategy::Warm);
        let dt = report.mean_downtime().as_secs_f64();
        assert!(
            (dt - 42.0).abs() < 5.0,
            "warm downtime = {dt:.1}s (paper: 42)"
        );
        assert!(report.corrupted.is_empty(), "memory must be preserved");
        assert_eq!(report.downtime.len(), 11);
    }

    #[test]
    fn cold_reboot_at_eleven_vms_matches_paper_downtime() {
        // Paper Fig. 6(a): cold downtime ≈ 157 s at 11 VMs.
        let mut sim = booted_host(11, ServiceKind::Ssh);
        let report = sim.reboot_and_wait(RebootStrategy::Cold);
        let dt = report.mean_downtime().as_secs_f64();
        assert!(
            (dt - 157.0).abs() < 20.0,
            "cold downtime = {dt:.1}s (paper: 157)"
        );
    }

    #[test]
    fn saved_reboot_at_eleven_vms_matches_paper_downtime() {
        // Paper Fig. 6(a): saved downtime ≈ 429 s at 11 VMs.
        let mut sim = booted_host(11, ServiceKind::Ssh);
        let report = sim.reboot_and_wait(RebootStrategy::Saved);
        let dt = report.mean_downtime().as_secs_f64();
        assert!(
            (dt - 429.0).abs() < 60.0,
            "saved downtime = {dt:.1}s (paper: 429)"
        );
        assert!(report.corrupted.is_empty(), "restored images must match");
    }

    #[test]
    fn warm_beats_cold_beats_saved_for_every_vm_count() {
        for n in [1u32, 4, 8] {
            let warm = booted_host(n, ServiceKind::Ssh)
                .reboot_and_wait(RebootStrategy::Warm)
                .mean_downtime();
            let cold = booted_host(n, ServiceKind::Ssh)
                .reboot_and_wait(RebootStrategy::Cold)
                .mean_downtime();
            let saved = booted_host(n, ServiceKind::Ssh)
                .reboot_and_wait(RebootStrategy::Saved)
                .mean_downtime();
            assert!(warm < cold, "n={n}: warm {warm} !< cold {cold}");
            assert!(cold < saved, "n={n}: cold {cold} !< saved {saved}");
        }
    }

    #[test]
    fn warm_downtime_hardly_depends_on_vm_count() {
        // Fig. 6: "the downtime by the warm-VM reboot hardly depended on
        // the number of VMs".
        let d1 = booted_host(1, ServiceKind::Ssh)
            .reboot_and_wait(RebootStrategy::Warm)
            .mean_downtime()
            .as_secs_f64();
        let d11 = booted_host(11, ServiceKind::Ssh)
            .reboot_and_wait(RebootStrategy::Warm)
            .mean_downtime()
            .as_secs_f64();
        assert!(d11 - d1 < 10.0, "warm grew from {d1:.1}s to {d11:.1}s");
    }

    #[test]
    fn jboss_cold_downtime_exceeds_ssh() {
        // Fig. 6(b): cold JBoss ≈ 241 s at 11 VMs vs 157 s for ssh.
        let mut sim = booted_host(11, ServiceKind::Jboss);
        let report = sim.reboot_and_wait(RebootStrategy::Cold);
        let dt = report.mean_downtime().as_secs_f64();
        assert!(
            (dt - 241.0).abs() < 30.0,
            "cold JBoss downtime = {dt:.1}s (paper: 241)"
        );
    }

    #[test]
    fn jboss_warm_downtime_same_as_ssh() {
        // Fig. 6(b): warm/saved are service-agnostic — no restart needed.
        let ssh = booted_host(5, ServiceKind::Ssh)
            .reboot_and_wait(RebootStrategy::Warm)
            .mean_downtime()
            .as_secs_f64();
        let jboss = booted_host(5, ServiceKind::Jboss)
            .reboot_and_wait(RebootStrategy::Warm)
            .mean_downtime()
            .as_secs_f64();
        assert!(
            (ssh - jboss).abs() < 1.0,
            "warm ssh {ssh:.1} vs jboss {jboss:.1}"
        );
    }

    #[test]
    fn warm_reboot_preserves_memory_digests() {
        let mut sim = booted_host(4, ServiceKind::Ssh);
        let ids = sim.host().domu_ids();
        let before: Vec<u64> = ids
            .iter()
            .map(|id| sim.host().domain_digest(*id).unwrap())
            .collect();
        let report = sim.reboot_and_wait(RebootStrategy::Warm);
        assert!(report.corrupted.is_empty());
        let after: Vec<u64> = ids
            .iter()
            .map(|id| sim.host().domain_digest(*id).unwrap())
            .collect();
        assert_eq!(before, after, "memory images changed across warm reboot");
        // The VMM itself was rejuvenated.
        assert_eq!(sim.host().vmm().generation(), 2);
    }

    #[test]
    fn warm_reboot_digest_checks_take_the_early_out() {
        // Satellite (PERFORMANCE.md): on the clean warm path nothing
        // touches a suspended guest's frames between freeze and resume, so
        // every digest verification should skip the O(frames) rehash via
        // the epoch stamps — while still reporting zero corruption.
        let mut sim = booted_host(3, ServiceKind::Ssh);
        let report = sim.reboot_and_wait(RebootStrategy::Warm);
        assert!(report.corrupted.is_empty());
        let stats = &sim.host().stats;
        assert_eq!(
            stats.counter("digest.early_out"),
            3,
            "all three verifications should early-out"
        );
        assert_eq!(
            stats.counter("digest.full_rehash"),
            0,
            "no clean-path verification should pay the full rehash"
        );
    }

    #[test]
    fn calendar_queue_backend_reproduces_the_heap_run() {
        // The event-queue knob must not change observable behaviour: the
        // same config on both backends yields identical timing, digests,
        // and reports (the engine-level property, proven per-queue in
        // rh-sim, holding through the full host world).
        use rh_sim::equeue::QueueKind;
        let run = |kind: QueueKind| {
            let cfg = HostConfig::paper_testbed()
                .with_vms(3, ServiceKind::Ssh)
                .with_event_queue(kind);
            let mut sim = HostSim::new(cfg);
            sim.power_on_and_wait();
            let report = sim.reboot_and_wait(RebootStrategy::Warm);
            let digests: Vec<_> = sim
                .host()
                .domu_ids()
                .iter()
                .map(|id| sim.host().domain_digest(*id))
                .collect();
            (sim.now(), report.mean_downtime(), digests)
        };
        assert_eq!(run(QueueKind::BinaryHeap), run(QueueKind::Calendar));
    }

    #[test]
    fn cold_reboot_rebuilds_memory_from_scratch() {
        let mut sim = booted_host(2, ServiceKind::Ssh);
        let ids = sim.host().domu_ids();
        let before: Vec<u64> = ids
            .iter()
            .map(|id| sim.host().domain_digest(*id).unwrap())
            .collect();
        sim.reboot_and_wait(RebootStrategy::Cold);
        let after: Vec<u64> = ids
            .iter()
            .map(|id| sim.host().domain_digest(*id).unwrap())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert_ne!(b, a, "cold reboot must produce fresh memory");
        }
    }

    #[test]
    fn guest_kernels_reboot_only_on_cold_path() {
        let mut sim = booted_host(2, ServiceKind::Ssh);
        let id = sim.host().domu_ids()[0];
        sim.reboot_and_wait(RebootStrategy::Warm);
        let d = sim.host().domain(id).unwrap();
        assert_eq!(d.kernel.boots(), 1, "warm: no guest reboot");
        assert_eq!(d.kernel.suspends(), 1);
        assert_eq!(d.kernel.resumes(), 1);
        sim.reboot_and_wait(RebootStrategy::Cold);
        let d = sim.host().domain(id).unwrap();
        assert_eq!(d.kernel.boots(), 2, "cold: guest rebooted");
    }

    #[test]
    fn service_generation_survives_warm_but_not_cold() {
        // The TCP-session story (§5.3) hinges on this.
        let mut sim = booted_host(2, ServiceKind::Ssh);
        let id = sim.host().domu_ids()[0];
        let gen0 = sim
            .host()
            .domain(id)
            .unwrap()
            .service
            .as_ref()
            .unwrap()
            .generation();
        sim.reboot_and_wait(RebootStrategy::Warm);
        let gen_warm = sim
            .host()
            .domain(id)
            .unwrap()
            .service
            .as_ref()
            .unwrap()
            .generation();
        assert_eq!(gen_warm, gen0, "warm reboot preserves the server process");
        sim.reboot_and_wait(RebootStrategy::Cold);
        let gen_cold = sim
            .host()
            .domain(id)
            .unwrap()
            .service
            .as_ref()
            .unwrap()
            .generation();
        assert_eq!(
            gen_cold,
            gen0 + 1,
            "cold reboot restarts the server process"
        );
    }

    #[test]
    fn os_rejuvenation_of_jboss_matches_paper() {
        // §5.3: OS rejuvenation downtime ≈ 33.6 s (one VM with JBoss,
        // others undisturbed).
        let mut sim = booted_host(11, ServiceKind::Jboss);
        let id = sim.host().domu_ids()[0];
        let dt = sim.os_reboot_and_wait(id).as_secs_f64();
        assert!(
            (dt - 33.6).abs() < 6.0,
            "OS rejuvenation downtime = {dt:.1}s"
        );
        // Other domains never went down.
        for other in sim.host().domu_ids().into_iter().skip(1) {
            assert!(sim.host().meter(other).unwrap().outages().is_empty());
        }
        // And the VMM was not rebooted.
        assert_eq!(sim.host().vmm().generation(), 1);
    }

    #[test]
    fn crash_recovery_is_reactive_cold_and_slower_than_proactive_warm() {
        // The motivation in one test: letting the VMM crash costs far more
        // than proactively rejuvenating it warm — and the crash loses all
        // guest state while the warm reboot provably keeps it.
        let mut sim = booted_host(4, ServiceKind::Ssh);
        let warm = sim.reboot_and_wait(RebootStrategy::Warm).mean_downtime();

        let mut sim = booted_host(4, ServiceKind::Ssh);
        let digest_before = sim.host().domain_digest(DomainId(1)).unwrap();
        let session_gen_before = sim
            .host()
            .domain(DomainId(1))
            .unwrap()
            .service
            .as_ref()
            .unwrap()
            .generation();
        let report = sim.crash_and_recover();
        assert_eq!(report.strategy, RebootStrategy::Cold);
        let crash_dt = report.mean_downtime();
        assert!(
            crash_dt.as_secs_f64() > 2.0 * warm.as_secs_f64(),
            "crash recovery {crash_dt} vs warm {warm}"
        );
        // All guest state was lost and rebuilt.
        assert_ne!(
            sim.host().domain_digest(DomainId(1)).unwrap(),
            digest_before
        );
        let gen_after = sim
            .host()
            .domain(DomainId(1))
            .unwrap()
            .service
            .as_ref()
            .unwrap()
            .generation();
        assert_eq!(gen_after, session_gen_before + 1, "every session died");
        // But the host is healthy again.
        assert!(sim.host().all_services_up());
        assert_eq!(sim.host().vmm().generation(), 2);
    }

    #[test]
    fn crash_downtime_skips_the_clean_shutdown_but_not_the_reset() {
        // Reactive recovery saves the shutdown phase (nothing to shut
        // down) yet pays reset + boot like any cold path.
        let mut cold = booted_host(3, ServiceKind::Ssh);
        let cold_dt = cold.reboot_and_wait(RebootStrategy::Cold).mean_downtime();
        let mut crash = booted_host(3, ServiceKind::Ssh);
        let crash_dt = crash.crash_and_recover().mean_downtime();
        // The crash outage starts instantly (no 7 s grace, no shutdown
        // work) but the recovery path is identical hardware-wise, so the
        // difference stays bounded by the shutdown phase length.
        let diff = cold_dt.as_secs_f64() - crash_dt.as_secs_f64();
        assert!(
            (0.0..=30.0).contains(&diff),
            "cold {cold_dt} vs crash {crash_dt}"
        );
    }

    #[test]
    fn driver_domains_cold_boot_during_warm_reboot() {
        // Paper §7: "when the VMM is rebooted, driver domains as well as
        // domain 0 are rebooted because driver domains cannot be
        // suspended. Therefore, the existence of driver domains increases
        // the downtime."
        use crate::domain::DomainSpec;
        let cfg = HostConfig::paper_testbed()
            .with_vms(3, ServiceKind::Ssh)
            .with_domain(DomainSpec::standard("drv", ServiceKind::Ssh).as_driver_domain());
        let mut sim = HostSim::new(cfg);
        sim.power_on_and_wait();
        let ids = sim.host().domu_ids();
        let driver = *ids.last().unwrap();
        let digest_before: Vec<Option<u64>> =
            ids.iter().map(|id| sim.host().domain_digest(*id)).collect();
        let report = sim.reboot_and_wait(RebootStrategy::Warm);
        // The ordinary guests were suspended/resumed; the driver domain
        // was rebooted.
        for id in &ids {
            let d = sim.host().domain(*id).unwrap();
            if *id == driver {
                assert_eq!(d.kernel.boots(), 2, "driver domain must reboot");
                assert_eq!(d.kernel.suspends(), 0);
                assert_ne!(sim.host().domain_digest(*id), digest_before[3]);
            } else {
                assert_eq!(d.kernel.boots(), 1);
                assert_eq!(d.kernel.resumes(), 1);
            }
        }
        // And its downtime is cold-scale while the others stay warm-scale.
        let drv_dt = report.downtime[&driver].as_secs_f64();
        let warm_dt = report.downtime[&ids[0]].as_secs_f64();
        assert!(
            drv_dt > warm_dt + 5.0,
            "driver downtime {drv_dt:.1}s vs warm {warm_dt:.1}s"
        );
        assert!(report.corrupted.is_empty(), "suspended guests stay intact");
    }

    #[test]
    fn ballooned_domain_survives_warm_reboot_intact() {
        // Regression: a domain with an inflated balloon (pages handed back
        // to the VMM) has a P2M table smaller than its spec. The frozen
        // digest must cover exactly the mapped pseudo-physical pages —
        // never the ballooned-out frames the domain no longer owns — and
        // the warm path must preserve the shrunk image bit-for-bit.
        let mut sim = booted_host(2, ServiceKind::Ssh);
        let id = sim.host().domu_ids()[0];
        let mapped = sim.host().domain(id).unwrap().p2m.total_pages();
        let quarter = mapped / 4;
        sim.host_mut().balloon(id, -(quarter as i64)).unwrap();
        let shrunk = sim.host().domain(id).unwrap().p2m.total_pages();
        assert_eq!(shrunk, mapped - quarter);
        let digest_before = sim.host().domain_digest(id).unwrap();
        let report = sim.reboot_and_wait(RebootStrategy::Warm);
        assert!(
            report.corrupted.is_empty(),
            "ballooned domain flagged corrupted: {report:?}"
        );
        let d = sim.host().domain(id).unwrap();
        assert_eq!(d.kernel.resumes(), 1, "must resume, not cold boot");
        assert_eq!(d.p2m.total_pages(), shrunk, "balloon survives the reboot");
        assert_eq!(
            sim.host().domain_digest(id).unwrap(),
            digest_before,
            "shrunk image changed across warm reboot"
        );
    }

    #[test]
    fn ballooned_domain_survives_saved_reboot_intact() {
        // Regression: the saved image of a ballooned domain carries the
        // shrunk P2M geometry, but the restore path used to recreate the
        // shell at full spec size — `image.restore()` then failed with
        // "restore geometry mismatch" and the domain was silently lost.
        let mut sim = booted_host(2, ServiceKind::Ssh);
        let id = sim.host().domu_ids()[0];
        let mapped = sim.host().domain(id).unwrap().p2m.total_pages();
        let quarter = mapped / 4;
        sim.host_mut().balloon(id, -(quarter as i64)).unwrap();
        let shrunk = sim.host().domain(id).unwrap().p2m.total_pages();
        let digest_before = sim.host().domain_digest(id).unwrap();
        let report = sim.reboot_and_wait(RebootStrategy::Saved);
        assert!(
            sim.host().errors().is_empty(),
            "saved reboot of ballooned domain errored: {:?}",
            sim.host().errors()
        );
        assert!(report.corrupted.is_empty(), "{report:?}");
        let d = sim.host().domain(id).unwrap();
        assert_eq!(d.kernel.resumes(), 1, "must restore + resume, not be lost");
        assert_eq!(
            d.p2m.total_pages(),
            shrunk,
            "restored at the ballooned size"
        );
        assert_eq!(
            sim.host().domain_digest(id).unwrap(),
            digest_before,
            "ballooned image changed across save/restore"
        );
    }

    #[test]
    fn reclaim_under_pressure_squeezes_in_order_and_skips_frozen_images() {
        use crate::domain::ExecState;
        let mut sim = booted_host(3, ServiceKind::Ssh);
        let ids = sim.host().domu_ids();
        let spec = sim.host().domain(ids[0]).unwrap().p2m.total_pages();
        let floor = spec / 2;
        // Freeze the first candidate as a warm reboot would (exec state
        // held, image pinned): reclaim must skip it entirely (I8).
        sim.host_mut().domain_mut(ids[0]).unwrap().exec_state = Some(ExecState::capture(0, 4096));
        let freed = sim.host_mut().reclaim_under_pressure(spec, floor);
        assert_eq!(freed, spec, "two thawed domains cover the request");
        assert_eq!(
            sim.host().domain(ids[0]).unwrap().p2m.total_pages(),
            spec,
            "frozen image must not shrink"
        );
        assert_eq!(sim.host().domain(ids[1]).unwrap().p2m.total_pages(), floor);
        assert_eq!(sim.host().domain(ids[2]).unwrap().p2m.total_pages(), floor);
        assert_eq!(sim.host().stats.counter("balloon.reclaimed"), spec);
        // Everyone thawed is at the floor now — nothing left to give.
        assert_eq!(sim.host_mut().reclaim_under_pressure(1, floor), 0);
        // Thaw the frozen domain: it becomes the only candidate.
        sim.host_mut().domain_mut(ids[0]).unwrap().exec_state = None;
        assert_eq!(
            sim.host_mut().reclaim_under_pressure(u64::MAX, floor),
            spec - floor
        );
        assert_eq!(sim.host().domain(ids[0]).unwrap().p2m.total_pages(), floor);
    }

    #[test]
    fn streamed_reboot_resumes_early_then_streams_in_background() {
        // Tentpole: a post-copy restore reads only the working set before
        // resume, so downtime shrinks vs the full saved restore — and the
        // residual image keeps faulting in after the reboot completes.
        let mut saved_sim = booted_host(4, ServiceKind::Ssh);
        let saved_dt = saved_sim
            .reboot_and_wait(RebootStrategy::Saved)
            .mean_downtime();
        let saved_restore = saved_sim
            .host()
            .metrics
            .duration_of(rh_obs::Phase::Restore)
            .unwrap();

        let mut sim = booted_host(4, ServiceKind::Ssh);
        let report = sim.reboot_and_wait(RebootStrategy::Streamed);
        assert_eq!(report.strategy, RebootStrategy::Streamed);
        assert!(
            report.corrupted.is_empty(),
            "streamed restore corrupted images: {report:?}"
        );
        let dt = report.mean_downtime();
        assert!(
            dt.as_secs_f64() < saved_dt.as_secs_f64() - 12.0,
            "streamed {dt} !<< saved {saved_dt}"
        );
        // The pre-resume restore reads only the working set (plus the
        // contention of already-resumed domains streaming their residuals).
        let restore = sim
            .host()
            .metrics
            .duration_of(rh_obs::Phase::Restore)
            .unwrap();
        assert!(
            restore.as_secs_f64() < 0.5 * saved_restore.as_secs_f64(),
            "streamed restore {restore} vs saved {saved_restore}"
        );
        // The Fig. 8 window: residual images are still streaming when the
        // services are already back up.
        assert_eq!(sim.host().stats.counter("stream.started"), 4);
        assert!(
            !sim.host().streaming_domains().is_empty(),
            "stream-in must outlive the reboot"
        );
        let ok = sim.run_until(DEFAULT_WAIT_CAP, |h| h.streaming_domains().is_empty());
        assert!(ok, "stream-in never drained");
        assert_eq!(sim.host().stats.counter("stream.completed"), 4);
        let stream_in = sim
            .host()
            .metrics
            .duration_of(rh_obs::Phase::StreamIn)
            .expect("stream-in phase recorded");
        assert!(stream_in.as_secs_f64() > 1.0, "stream-in = {stream_in}");
    }

    #[test]
    fn reads_during_streaming_are_degraded_by_locality() {
        // Fig. 8-style degradation: while a domain is still streaming,
        // the non-local fraction of each read faults its pages in through
        // the disk, so lower locality means lower observed throughput.
        use crate::domain::DomainSpec;
        use rh_guest::fs::FileSet;
        let run = |locality: f64| {
            let spec = DomainSpec::standard("big", ServiceKind::ApacheWeb)
                .with_mem_bytes(2 << 30)
                .with_files(FileSet::single_large_file());
            let cfg = HostConfig::paper_testbed()
                .with_domain(spec)
                .with_stream_locality(locality);
            let mut sim = HostSim::new(cfg);
            sim.power_on_and_wait();
            let id = DomainId(1);
            // The whole file is cached, so with perfect locality the
            // post-reboot read never touches the disk.
            sim.host_mut().warm_cache(id, 1);
            sim.reboot_and_wait(RebootStrategy::Streamed);
            assert!(
                sim.host().streaming_domains().contains(&id),
                "domain must still be streaming"
            );
            let tput = sim.file_read_and_wait(id, 0);
            (tput, sim.host().stats.counter("stream.fault_bytes"))
        };
        let (local_tput, local_faults) = run(1.0);
        let (faulty_tput, faults) = run(0.5);
        assert_eq!(local_faults, 0, "perfect locality must not fault");
        assert!(faults > 0, "locality 0.5 must fault pages in");
        assert!(
            faulty_tput < local_tput,
            "locality 0.5 tput {faulty_tput:.0} !< locality 1.0 {local_tput:.0}"
        );
    }

    #[test]
    fn incremental_save_writes_only_dirty_extents_after_snapshots() {
        // Tentpole: with the background delta ticker armed, the at-reboot
        // save writes only extents dirtied since the last snapshot instead
        // of the full images.
        let cfg = HostConfig::paper_testbed()
            .with_vms(2, ServiceKind::Ssh)
            .with_snapshot_interval(Some(SimDuration::from_secs(30)));
        let mut sim = HostSim::new(cfg);
        sim.power_on_and_wait();
        let ids = sim.host().domu_ids();
        // A modest dirty writer on vm1 (few enough writes between ticks to
        // stay inside the dirty log); vm2 stays idle.
        {
            let (host, sched) = sim.sim.parts_mut();
            host.start_dirty_writer(sched, ids[0], 4, SimDuration::from_secs(10));
        }
        sim.run_for(SimDuration::from_secs(125));
        let stats = &sim.host().stats;
        assert!(
            stats.counter("snapshot.delta") >= 2,
            "base snapshots + deltas captured: {}",
            stats.counter("snapshot.delta")
        );
        assert!(
            stats.counter("snapshot.clean_tick") >= 1,
            "idle vm2 must take clean ticks"
        );
        for id in &ids {
            assert!(sim.host().delta_chain(*id).is_some(), "{id} has a chain");
        }
        let report = sim.reboot_and_wait(RebootStrategy::Incremental);
        assert_eq!(report.strategy, RebootStrategy::Incremental);
        assert!(report.corrupted.is_empty(), "{report:?}");
        let full: u64 = 2 * (1 << 30);
        let saved_bytes = sim.host().stats.counter("incremental.save_bytes");
        assert!(
            saved_bytes < full / 16,
            "at-reboot save wrote {saved_bytes} of {full} bytes"
        );
    }

    #[test]
    fn incremental_without_snapshots_degenerates_to_a_full_save() {
        // No ticker armed: there are no delta chains, so the incremental
        // save has to write the full images — byte-for-byte a saved reboot.
        let mut sim = booted_host(2, ServiceKind::Ssh);
        let report = sim.reboot_and_wait(RebootStrategy::Incremental);
        assert!(report.corrupted.is_empty(), "{report:?}");
        let full: u64 = 2 * (1 << 30);
        let saved_bytes = sim.host().stats.counter("incremental.save_bytes");
        assert_eq!(saved_bytes, full, "degenerate save must write everything");

        let saved_dt = booted_host(2, ServiceKind::Ssh)
            .reboot_and_wait(RebootStrategy::Saved)
            .mean_downtime();
        let dt = report.mean_downtime();
        let diff = (dt.as_secs_f64() - saved_dt.as_secs_f64()).abs();
        assert!(diff < 1.0, "incremental {dt} vs saved {saved_dt}");
    }

    #[test]
    fn incremental_reboot_with_snapshots_beats_saved_downtime() {
        // The headline win: a warm delta chain turns the save phase from
        // minutes of full-image writes into seconds of dirty extents.
        let saved_dt = booted_host(3, ServiceKind::Ssh)
            .reboot_and_wait(RebootStrategy::Saved)
            .mean_downtime();

        let cfg = HostConfig::paper_testbed()
            .with_vms(3, ServiceKind::Ssh)
            .with_snapshot_interval(Some(SimDuration::from_secs(60)));
        let mut sim = HostSim::new(cfg);
        sim.power_on_and_wait();
        sim.run_for(SimDuration::from_secs(180));
        let report = sim.reboot_and_wait(RebootStrategy::Incremental);
        assert!(report.corrupted.is_empty(), "{report:?}");
        let dt = report.mean_downtime();
        assert!(
            dt.as_secs_f64() < saved_dt.as_secs_f64() - 20.0,
            "incremental {dt} !<< saved {saved_dt}"
        );
    }

    #[test]
    fn quick_reload_beats_hardware_reset_by_about_48s() {
        // §5.2: 11 s vs 59 s.
        let mut warm = booted_host(1, ServiceKind::Ssh);
        warm.reboot_and_wait(RebootStrategy::Warm);
        let reload = warm
            .host()
            .metrics
            .duration_of(rh_obs::Phase::QuickReload)
            .unwrap();
        let mut cold = booted_host(1, ServiceKind::Ssh);
        cold.reboot_and_wait(RebootStrategy::Cold);
        let reset = cold
            .host()
            .metrics
            .duration_of(rh_obs::Phase::HardwareReset)
            .unwrap();
        let vmm_boot = cold
            .host()
            .metrics
            .duration_of(rh_obs::Phase::VmmBoot)
            .unwrap();
        let hw_path = (reset + vmm_boot).as_secs_f64();
        let reload_s = reload.as_secs_f64();
        assert!(
            (reload_s - 11.0).abs() < 1.0,
            "quick reload = {reload_s:.1}s"
        );
        assert!(
            (hw_path - 59.0).abs() < 8.0,
            "hardware-reset VMM reboot = {hw_path:.1}s (paper: 59)"
        );
    }
}
