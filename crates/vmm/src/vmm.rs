//! The VMM core: RootHammer's memory-side logic.
//!
//! This module implements the *mechanisms* of the paper with real
//! algorithms over the simulated machine memory — the event-driven timing
//! lives in [`crate::host`]. The three pillars:
//!
//! * **On-memory suspend** (§4.2): freeze a domain's memory image in place
//!   — no copy, no disk — and save its 16 KB execution state into memory
//!   that is preserved across the VMM reboot.
//! * **Quick reload** (§4.3): start a new VMM instance without a hardware
//!   reset. The new instance first re-reserves, from the preserved
//!   P2M-mapping tables, every frame belonging to a frozen domain, *before*
//!   its allocator services anything else — so the frozen images cannot be
//!   corrupted by VMM initialization.
//! * **Hardware reset** (the cold path): machine memory contents are *not*
//!   preserved; every domain's image, P2M table and execution state are
//!   lost.
//!
//! Content signatures ([`rh_memory::contents`]) make preservation a
//! checkable property: [`Vmm::domain_digest`] before suspend must equal the
//! digest after resume for the warm path, and must be *unobtainable* after
//! a hardware reset.

use std::collections::BTreeMap;
use std::fmt;

use rh_memory::contents::FrameContents;
use rh_memory::frame::{frames_for_bytes, FrameRange, Mfn, Pfn};
use rh_memory::heap::VmmHeap;
use rh_memory::machine::{MachineMemory, MemoryError};
use rh_memory::p2m::P2mError;
use rh_sim::rng::splitmix64;
use rh_storage::image::logical_digest;

use crate::domain::{Domain, DomainId, ExecState};
use crate::xenstored::XenStored;
use crate::xexec::{XexecError, XexecImage, XexecState};

/// Heap cost of one domain's bookkeeping structures.
pub const HEAP_PER_DOMAIN: u64 = 64 * 1024;

/// Frames reserved for the VMM's own text, data and heap (64 MiB).
pub const VMM_RESERVED_FRAMES: u64 = (64 * 1024 * 1024) / rh_memory::frame::PAGE_SIZE;

/// Errors from VMM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmError {
    /// Machine memory exhausted or inconsistent.
    Memory(MemoryError),
    /// A P2M table operation failed.
    P2m(P2mError),
    /// The VMM heap is exhausted (the §2 aging failure).
    HeapExhausted(rh_memory::heap::HeapExhausted),
    /// The domain is not in a state that allows the operation.
    BadDomainState(DomainId, &'static str),
    /// Quick reload found a frozen domain whose frames could not be
    /// re-reserved (they were stolen — the §4.3 corruption scenario).
    PreservationViolated(DomainId),
    /// The xexec staging slot was empty or its image corrupted.
    Xexec(XexecError),
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::Memory(e) => write!(f, "vmm: {e}"),
            VmmError::P2m(e) => write!(f, "vmm: {e}"),
            VmmError::HeapExhausted(e) => write!(f, "vmm: {e}"),
            VmmError::BadDomainState(id, what) => write!(f, "vmm: {id} cannot {what}"),
            VmmError::PreservationViolated(id) => write!(
                f,
                "vmm: preserved memory of {id} was corrupted during reload"
            ),
            VmmError::Xexec(e) => write!(f, "vmm: {e}"),
        }
    }
}

impl std::error::Error for VmmError {}

impl From<MemoryError> for VmmError {
    fn from(e: MemoryError) -> Self {
        VmmError::Memory(e)
    }
}

impl From<P2mError> for VmmError {
    fn from(e: P2mError) -> Self {
        VmmError::P2m(e)
    }
}

impl From<rh_memory::heap::HeapExhausted> for VmmError {
    fn from(e: rh_memory::heap::HeapExhausted) -> Self {
        VmmError::HeapExhausted(e)
    }
}

impl From<XexecError> for VmmError {
    fn from(e: XexecError) -> Self {
        VmmError::Xexec(e)
    }
}

/// Whether the VMM instance is alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmmState {
    /// Serving hypercalls.
    Running,
    /// Between instances (rebooting).
    Down,
}

/// The virtual machine monitor.
///
/// Owns machine memory management (allocator, heap, xenstored) but not the
/// domains themselves — those belong to the host, mirroring how the real
/// RootHammer keeps domain metadata in memory regions that outlive a VMM
/// instance.
#[derive(Debug)]
pub struct Vmm {
    state: VmmState,
    generation: u64,
    ram: MachineMemory,
    heap: VmmHeap,
    xenstored: XenStored,
    /// Heap bytes leaked every time a domain is destroyed — the Xen
    /// changeset-9392 bug ("available heap memory decreased whenever a VM
    /// was rebooted"). Zero by default; aging experiments raise it.
    pub leak_per_domain_destroy: u64,
    heap_allocs: BTreeMap<DomainId, rh_memory::heap::HeapAlloc>,
    salt_counter: u64,
    xexec: XexecState,
    running_version: u32,
}

impl Vmm {
    /// Boots a fresh VMM over `total_frames` of machine memory.
    pub fn new(total_frames: u64) -> Self {
        let mut ram = MachineMemory::new(total_frames);
        ram.reserve_exact(FrameRange::new(
            Mfn(0),
            VMM_RESERVED_FRAMES.min(total_frames),
        ))
        // lint:allow(unwrap-panic): a fresh allocator is all-free and the range is clamped to it
        .expect("fresh memory must accommodate the VMM image");
        Vmm {
            state: VmmState::Running,
            generation: 1,
            ram,
            heap: VmmHeap::xen_default(),
            xenstored: XenStored::realistic(),
            leak_per_domain_destroy: 0,
            heap_allocs: BTreeMap::new(),
            salt_counter: 0,
            xexec: XexecState::new(),
            running_version: 1,
        }
    }

    /// Current state.
    pub fn state(&self) -> VmmState {
        self.state
    }

    /// True if serving hypercalls.
    pub fn is_running(&self) -> bool {
        self.state == VmmState::Running
    }

    /// Marks the VMM down (a reboot is in progress).
    pub fn set_down(&mut self) {
        self.state = VmmState::Down;
    }

    /// Boot generation (1 for the first instance).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The machine memory allocator.
    pub fn ram(&self) -> &MachineMemory {
        &self.ram
    }

    /// The hypervisor heap.
    pub fn heap(&self) -> &VmmHeap {
        &self.heap
    }

    /// Mutable heap access (for aging injection).
    pub fn heap_mut(&mut self) -> &mut VmmHeap {
        &mut self.heap
    }

    /// The xenstored daemon.
    pub fn xenstored(&self) -> &XenStored {
        &self.xenstored
    }

    /// Mutable xenstored access (for aging injection).
    pub fn xenstored_mut(&mut self) -> &mut XenStored {
        &mut self.xenstored
    }

    /// The xexec staging slot.
    pub fn xexec(&self) -> &XexecState {
        &self.xexec
    }

    /// Mutable xexec access (staging images, corruption injection).
    pub fn xexec_mut(&mut self) -> &mut XexecState {
        &mut self.xexec
    }

    /// Version of the VMM build currently running.
    pub fn running_version(&self) -> u32 {
        self.running_version
    }

    /// Stages the next VMM build for quick reload — the xexec system call
    /// + hypercall pair (§4.3).
    pub fn stage_next_image(&mut self, image: XexecImage) {
        self.xexec.load(image);
    }

    fn next_salt(&mut self) -> u64 {
        self.salt_counter += 1;
        splitmix64(self.salt_counter ^ (self.generation << 32))
    }

    /// Creates (allocates and initializes) a domain's memory and registers
    /// it with xenstored. The domain's previous P2M mapping must be empty.
    ///
    /// # Errors
    ///
    /// Propagates allocator/heap exhaustion; heap exhaustion here is the
    /// §2 aging failure mode.
    pub fn create_domain(
        &mut self,
        dom: &mut Domain,
        contents: &mut FrameContents,
    ) -> Result<(), VmmError> {
        if !dom.p2m.is_empty() {
            return Err(VmmError::BadDomainState(
                dom.id,
                "create with mapped memory",
            ));
        }
        let alloc = self.heap.alloc(HEAP_PER_DOMAIN)?;
        let frames = match self.ram.allocate(dom.mem_pages()) {
            Ok(f) => f,
            Err(e) => {
                self.heap.free(alloc);
                return Err(e.into());
            }
        };
        // Bookkeeping: remember the heap allocation for this domain.
        self.heap_allocs.insert(dom.id, alloc);
        dom.salt = self.next_salt();
        dom.p2m.map_contiguous(Pfn(0), &frames)?;
        for (i, r) in frames.iter().enumerate() {
            contents.fill_pattern(*r, dom.salt.wrapping_add(i as u64));
        }
        self.xenstored.transact();
        Ok(())
    }

    /// Releases a domain's machine frames (scrubbing their contents) and
    /// heap bookkeeping, but keeps the saved execution state. This is the
    /// tail of Xen's `xm save`: once the image is on disk, the resident
    /// copy is discarded.
    ///
    /// # Errors
    ///
    /// Propagates allocator inconsistencies (double release).
    pub fn release_domain_memory(
        &mut self,
        dom: &mut Domain,
        contents: &mut FrameContents,
    ) -> Result<(), VmmError> {
        let ranges = dom.p2m.machine_ranges();
        for r in &ranges {
            contents.scrub(*r);
        }
        self.ram.release(&ranges)?;
        dom.p2m.clear();
        if let Some(alloc) = self.heap_allocs.remove(&dom.id) {
            self.heap.free(alloc);
            if self.leak_per_domain_destroy > 0 {
                self.heap.leak(self.leak_per_domain_destroy);
            }
        }
        Ok(())
    }

    /// Creates a domain's memory mapping *without* initializing contents —
    /// the restore path allocates empty frames and fills them from the
    /// saved image afterwards. `pages` is the saved image's geometry, not
    /// the spec size: a domain saved with an inflated balloon owns fewer
    /// pages than its spec says, and restoring it spec-sized would make
    /// the image's page count mismatch the recreated shell.
    ///
    /// # Errors
    ///
    /// Propagates allocator/heap exhaustion.
    pub fn create_domain_empty(&mut self, dom: &mut Domain, pages: u64) -> Result<(), VmmError> {
        if !dom.p2m.is_empty() {
            return Err(VmmError::BadDomainState(
                dom.id,
                "create with mapped memory",
            ));
        }
        let alloc = self.heap.alloc(HEAP_PER_DOMAIN)?;
        let frames = match self.ram.allocate(pages) {
            Ok(f) => f,
            Err(e) => {
                self.heap.free(alloc);
                return Err(e.into());
            }
        };
        self.heap_allocs.insert(dom.id, alloc);
        dom.p2m.map_contiguous(Pfn(0), &frames)?;
        self.xenstored.transact();
        Ok(())
    }

    /// Destroys a domain: releases its frames, scrubs their contents and
    /// frees (or leaks, per [`leak_per_domain_destroy`](Self::leak_per_domain_destroy))
    /// its heap bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates allocator inconsistencies (double release).
    pub fn destroy_domain(
        &mut self,
        dom: &mut Domain,
        contents: &mut FrameContents,
    ) -> Result<(), VmmError> {
        let ranges = dom.p2m.machine_ranges();
        for r in &ranges {
            contents.scrub(*r);
        }
        self.ram.release(&ranges)?;
        dom.p2m.clear();
        dom.exec_state = None;
        if let Some(alloc) = self.heap_allocs.remove(&dom.id) {
            self.heap.free(alloc);
            // The changeset-9392 bug: part of the freed memory is lost
            // again on every domain teardown.
            if self.leak_per_domain_destroy > 0 {
                self.heap.leak(self.leak_per_domain_destroy);
            }
        }
        self.xenstored.transact();
        Ok(())
    }

    /// Balloons `pages` pages *out* of a domain: the balloon driver hands
    /// its highest pseudo-physical pages back to the VMM (paper §4.1 /
    /// Waldspurger). The freed frames are scrubbed and returned to the
    /// allocator; the P2M table shrinks accordingly and stays correct
    /// across a subsequent quick reload.
    ///
    /// # Errors
    ///
    /// [`VmmError::P2m`] if the domain has fewer than `pages` mapped.
    pub fn balloon_out(
        &mut self,
        dom: &mut Domain,
        contents: &mut FrameContents,
        pages: u64,
    ) -> Result<(), VmmError> {
        let released = dom.p2m.unmap_top(pages)?;
        for r in &released {
            contents.scrub(*r);
        }
        self.ram.release(&released)?;
        self.xenstored.transact();
        Ok(())
    }

    /// Balloons `pages` pages back *in*: fresh frames are allocated,
    /// mapped at the domain's current PFN limit, and zero-initialized
    /// (modelled as a fresh content pattern).
    ///
    /// # Errors
    ///
    /// [`VmmError::Memory`] if machine memory is exhausted.
    pub fn balloon_in(
        &mut self,
        dom: &mut Domain,
        contents: &mut FrameContents,
        pages: u64,
    ) -> Result<(), VmmError> {
        let frames = self.ram.allocate(pages)?;
        let pfn = Pfn(dom.p2m.pfn_limit());
        if let Err(e) = dom.p2m.map_contiguous(pfn, &frames) {
            let _ = self.ram.release(&frames);
            return Err(e.into());
        }
        let salt = self.next_salt();
        for (i, r) in frames.iter().enumerate() {
            contents.fill_pattern(*r, salt.wrapping_add(i as u64));
        }
        self.xenstored.transact();
        Ok(())
    }

    /// The suspend hypercall (§4.2): freezes the domain's memory image *in
    /// place* — the frames stay allocated and the P2M table keeps them —
    /// and saves the execution state into preserved memory.
    ///
    /// Deliberately O(1) in the domain's memory size: no frame is read,
    /// copied or written.
    ///
    /// # Errors
    ///
    /// [`VmmError::BadDomainState`] if the domain has no mapped memory or
    /// the execution-state record exceeds [`ExecState::MAX_BYTES`] (the
    /// preserved slots are fixed at 16 KB, §4.2).
    pub fn on_memory_suspend(
        &mut self,
        dom: &mut Domain,
        exec_state_bytes: u64,
    ) -> Result<(), VmmError> {
        if dom.p2m.is_empty() {
            return Err(VmmError::BadDomainState(dom.id, "suspend without memory"));
        }
        if exec_state_bytes > ExecState::MAX_BYTES {
            return Err(VmmError::BadDomainState(
                dom.id,
                "save an oversized execution state",
            ));
        }
        // The saved record covers CPU context plus "shared information
        // such as the status of event channels" — fold the live channel
        // digest in so the preserved state reflects it.
        dom.exec_state = Some(ExecState::capture(
            dom.salt ^ self.generation ^ dom.channels.digest(),
            exec_state_bytes,
        ));
        Ok(())
    }

    /// The resume path's VMM half (§4.2): verifies the preserved mapping
    /// still resolves and the execution state exists, then hands the frozen
    /// image back to a fresh domain shell. O(#extents), not O(bytes).
    ///
    /// # Errors
    ///
    /// [`VmmError::BadDomainState`] if the domain has no saved execution
    /// state or no preserved mapping (e.g. after a hardware reset).
    pub fn on_memory_resume(&mut self, dom: &mut Domain) -> Result<ExecState, VmmError> {
        let exec = dom.exec_state.take().ok_or(VmmError::BadDomainState(
            dom.id,
            "resume without saved state",
        ))?;
        if dom.p2m.is_empty() {
            dom.exec_state = Some(exec);
            return Err(VmmError::BadDomainState(dom.id, "resume without memory"));
        }
        self.xenstored.transact();
        Ok(exec)
    }

    /// Quick reload (§4.3): replaces this VMM instance with a new one
    /// without a hardware reset. `suspended` lists the frozen domains whose
    /// memory must be preserved.
    ///
    /// The new instance's allocator starts empty; the preserved P2M tables
    /// are replayed through `reserve_exact` *first*, then the VMM's own
    /// region is claimed from what remains. Frame contents are never
    /// touched — that is the entire point.
    ///
    /// # Errors
    ///
    /// [`VmmError::PreservationViolated`] if a frozen domain's frames
    /// cannot be re-reserved (overlap with another reservation — table
    /// corruption).
    pub fn quick_reload(
        &mut self,
        domains: &mut BTreeMap<DomainId, Domain>,
        suspended: &[DomainId],
    ) -> Result<(), VmmError> {
        // Verify and consume the staged executable image first: without
        // one there is nothing to jump to, and a corrupted one must be
        // rejected before memory is handed over.
        let image = self.xexec.take_for_boot()?;
        let mut ram = MachineMemory::new(self.ram.total_frames());
        // Re-reserve every frozen domain's frames from the preserved
        // P2M-mapping tables before anything else can allocate.
        for id in suspended {
            let dom = domains
                .get(id)
                .ok_or(VmmError::BadDomainState(*id, "reload unknown domain"))?;
            for r in dom.p2m.machine_ranges() {
                ram.reserve_exact(r)
                    .map_err(|_| VmmError::PreservationViolated(dom.id))?;
            }
            // The saved execution states live in preserved memory too;
            // their footprint is tiny (16 KB/domain) and accounted here.
            if dom.exec_state.is_none() {
                return Err(VmmError::BadDomainState(
                    dom.id,
                    "reload without saved state",
                ));
            }
        }
        // Now the VMM claims its own image region. The boot protocol loads
        // the new executable where the old one was, which never overlaps
        // domain memory.
        ram.reserve_exact(FrameRange::new(
            Mfn(0),
            VMM_RESERVED_FRAMES.min(ram.total_frames()),
        ))?;
        self.ram = ram;
        self.generation += 1;
        self.heap.reset();
        self.heap_allocs.clear();
        self.xenstored.reboot();
        self.state = VmmState::Running;
        self.running_version = image.version;
        // Re-register preserved domains' bookkeeping in the fresh heap.
        for id in suspended {
            let alloc = self.heap.alloc(HEAP_PER_DOMAIN)?;
            self.heap_allocs.insert(*id, alloc);
        }
        Ok(())
    }

    /// A *buggy* reload that initializes the VMM (scribbling over free —
    /// and, wrongly, not-yet-re-reserved — memory) **before** replaying the
    /// P2M tables. This is exactly the hazard §4.3 warns about ("the quick
    /// reload mechanism prevents the frozen memory images of VMs from
    /// being corrupted when the VMM initializes itself"); kept for the
    /// ablation tests that show the digests detecting the corruption.
    pub fn quick_reload_wrong_order(
        &mut self,
        domains: &mut BTreeMap<DomainId, Domain>,
        suspended: &[DomainId],
        contents: &mut FrameContents,
        scratch_frames: u64,
    ) -> Result<(), VmmError> {
        let mut ram = MachineMemory::new(self.ram.total_frames());
        ram.reserve_exact(FrameRange::new(
            Mfn(0),
            VMM_RESERVED_FRAMES.min(ram.total_frames()),
        ))?;
        // VMM init scribbles over "free" memory that actually holds frozen
        // domain images.
        let scratch = ram.allocate(scratch_frames)?;
        for r in &scratch {
            contents.fill_pattern(*r, 0xDEAD_0000 ^ self.generation);
        }
        ram.release(&scratch)?;
        // Only now replay the tables — too late: contents already changed.
        for id in suspended {
            let dom = domains
                .get(id)
                .ok_or(VmmError::BadDomainState(*id, "reload unknown domain"))?;
            for r in dom.p2m.machine_ranges() {
                ram.reserve_exact(r)
                    .map_err(|_| VmmError::PreservationViolated(dom.id))?;
            }
        }
        self.ram = ram;
        self.generation += 1;
        self.heap.reset();
        self.heap_allocs.clear();
        self.xenstored.reboot();
        self.state = VmmState::Running;
        Ok(())
    }

    /// A hardware reset (cold path): machine memory contents are lost, and
    /// with them every domain's image, mapping and execution state.
    pub fn hardware_reset(
        &mut self,
        domains: &mut BTreeMap<DomainId, Domain>,
        contents: &mut FrameContents,
    ) {
        contents.scrub_all();
        for dom in domains.values_mut() {
            dom.p2m.clear();
            dom.exec_state = None;
            dom.cache.clear();
            if let Some(svc) = dom.service.as_mut() {
                svc.kill();
            }
            dom.kernel.destroy();
        }
        let mut ram = MachineMemory::new(self.ram.total_frames());
        ram.reserve_exact(FrameRange::new(
            Mfn(0),
            VMM_RESERVED_FRAMES.min(ram.total_frames()),
        ))
        // lint:allow(unwrap-panic): a fresh allocator is all-free and the range is clamped to it
        .expect("fresh memory accommodates the VMM image");
        self.ram = ram;
        self.generation += 1;
        self.heap.reset();
        self.heap_allocs.clear();
        self.xenstored.reboot();
        self.state = VmmState::Running;
    }

    /// Digest of a domain's memory in pseudo-physical order.
    pub fn domain_digest(&self, dom: &Domain, contents: &FrameContents) -> u64 {
        logical_digest(&dom.p2m, contents)
    }

    /// Total pseudo-physical pages mapped across `domains` — may exceed
    /// machine memory under ballooning.
    pub fn total_mapped_pages(domains: &BTreeMap<DomainId, Domain>) -> u64 {
        domains.values().map(|d| d.p2m.total_pages()).sum()
    }

    /// Checks cross-domain machine-frame disjointness — no frame may belong
    /// to two domains.
    pub fn check_domain_isolation(domains: &BTreeMap<DomainId, Domain>) -> Result<(), String> {
        let mut all: Vec<(DomainId, FrameRange)> = Vec::new();
        for (id, d) in domains {
            for r in d.p2m.machine_ranges() {
                all.push((*id, r));
            }
        }
        all.sort_by_key(|(_, r)| r.start);
        for w in all.windows(2) {
            let (ida, a) = w[0];
            let (idb, b) = w[1];
            if a.overlaps(&b) {
                return Err(format!("{ida} range {a} overlaps {idb} range {b}"));
            }
        }
        Ok(())
    }

    /// Frames needed for a memory size in bytes — re-exported convenience.
    pub fn frames_for(bytes: u64) -> u64 {
        frames_for_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainSpec;
    use rh_guest::services::ServiceKind;
    use rh_memory::frame::FRAMES_PER_GIB;

    fn gib(n: u64) -> u64 {
        n << 30
    }

    fn setup(total_gib: u64) -> (Vmm, FrameContents) {
        (Vmm::new(total_gib * FRAMES_PER_GIB), FrameContents::new())
    }

    fn make_dom(id: u32, mem_gib: u64) -> Domain {
        Domain::new(
            DomainId(id),
            DomainSpec::standard(format!("vm{id}"), ServiceKind::Ssh).with_mem_bytes(gib(mem_gib)),
            0,
        )
    }

    #[test]
    fn create_allocates_and_fills() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        assert_eq!(dom.p2m.total_pages(), FRAMES_PER_GIB);
        let mfn = dom.p2m.lookup(Pfn(0)).unwrap();
        assert!(contents.read(mfn).is_some());
        assert_eq!(vmm.heap().used_bytes(), HEAP_PER_DOMAIN);
        assert_eq!(vmm.xenstored().ops(), 1);
    }

    #[test]
    fn create_twice_rejected() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let err = vmm.create_domain(&mut dom, &mut contents).unwrap_err();
        assert!(matches!(err, VmmError::BadDomainState(_, _)));
    }

    #[test]
    fn destroy_releases_and_scrubs() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let mfn = dom.p2m.lookup(Pfn(0)).unwrap();
        let free_before = vmm.ram().free_frames();
        vmm.destroy_domain(&mut dom, &mut contents).unwrap();
        assert_eq!(vmm.ram().free_frames(), free_before + FRAMES_PER_GIB);
        assert_eq!(contents.read(mfn), None, "destroy scrubs contents");
        assert!(dom.p2m.is_empty());
        assert_eq!(vmm.heap().used_bytes(), 0);
    }

    #[test]
    fn warm_cycle_preserves_digest() {
        // The paper's core invariant, at the mechanism level.
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 2);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let before = vmm.domain_digest(&dom, &contents);

        vmm.on_memory_suspend(&mut dom, 16 * 1024).unwrap();
        vmm.set_down();
        let before_digest_dom = dom.id;
        let mut domains = BTreeMap::from([(dom.id, dom)]);
        vmm.stage_next_image(XexecImage::build(2));
        vmm.quick_reload(&mut domains, &[before_digest_dom])
            .unwrap();
        assert_eq!(vmm.running_version(), 2, "booted into the staged build");
        let dom = domains.get_mut(&before_digest_dom).unwrap();
        let exec = vmm.on_memory_resume(dom).unwrap();

        assert_eq!(vmm.domain_digest(dom, &contents), before);
        assert_eq!(exec.bytes, 16 * 1024);
        assert_eq!(vmm.generation(), 2);
        assert!(vmm.is_running());
    }

    #[test]
    fn quick_reload_reserves_before_allocating() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let dom_ranges = dom.p2m.machine_ranges();
        vmm.on_memory_suspend(&mut dom, 16 * 1024).unwrap();
        let id = dom.id;
        let mut domains = BTreeMap::from([(dom.id, dom)]);
        vmm.stage_next_image(XexecImage::build(2));
        vmm.quick_reload(&mut domains, &[id]).unwrap();
        // A fresh allocation in the new instance must avoid the frozen
        // domain's frames.
        let scratch = vmm.ram.allocate(FRAMES_PER_GIB).unwrap();
        for s in &scratch {
            for d in &dom_ranges {
                assert!(!s.overlaps(d), "new allocation {s} stole frozen {d}");
            }
        }
    }

    #[test]
    fn wrong_order_reload_corrupts_and_is_detected() {
        let (mut vmm, mut contents) = setup(2);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let before = vmm.domain_digest(&dom, &contents);
        vmm.on_memory_suspend(&mut dom, 16 * 1024).unwrap();
        // Scratch bigger than the free space forces the buggy allocator
        // into the frozen image.
        let free = vmm.ram().free_frames();
        let id = dom.id;
        let mut domains = BTreeMap::from([(dom.id, dom)]);
        vmm.quick_reload_wrong_order(
            &mut domains,
            &[id],
            &mut contents,
            free + FRAMES_PER_GIB / 2,
        )
        .unwrap();
        let after = vmm.domain_digest(&domains[&id], &contents);
        assert_ne!(after, before, "digest must expose the corruption");
    }

    #[test]
    fn hardware_reset_destroys_everything() {
        let (mut vmm, mut contents) = setup(4);
        let mut domains = BTreeMap::new();
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        vmm.on_memory_suspend(&mut dom, 16 * 1024).unwrap();
        domains.insert(dom.id, dom);
        vmm.hardware_reset(&mut domains, &mut contents);
        let dom = domains.get_mut(&DomainId(1)).unwrap();
        assert!(dom.p2m.is_empty());
        assert!(dom.exec_state.is_none());
        // Resume after a hardware reset must fail.
        assert!(matches!(
            vmm.on_memory_resume(dom),
            Err(VmmError::BadDomainState(_, _))
        ));
        assert_eq!(vmm.generation(), 2);
    }

    #[test]
    fn resume_without_suspend_fails() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        assert!(matches!(
            vmm.on_memory_resume(&mut dom),
            Err(VmmError::BadDomainState(_, _))
        ));
    }

    #[test]
    fn heap_leak_injection_ages_the_vmm() {
        let (mut vmm, mut contents) = setup(8);
        vmm.leak_per_domain_destroy = 1024;
        let free0 = vmm.heap().free_bytes();
        for i in 0..10 {
            let mut dom = make_dom(10 + i, 1);
            vmm.create_domain(&mut dom, &mut contents).unwrap();
            vmm.destroy_domain(&mut dom, &mut contents).unwrap();
        }
        assert_eq!(vmm.heap().leaked_bytes(), 10 * 1024);
        assert_eq!(vmm.heap().free_bytes(), free0 - 10 * 1024);
        // Rejuvenation clears the leak.
        vmm.hardware_reset(&mut BTreeMap::new(), &mut contents);
        assert_eq!(vmm.heap().leaked_bytes(), 0);
    }

    #[test]
    fn multi_domain_isolation_holds_across_reload() {
        let (mut vmm, mut contents) = setup(8);
        let mut domains: BTreeMap<DomainId, Domain> = BTreeMap::new();
        for i in 1..=4 {
            let mut dom = make_dom(i, 1);
            vmm.create_domain(&mut dom, &mut contents).unwrap();
            vmm.on_memory_suspend(&mut dom, 16 * 1024).unwrap();
            domains.insert(dom.id, dom);
        }
        Vmm::check_domain_isolation(&domains).unwrap();
        let digests: Vec<u64> = domains
            .values()
            .map(|d| vmm.domain_digest(d, &contents))
            .collect();
        let ids: Vec<DomainId> = domains.keys().copied().collect();
        vmm.stage_next_image(XexecImage::build(2));
        vmm.quick_reload(&mut domains, &ids).unwrap();
        Vmm::check_domain_isolation(&domains).unwrap();
        let after: Vec<u64> = domains
            .values()
            .map(|d| vmm.domain_digest(d, &contents))
            .collect();
        assert_eq!(digests, after);
    }

    #[test]
    fn balloon_cycle_keeps_table_correct_across_reload() {
        // §4.1: "Even when the total size of pseudo-physical memory is
        // larger than that of machine memory due to using a ballooning
        // technique, this table can maintain the mapping properly."
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 2);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let free0 = vmm.ram().free_frames();
        // Balloon half the domain out...
        vmm.balloon_out(&mut dom, &mut contents, FRAMES_PER_GIB)
            .unwrap();
        assert_eq!(vmm.ram().free_frames(), free0 + FRAMES_PER_GIB);
        assert_eq!(dom.p2m.total_pages(), FRAMES_PER_GIB);
        // ...then a quarter back in.
        vmm.balloon_in(&mut dom, &mut contents, FRAMES_PER_GIB / 2)
            .unwrap();
        assert_eq!(dom.p2m.total_pages(), FRAMES_PER_GIB + FRAMES_PER_GIB / 2);
        dom.p2m.check_machine_disjoint().unwrap();
        // The ballooned domain survives a warm cycle intact.
        let before = vmm.domain_digest(&dom, &contents);
        vmm.on_memory_suspend(&mut dom, 16 * 1024).unwrap();
        let id = dom.id;
        let mut domains = BTreeMap::from([(id, dom)]);
        vmm.stage_next_image(XexecImage::build(2));
        vmm.quick_reload(&mut domains, &[id]).unwrap();
        let dom = domains.get_mut(&id).unwrap();
        vmm.on_memory_resume(dom).unwrap();
        assert_eq!(vmm.domain_digest(dom, &contents), before);
    }

    #[test]
    fn balloon_out_too_many_pages_fails() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let err = vmm
            .balloon_out(&mut dom, &mut contents, 2 * FRAMES_PER_GIB)
            .unwrap_err();
        assert!(matches!(err, VmmError::P2m(_)));
        assert_eq!(dom.p2m.total_pages(), FRAMES_PER_GIB, "unchanged on error");
    }

    #[test]
    fn balloon_in_fails_when_machine_memory_exhausted() {
        let (mut vmm, mut contents) = setup(2);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let free = vmm.ram().free_frames();
        let err = vmm
            .balloon_in(&mut dom, &mut contents, free + 1)
            .unwrap_err();
        assert!(matches!(err, VmmError::Memory(_)));
    }

    #[test]
    fn ballooned_out_pages_are_scrubbed() {
        let (mut vmm, mut contents) = setup(4);
        let mut dom = make_dom(1, 1);
        vmm.create_domain(&mut dom, &mut contents).unwrap();
        let top_pfn = Pfn(dom.p2m.total_pages() - 1);
        let top_mfn = dom.p2m.lookup(top_pfn).unwrap();
        assert!(contents.read(top_mfn).is_some());
        vmm.balloon_out(&mut dom, &mut contents, 16).unwrap();
        assert_eq!(contents.read(top_mfn), None, "released frames are scrubbed");
    }

    #[test]
    fn frames_for_helper() {
        assert_eq!(Vmm::frames_for(gib(1)), FRAMES_PER_GIB);
    }
}
