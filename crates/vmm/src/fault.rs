//! Fault-injection hook points (the `rh-faults` ⇄ `rh-vmm` boundary).
//!
//! The host consults an armed [`FaultHook`] at a handful of named
//! [`InjectPoint`]s along the warm-reboot and recovery pipelines. With no
//! hook armed the consultation is a single `Option` check — no RNG draws,
//! no allocations, no trace lines — so an unfaulted host behaves (and
//! prints) byte-identically to one built before this module existed. The
//! trait lives here rather than in `rh-faults` so the host can hold a
//! `Box<dyn FaultHook>` without a dependency cycle; the injector crate
//! implements it.

use std::fmt;

use rh_sim::time::SimTime;

use crate::domain::DomainId;

/// A named place in the reboot/recovery pipeline where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectPoint {
    /// A domain's on-memory suspend just completed (image frozen).
    SuspendEnd,
    /// A new VMM image was just staged via xexec.
    StageImage,
    /// The quick reload is about to replace the VMM.
    QuickReload,
    /// A domain-0 boot is being scheduled.
    Dom0Boot,
    /// A domain's on-memory resume is about to start.
    ResumeStart,
    /// A hypercall is being dispatched.
    Hypercall,
}

impl fmt::Display for InjectPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InjectPoint::SuspendEnd => "suspend-end",
            InjectPoint::StageImage => "stage-image",
            InjectPoint::QuickReload => "quick-reload",
            InjectPoint::Dom0Boot => "dom0-boot",
            InjectPoint::ResumeStart => "resume-start",
            InjectPoint::Hypercall => "hypercall",
        };
        f.write_str(name)
    }
}

/// What the host tells the hook about the moment of consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultContext {
    /// The current simulated instant.
    pub now: SimTime,
    /// The domain the pipeline step concerns, for per-domain points.
    pub domain: Option<DomainId>,
}

/// An effect the hook asks the host to apply at the consultation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The VMM fails in place: guests stall with their memory frozen where
    /// it sits; nothing is torn down cleanly.
    CrashVmm,
    /// XOR the staged xexec image's initrd digest without updating its
    /// checksum (the integrity check catches it at boot).
    CorruptStagedImage {
        /// Non-zero mask applied to the digest.
        xor: u64,
    },
    /// XOR the machine base of the `extent`-th P2M extent of `dom`.
    CorruptP2m {
        /// Victim domain.
        dom: DomainId,
        /// Which extent (reduced modulo the extent count).
        extent: usize,
        /// Non-zero mask applied to the extent's machine base.
        xor: u64,
    },
    /// XOR one word of `dom`'s frozen memory (`page` is reduced modulo the
    /// domain's size).
    CorruptFrame {
        /// Victim domain.
        dom: DomainId,
        /// Guest page index selecting the word.
        page: u64,
        /// Non-zero mask applied to the word.
        xor: u64,
    },
    /// Throw away `dom`'s saved execution state and frozen image (models a
    /// truncated 16 KB exec-state write: the image is unrecoverable).
    DropExecState {
        /// Victim domain.
        dom: DomainId,
    },
    /// Fail `dom`'s on-memory resume.
    FailResume {
        /// Victim domain.
        dom: DomainId,
    },
    /// Stretch the next domain-0 boot by `extra_ms` milliseconds.
    HangDom0 {
        /// Extra boot time in milliseconds.
        extra_ms: u64,
    },
}

/// A fault injector the host consults at every [`InjectPoint`].
///
/// Implementations must be deterministic: given the same construction
/// parameters and the same sequence of `consult` calls they must return
/// the same actions (`rh-faults` derives all randomness from forked
/// [`rh_sim::rng::SimRng`] streams seeded by the plan).
pub trait FaultHook: fmt::Debug {
    /// Called once per pipeline step; returns the actions to apply now.
    fn consult(&mut self, point: InjectPoint, ctx: &FaultContext) -> Vec<FaultAction>;
}
