//! The seeded fault-plan DSL.
//!
//! A [`FaultPlan`] is a list of [`Arm`]s: *what* goes wrong
//! ([`FaultKind`]), *where* in the warm-reboot pipeline it goes wrong
//! (an [`InjectPoint`]), and *when* it fires ([`Trigger`]). The plan
//! carries its own seed; everything stochastic about its execution —
//! `Chance` trigger draws, which bits a corruption flips — is derived
//! from that seed by the [`Injector`](crate::inject::Injector), so the
//! same plan against the same host replays byte-identically.

use std::fmt;

use rh_vmm::{DomainId, InjectPoint};

/// What goes wrong. Each kind maps onto one concrete
/// [`FaultAction`](rh_vmm::FaultAction) when its arm fires; kinds that
/// target a specific domain only fire on consultations about that domain
/// (or on consultations with no domain context at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The VMM itself fails: the software-aging outcome the paper
    /// rejuvenates to avoid. Takes the whole machine down.
    VmmCrash,
    /// The staged next-VMM image is corrupted in preserved memory, so
    /// quick reload's integrity check rejects it (§4.3).
    XexecFailure,
    /// One extent of the victim's preserved P2M table is corrupted, so
    /// the new VMM re-reserves the wrong frames.
    P2mCorruption(DomainId),
    /// One frame of the victim's frozen memory image is flipped, so the
    /// resume-time digest check fails.
    FrameCorruption(DomainId),
    /// The victim's 16 KB execution-state record vanishes from preserved
    /// memory: the domain freezes fine but can never resume.
    ExecStateTruncation(DomainId),
    /// The victim's resume fails outright in the new VMM.
    ResumeFailure(DomainId),
    /// Domain 0's boot hangs for the given extra milliseconds — the
    /// "dom0 hang" fault, stretching detection and recovery time.
    Dom0Hang {
        /// Extra boot delay, in milliseconds.
        extra_ms: u64,
    },
}

impl FaultKind {
    /// The domain this fault targets, if it is domain-specific.
    pub fn victim(&self) -> Option<DomainId> {
        match self {
            FaultKind::P2mCorruption(d)
            | FaultKind::FrameCorruption(d)
            | FaultKind::ExecStateTruncation(d)
            | FaultKind::ResumeFailure(d) => Some(*d),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::VmmCrash => write!(f, "vmm-crash"),
            FaultKind::XexecFailure => write!(f, "xexec-failure"),
            FaultKind::P2mCorruption(d) => write!(f, "p2m-corruption({d})"),
            FaultKind::FrameCorruption(d) => write!(f, "frame-corruption({d})"),
            FaultKind::ExecStateTruncation(d) => write!(f, "exec-state-truncation({d})"),
            FaultKind::ResumeFailure(d) => write!(f, "resume-failure({d})"),
            FaultKind::Dom0Hang { extra_ms } => write!(f, "dom0-hang(+{extra_ms}ms)"),
        }
    }
}

/// When an armed fault fires, counted over the consultations that match
/// the arm (same injection point, compatible domain context).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every matching consultation.
    Always,
    /// Fire exactly once, on the `n`-th matching consultation (1-based).
    Nth(u64),
    /// Fire on every `n`-th matching consultation.
    EveryNth(u64),
    /// Fire independently with probability `p` per matching consultation,
    /// drawn from the arm's private seeded stream.
    Chance(f64),
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Always => write!(f, "always"),
            Trigger::Nth(n) => write!(f, "nth={n}"),
            Trigger::EveryNth(n) => write!(f, "every={n}"),
            Trigger::Chance(p) => write!(f, "p={p}"),
        }
    }
}

/// One armed fault: a kind, a trigger, and an injection point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Where in the pipeline the fault is considered.
    pub point: InjectPoint,
    /// When it fires.
    pub trigger: Trigger,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl fmt::Display for Arm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} [{}]", self.kind, self.point, self.trigger)
    }
}

/// A complete, seeded fault plan.
///
/// ```
/// use rh_faults::plan::{FaultKind, FaultPlan, Trigger};
/// use rh_vmm::InjectPoint;
///
/// let plan = FaultPlan::new(42)
///     .arm(InjectPoint::SuspendEnd, Trigger::Nth(3), FaultKind::VmmCrash)
///     .arm(
///         InjectPoint::QuickReload,
///         Trigger::Chance(0.5),
///         FaultKind::XexecFailure,
///     );
/// assert_eq!(plan.arms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            arms: Vec::new(),
        }
    }

    /// Adds an armed fault, builder-style.
    #[must_use]
    pub fn arm(mut self, point: InjectPoint, trigger: Trigger, kind: FaultKind) -> Self {
        self.arms.push(Arm {
            point,
            trigger,
            kind,
        });
        self
    }

    /// The seed all of this plan's randomness derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed faults, in arming order.
    pub fn arms(&self) -> &[Arm] {
        &self.arms
    }

    /// Whether the plan arms no faults at all.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan(seed={:#x}):", self.seed)?;
        if self.arms.is_empty() {
            return write!(f, " (no faults armed)");
        }
        for (i, arm) in self.arms.iter().enumerate() {
            let sep = if i == 0 { " " } else { "; " };
            write!(f, "{sep}{arm}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_arms_in_order() {
        let plan = FaultPlan::new(7)
            .arm(
                InjectPoint::StageImage,
                Trigger::Always,
                FaultKind::VmmCrash,
            )
            .arm(
                InjectPoint::ResumeStart,
                Trigger::Nth(2),
                FaultKind::ResumeFailure(DomainId(3)),
            );
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.arms()[0].point, InjectPoint::StageImage);
        assert_eq!(plan.arms()[1].kind.victim(), Some(DomainId(3)));
        assert!(!plan.is_empty());
    }

    #[test]
    fn display_is_stable() {
        let plan = FaultPlan::new(0xAB).arm(
            InjectPoint::SuspendEnd,
            Trigger::Chance(0.25),
            FaultKind::FrameCorruption(DomainId(1)),
        );
        let s = plan.to_string();
        assert!(s.contains("seed=0xab"), "{s}");
        assert!(s.contains("frame-corruption"), "{s}");
        assert!(s.contains("p=0.25"), "{s}");
        assert!(FaultPlan::new(1).to_string().contains("no faults"));
    }

    #[test]
    fn victims_only_on_domain_specific_kinds() {
        assert_eq!(FaultKind::VmmCrash.victim(), None);
        assert_eq!(FaultKind::Dom0Hang { extra_ms: 5 }.victim(), None);
        assert_eq!(
            FaultKind::ExecStateTruncation(DomainId(2)).victim(),
            Some(DomainId(2))
        );
    }
}
