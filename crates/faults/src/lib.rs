//! # rh-faults — deterministic fault injection and crash recovery
//!
//! The paper rejuvenates the VMM *proactively* because a crashed VMM takes
//! every VM down with it. This crate supplies the other half of that
//! argument: it makes the crash happen — deterministically — and measures
//! what recovery costs.
//!
//! * [`plan`] — a seeded [`FaultPlan`] DSL: faults ([`FaultKind`]) armed
//!   at named [`InjectPoint`](rh_vmm::InjectPoint)s with [`Trigger`]
//!   rules. All randomness (which draw fires a `Chance` trigger, which
//!   bits a corruption flips) comes from per-arm forked
//!   [`SimRng`](rh_sim::rng::SimRng) streams derived from the plan seed,
//!   so a plan replays byte-identically.
//! * [`inject`] — the [`Injector`], an implementation of
//!   [`rh_vmm::FaultHook`] that evaluates the plan at each consultation.
//! * [`recovery`] — a ReHype-style recovery engine
//!   ([`watch_and_recover`]): a watchdog detects the failed VMM,
//!   micro-reboots it, salvages every domain whose frozen image
//!   validates, and cold-boots the rest, producing a [`RecoveryReport`]
//!   (detection latency, MTTR, salvaged vs. lost domains).
//!
//! ## Example: crash the VMM mid-reboot and salvage the guests
//!
//! ```
//! use rh_faults::plan::{FaultKind, FaultPlan, Trigger};
//! use rh_faults::recovery::{watch_and_recover, RecoveryConfig, RecoveryPolicy};
//! use rh_guest::services::ServiceKind;
//! use rh_vmm::harness::booted_host;
//! use rh_vmm::InjectPoint;
//!
//! let mut sim = booted_host(3, ServiceKind::Ssh);
//! // The VMM dies the moment the second guest's image is frozen.
//! let plan = FaultPlan::new(0xFA_07).arm(
//!     InjectPoint::SuspendEnd,
//!     Trigger::Nth(2),
//!     FaultKind::VmmCrash,
//! );
//! sim.host_mut().arm_fault_hook(Box::new(rh_faults::inject::Injector::new(&plan)));
//! {
//!     let (host, sched) = sim.simulation_mut().parts_mut();
//!     host.warm_reboot(sched); // never completes: the fault fires first
//! }
//! let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
//!     .expect("incident recovered");
//! assert!(report.salvaged.len() >= 2, "frozen guests survive the crash");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod inject;
pub mod plan;
pub mod recovery;

pub use inject::Injector;
pub use plan::{Arm, FaultKind, FaultPlan, Trigger};
pub use recovery::{watch_and_recover, RecoveryConfig, RecoveryPolicy, RecoveryReport};
