//! ReHype-style recovery: detect the failed VMM, micro-reboot it, and
//! salvage every domain whose frozen state validates.
//!
//! The engine is a watchdog loop over the blocking
//! [`HostSim`] driver. When the VMM dies
//! (detected as *down and no reboot in progress*), the configured
//! [`RecoveryPolicy`] decides what happens next:
//!
//! * [`Microreboot`](RecoveryPolicy::Microreboot) — the ReHype move:
//!   quick-reload a fresh VMM underneath the frozen domains, validate
//!   each one's P2M extent and memory digest, resume the healthy ones and
//!   cold-boot the rest (the host retries failed creates with bounded
//!   exponential backoff).
//! * [`ColdReboot`](RecoveryPolicy::ColdReboot) — the baseline: hardware
//!   reset, every domain is lost and rebuilt from disk.
//!
//! Each handled incident yields a [`RecoveryReport`] with the detection
//! latency, the mean time to repair, and the salvaged/lost split — the
//! quantities the reliability sweep turns into availability curves.

use std::fmt;

use rh_sim::time::{SimDuration, SimTime};
use rh_vmm::harness::HostSim;
use rh_vmm::DomainId;

/// What to do about a failed VMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Micro-reboot the VMM and salvage validated domains (ReHype).
    Microreboot,
    /// Hardware reset; rebuild every domain from disk (baseline).
    ColdReboot,
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::Microreboot => write!(f, "microreboot"),
            RecoveryPolicy::ColdReboot => write!(f, "cold-reboot"),
        }
    }
}

/// Watchdog and recovery parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// What to do when the VMM fails.
    pub policy: RecoveryPolicy,
    /// Granularity of the failure-detection poll. A real watchdog costs
    /// this much detection latency on average; ours costs exactly this
    /// much in the worst case.
    pub watchdog: SimDuration,
    /// How long to wait for the recovery itself to complete before
    /// declaring the incident unrecoverable.
    pub settle_cap: SimDuration,
}

impl RecoveryConfig {
    /// Defaults: 1 s watchdog tick, 2 h settle cap.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryConfig {
            policy,
            watchdog: SimDuration::from_secs(1),
            settle_cap: SimDuration::from_secs(2 * 3600),
        }
    }

    /// Overrides the watchdog tick, builder-style.
    #[must_use]
    pub fn with_watchdog(mut self, tick: SimDuration) -> Self {
        self.watchdog = tick;
        self
    }
}

/// One handled VMM-failure incident.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// When the fault actually took the VMM down.
    pub fault_at: SimTime,
    /// When the watchdog noticed.
    pub detected_at: SimTime,
    /// When the last affected domain was back in service.
    pub recovered_at: SimTime,
    /// The policy that handled the incident.
    pub policy: RecoveryPolicy,
    /// Domains salvaged with their memory image intact.
    pub salvaged: Vec<DomainId>,
    /// Domains that failed validation (or were never frozen) and came
    /// back via cold boot, losing their memory state.
    pub lost: Vec<DomainId>,
}

impl RecoveryReport {
    /// Fault-to-detection latency.
    pub fn detection_latency(&self) -> SimDuration {
        self.detected_at - self.fault_at
    }

    /// Mean time to repair: fault to full service restoration.
    pub fn mttr(&self) -> SimDuration {
        self.recovered_at - self.fault_at
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: detected {:.3}s after fault, repaired in {:.3}s ({} salvaged, {} lost)",
            self.policy,
            self.detection_latency().as_secs_f64(),
            self.mttr().as_secs_f64(),
            self.salvaged.len(),
            self.lost.len()
        )
    }
}

/// Watches for a VMM failure and drives one recovery to completion.
///
/// Polls at the watchdog tick until the VMM is down with no reboot in
/// flight, commands the configured recovery, and runs the simulation
/// until the host logs the resulting [`RebootReport`](rh_vmm::RebootReport).
/// Returns `None` if no failure occurs within `cfg.settle_cap`, and a
/// report with `recovered_at == detected_at` (and every domain lost) if
/// the recovery itself fails to settle.
pub fn watch_and_recover(sim: &mut HostSim, cfg: &RecoveryConfig) -> Option<RecoveryReport> {
    let deadline = sim.now() + cfg.settle_cap;
    // Detection loop: a real watchdog heartbeats at this granularity.
    while !vmm_failed(sim) {
        if sim.now() >= deadline {
            return None;
        }
        sim.run_for(cfg.watchdog);
    }
    let detected_at = sim.now();
    let fault_at = sim.host().last_fault_at().unwrap_or(detected_at);
    let reports_before = sim.host().reports().len();

    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        match cfg.policy {
            RecoveryPolicy::Microreboot => host.recover_microreboot(sched),
            RecoveryPolicy::ColdReboot => host.recover_cold(sched),
        }
    }

    let settled = sim.run_until(cfg.settle_cap, |h| h.reports().len() > reports_before);
    if !settled {
        // Unrecoverable within the cap: report the incident as a total
        // loss so callers can still account for it.
        let incident = RecoveryReport {
            fault_at,
            detected_at,
            recovered_at: detected_at,
            policy: cfg.policy,
            salvaged: Vec::new(),
            lost: sim.host().domu_ids(),
        };
        account(sim, &incident);
        sim.host_mut().stats.inc("recovery.unsettled");
        return Some(incident);
    }

    // The settled predicate guarantees a report exists.
    let report = sim.host().reports().last().cloned()?;
    let lost = report.cold_booted.clone();
    let salvaged = sim
        .host()
        .domu_ids()
        .into_iter()
        .filter(|d| !lost.contains(d))
        .collect();
    let incident = RecoveryReport {
        fault_at,
        detected_at,
        recovered_at: report.completed_at,
        policy: cfg.policy,
        salvaged,
        lost,
    };
    account(sim, &incident);
    Some(incident)
}

/// Folds one handled incident into the host's metrics registry: incident
/// counter, salvaged/lost domain counts, and the detection-latency and
/// MTTR timers the reliability sweep reads back.
fn account(sim: &mut HostSim, incident: &RecoveryReport) {
    let stats = &mut sim.host_mut().stats;
    stats.inc("recovery.incident");
    stats.add("recovery.salvaged_domains", incident.salvaged.len() as u64);
    stats.add("recovery.lost_domains", incident.lost.len() as u64);
    stats.record("recovery.detection", incident.detection_latency());
    stats.record("recovery.mttr", incident.mttr());
}

/// The detection predicate: the VMM is down and nobody is already
/// handling it.
fn vmm_failed(sim: &HostSim) -> bool {
    let h = sim.host();
    !h.vmm().is_running() && !h.reboot_in_progress()
}
