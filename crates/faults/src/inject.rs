//! The [`Injector`]: evaluates a [`FaultPlan`] at each host consultation.
//!
//! Determinism contract: each arm owns a private
//! [`SimRng`] stream forked from the plan seed by
//! arm index, and draws from it only when the arm's trigger or payload
//! needs randomness. The host's own RNG is never touched, so an armed
//! plan perturbs the simulation *only* through the faults it fires — and
//! an unarmed host takes no draws at all.

use rh_sim::rng::SimRng;
use rh_vmm::{FaultAction, FaultContext, FaultHook, InjectPoint};

use crate::plan::{Arm, FaultKind, FaultPlan, Trigger};

/// Per-arm evaluation state.
#[derive(Debug)]
struct ArmState {
    arm: Arm,
    rng: SimRng,
    /// Matching consultations seen so far.
    matches: u64,
    /// Times this arm actually fired.
    hits: u64,
}

impl ArmState {
    /// Whether `ctx` is a consultation this arm cares about. Domain-
    /// specific kinds skip consultations that name a *different* domain;
    /// consultations with no domain context match every arm at the point.
    fn matches(&self, point: InjectPoint, ctx: &FaultContext) -> bool {
        if self.arm.point != point {
            return false;
        }
        match (self.arm.kind.victim(), ctx.domain) {
            (Some(victim), Some(dom)) => victim == dom,
            _ => true,
        }
    }

    /// Evaluates the trigger for one matching consultation.
    fn fires(&mut self) -> bool {
        self.matches += 1;
        match self.arm.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => self.matches == n,
            Trigger::EveryNth(n) => n > 0 && self.matches % n == 0,
            Trigger::Chance(p) => self.rng.chance(p),
        }
    }

    /// The concrete action this arm's kind produces, drawing any payload
    /// randomness (corruption masks, target offsets) from the arm stream.
    fn action(&mut self) -> FaultAction {
        match self.arm.kind {
            FaultKind::VmmCrash => FaultAction::CrashVmm,
            FaultKind::XexecFailure => FaultAction::CorruptStagedImage {
                xor: nonzero(&mut self.rng),
            },
            FaultKind::P2mCorruption(dom) => FaultAction::CorruptP2m {
                dom,
                extent: self.rng.below(8) as usize,
                xor: nonzero(&mut self.rng),
            },
            FaultKind::FrameCorruption(dom) => FaultAction::CorruptFrame {
                dom,
                page: self.rng.next_u64(),
                xor: nonzero(&mut self.rng),
            },
            FaultKind::ExecStateTruncation(dom) => FaultAction::DropExecState { dom },
            FaultKind::ResumeFailure(dom) => FaultAction::FailResume { dom },
            FaultKind::Dom0Hang { extra_ms } => FaultAction::HangDom0 { extra_ms },
        }
    }
}

/// A nonzero corruption mask (XOR with zero would be a no-op "fault").
fn nonzero(rng: &mut SimRng) -> u64 {
    let x = rng.next_u64();
    if x == 0 {
        1
    } else {
        x
    }
}

/// Evaluates a [`FaultPlan`] as a [`FaultHook`].
///
/// Arm the injector on a host with
/// [`Host::arm_fault_hook`](rh_vmm::Host::arm_fault_hook); the host then
/// consults it at every instrumented point of the reboot pipeline.
#[derive(Debug)]
pub struct Injector {
    arms: Vec<ArmState>,
}

impl Injector {
    /// Builds the injector, forking one private RNG stream per arm from
    /// the plan seed.
    pub fn new(plan: &FaultPlan) -> Self {
        let arms = plan
            .arms()
            .iter()
            .enumerate()
            .map(|(i, arm)| ArmState {
                arm: *arm,
                rng: SimRng::from_seed(plan.seed()).fork(i as u64),
                matches: 0,
                hits: 0,
            })
            .collect();
        Injector { arms }
    }

    /// Total times any arm fired.
    pub fn hits(&self) -> u64 {
        self.arms.iter().map(|a| a.hits).sum()
    }

    /// Total matching consultations across all arms.
    pub fn consults(&self) -> u64 {
        self.arms.iter().map(|a| a.matches).sum()
    }
}

impl FaultHook for Injector {
    fn consult(&mut self, point: InjectPoint, ctx: &FaultContext) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        for state in &mut self.arms {
            if !state.matches(point, ctx) {
                continue;
            }
            if state.fires() {
                state.hits += 1;
                actions.push(state.action());
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_sim::time::SimTime;
    use rh_vmm::DomainId;

    fn ctx(dom: Option<u32>) -> FaultContext {
        FaultContext {
            now: SimTime::ZERO,
            domain: dom.map(DomainId),
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::new(1).arm(
            InjectPoint::SuspendEnd,
            Trigger::Nth(3),
            FaultKind::VmmCrash,
        );
        let mut inj = Injector::new(&plan);
        let fired: Vec<usize> = (0..6)
            .map(|_| inj.consult(InjectPoint::SuspendEnd, &ctx(None)).len())
            .collect();
        assert_eq!(fired, vec![0, 0, 1, 0, 0, 0]);
        assert_eq!(inj.hits(), 1);
        assert_eq!(inj.consults(), 6);
    }

    #[test]
    fn wrong_point_and_wrong_domain_do_not_count() {
        let plan = FaultPlan::new(1).arm(
            InjectPoint::ResumeStart,
            Trigger::Nth(1),
            FaultKind::ResumeFailure(DomainId(2)),
        );
        let mut inj = Injector::new(&plan);
        // Wrong point: ignored entirely.
        assert!(inj
            .consult(InjectPoint::SuspendEnd, &ctx(Some(2)))
            .is_empty());
        // Right point, different domain: skipped, not counted.
        assert!(inj
            .consult(InjectPoint::ResumeStart, &ctx(Some(1)))
            .is_empty());
        assert_eq!(inj.consults(), 0);
        // Right point, victim domain: the first matching consultation fires.
        let actions = inj.consult(InjectPoint::ResumeStart, &ctx(Some(2)));
        assert_eq!(actions, vec![FaultAction::FailResume { dom: DomainId(2) }]);
    }

    #[test]
    fn chance_trigger_replays_identically() {
        let plan = FaultPlan::new(0xC0FFEE).arm(
            InjectPoint::QuickReload,
            Trigger::Chance(0.5),
            FaultKind::XexecFailure,
        );
        let run = |plan: &FaultPlan| -> Vec<Vec<FaultAction>> {
            let mut inj = Injector::new(plan);
            (0..32)
                .map(|_| inj.consult(InjectPoint::QuickReload, &ctx(None)))
                .collect()
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b, "same plan, same seed => identical firing pattern");
        assert!(
            a.iter().any(|v| !v.is_empty()),
            "p=0.5 fires somewhere in 32"
        );
        assert!(
            a.iter().any(|v| v.is_empty()),
            "p=0.5 skips somewhere in 32"
        );
    }

    #[test]
    fn corruption_masks_are_nonzero() {
        let plan = FaultPlan::new(9).arm(
            InjectPoint::QuickReload,
            Trigger::Always,
            FaultKind::FrameCorruption(DomainId(1)),
        );
        let mut inj = Injector::new(&plan);
        for _ in 0..16 {
            for action in inj.consult(InjectPoint::QuickReload, &ctx(None)) {
                match action {
                    FaultAction::CorruptFrame { xor, .. } => assert_ne!(xor, 0),
                    other => panic!("unexpected action {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_nth_fires_periodically() {
        let plan = FaultPlan::new(1).arm(
            InjectPoint::StageImage,
            Trigger::EveryNth(2),
            FaultKind::XexecFailure,
        );
        let mut inj = Injector::new(&plan);
        let fired: Vec<usize> = (0..6)
            .map(|_| inj.consult(InjectPoint::StageImage, &ctx(None)).len())
            .collect();
        assert_eq!(fired, vec![0, 1, 0, 1, 0, 1]);
    }
}
