//! Integration tests: fault plans driven through the full host world,
//! recovered by the ReHype-style engine.

use rh_faults::plan::{FaultKind, FaultPlan, Trigger};
use rh_faults::recovery::{watch_and_recover, RecoveryConfig, RecoveryPolicy, RecoveryReport};
use rh_faults::Injector;
use rh_guest::services::ServiceKind;
use rh_sim::time::SimDuration;
use rh_vmm::config::HostConfig;
use rh_vmm::domain::DomainSpec;
use rh_vmm::harness::{booted_host, HostSim, DEFAULT_WAIT_CAP};
use rh_vmm::{DomainId, InjectPoint, RebootStrategy};

/// Arms `plan` on a freshly booted `n`-guest host, commands a warm
/// reboot (the pipeline the plan's faults live in), and drives one
/// recovery under `policy`.
fn run_incident(
    n: u32,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> (HostSim, Option<RecoveryReport>) {
    let mut sim = booted_host(n, ServiceKind::Ssh);
    sim.host_mut().arm_fault_hook(Box::new(Injector::new(plan)));
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.warm_reboot(sched);
    }
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(policy));
    (sim, report)
}

fn digests(sim: &HostSim) -> Vec<(DomainId, u64)> {
    sim.host()
        .domu_ids()
        .into_iter()
        .map(|id| (id, sim.host().domain_digest(id).expect("domain exists")))
        .collect()
}

#[test]
fn same_plan_same_seed_replays_byte_identically() {
    let plan = FaultPlan::new(0xD5A1)
        .arm(
            InjectPoint::SuspendEnd,
            Trigger::Chance(0.7),
            FaultKind::VmmCrash,
        )
        .arm(
            InjectPoint::QuickReload,
            Trigger::Chance(0.5),
            FaultKind::FrameCorruption(DomainId(2)),
        );
    let (sim_a, rep_a) = run_incident(4, &plan, RecoveryPolicy::Microreboot);
    let (sim_b, rep_b) = run_incident(4, &plan, RecoveryPolicy::Microreboot);
    let rep_a = rep_a.expect("p=0.7 over four suspends fires");
    let rep_b = rep_b.expect("identical replay fires identically");
    assert_eq!(rep_a.to_string(), rep_b.to_string());
    assert_eq!(rep_a.salvaged, rep_b.salvaged);
    assert_eq!(rep_a.lost, rep_b.lost);
    assert_eq!(rep_a.fault_at, rep_b.fault_at);
    assert_eq!(rep_a.recovered_at, rep_b.recovered_at);
    assert_eq!(sim_a.now(), sim_b.now());
    assert_eq!(digests(&sim_a), digests(&sim_b));
}

#[test]
fn microreboot_salvages_frozen_domains_with_state_intact() {
    let mut sim = booted_host(4, ServiceKind::Ssh);
    let before = digests(&sim);
    let gens_before: Vec<u64> = sim
        .host()
        .domu_ids()
        .iter()
        .map(|id| service_generation(&sim, *id))
        .collect();

    // The VMM dies the moment the second guest's image is frozen: two
    // guests are already suspended, two are still running.
    let plan = FaultPlan::new(7).arm(
        InjectPoint::SuspendEnd,
        Trigger::Nth(2),
        FaultKind::VmmCrash,
    );
    sim.host_mut()
        .arm_fault_hook(Box::new(Injector::new(&plan)));
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.warm_reboot(sched);
    }
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
        .expect("the crash is detected and recovered");

    // ReHype's claim: the VMM was replaced, the VMs never noticed.
    assert_eq!(report.salvaged.len(), 4, "all guests salvaged: {report}");
    assert!(report.lost.is_empty(), "{report}");
    assert_eq!(digests(&sim), before, "memory images survived the crash");
    let gens_after: Vec<u64> = sim
        .host()
        .domu_ids()
        .iter()
        .map(|id| service_generation(&sim, *id))
        .collect();
    assert_eq!(gens_after, gens_before, "service processes survived");
    assert!(sim.host().all_services_up());
    assert_eq!(sim.host().vmm().generation(), 2, "VMM itself was replaced");
    assert!(!sim.host().reboot_in_progress());
    // Detection is bounded by the watchdog tick; repair is on the warm
    // scale (tens of seconds), not the cold scale (minutes).
    assert!(report.detection_latency().as_secs_f64() <= 1.5, "{report}");
    assert!(report.mttr().as_secs_f64() < 60.0, "{report}");
}

#[test]
fn corrupted_domain_is_cold_booted_never_resumed() {
    // Crash mid-suspend, then flip one frame of domain 1's frozen image
    // while the replacement VMM loads: validation must catch it.
    let plan = FaultPlan::new(11)
        .arm(
            InjectPoint::SuspendEnd,
            Trigger::Nth(2),
            FaultKind::VmmCrash,
        )
        .arm(
            InjectPoint::QuickReload,
            Trigger::Always,
            FaultKind::FrameCorruption(DomainId(1)),
        );
    let (sim, report) = run_incident(4, &plan, RecoveryPolicy::Microreboot);
    let report = report.expect("recovered");

    assert_eq!(report.lost, vec![DomainId(1)], "{report}");
    assert_eq!(report.salvaged.len(), 3, "{report}");
    // The recovery invariant: a domain is either resumed with its digest
    // intact or cold-booted — never resumed corrupted.
    let host_report = sim.host().reports().last().expect("report logged");
    assert!(
        host_report.corrupted.is_empty(),
        "corrupted domain resumed: {:?}",
        host_report.corrupted
    );
    assert_eq!(host_report.cold_booted, vec![DomainId(1)]);
    assert!(sim.host().all_services_up());
    // The cold-booted guest restarted its service process.
    assert_eq!(service_generation(&sim, DomainId(1)), 2);
    assert_eq!(service_generation(&sim, DomainId(2)), 1);
}

#[test]
fn corruption_defeats_the_digest_early_out() {
    // Regression for the epoch-stamp early-out: flipping a frozen frame
    // between suspend and resume must force the full rehash (the dirty
    // log records the write, so the early-out cannot fire for the victim)
    // and the corruption must still be detected. Without recovery the
    // domain is flagged in the report rather than cold-booted.
    let plan = FaultPlan::new(23).arm(
        InjectPoint::QuickReload,
        Trigger::Always,
        FaultKind::FrameCorruption(DomainId(1)),
    );
    let mut sim = booted_host(3, ServiceKind::Ssh);
    sim.host_mut()
        .arm_fault_hook(Box::new(Injector::new(&plan)));
    let report = sim.reboot_and_wait(RebootStrategy::Warm);

    assert_eq!(report.corrupted, vec![DomainId(1)], "corruption missed");
    let stats = &sim.host().stats;
    assert!(
        stats.counter("digest.full_rehash") >= 1,
        "the corrupted domain must pay the full rehash"
    );
    assert_eq!(
        stats.counter("digest.early_out"),
        2,
        "the two untouched domains still early-out"
    );
}

#[test]
fn injected_resume_failure_falls_back_without_leaking_channels() {
    let mut sim = booted_host(3, ServiceKind::Ssh);
    let channels_before: Vec<usize> = sim
        .host()
        .domu_ids()
        .iter()
        .map(|id| sim.host().domain(*id).expect("exists").channels.len())
        .collect();

    // Crash before any guest suspends, then make domain 2's resume fail
    // outright in the replacement VMM.
    let plan = FaultPlan::new(13)
        .arm(
            InjectPoint::StageImage,
            Trigger::Always,
            FaultKind::VmmCrash,
        )
        .arm(
            InjectPoint::ResumeStart,
            Trigger::Always,
            FaultKind::ResumeFailure(DomainId(2)),
        );
    sim.host_mut()
        .arm_fault_hook(Box::new(Injector::new(&plan)));
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.warm_reboot(sched);
    }
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
        .expect("recovered");

    assert_eq!(report.lost, vec![DomainId(2)], "{report}");
    assert!(sim.host().all_services_up());
    // Satellite: detach_for_suspend / reestablish_after_resume must
    // round-trip — salvaged guests get their channels back, and the
    // cold-booted guest starts a fresh standard set. No leak either way.
    let channels_after: Vec<usize> = sim
        .host()
        .domu_ids()
        .iter()
        .map(|id| sim.host().domain(*id).expect("exists").channels.len())
        .collect();
    assert_eq!(channels_after, channels_before, "channel counts drifted");
}

#[test]
fn corrupted_staged_image_aborts_reload_and_recovery_salvages_all() {
    // The staged next-VMM image is corrupted during a routine warm
    // reboot. Quick reload's integrity check rejects it, the run is
    // abandoned with the VMM down — and the recovery engine restages a
    // clean image and salvages every (already frozen) guest.
    let plan = FaultPlan::new(17).arm(
        InjectPoint::StageImage,
        Trigger::Always,
        FaultKind::XexecFailure,
    );
    let (sim, report) = run_incident(3, &plan, RecoveryPolicy::Microreboot);
    let report = report.expect("reload failure detected and recovered");

    assert_eq!(report.salvaged.len(), 3, "{report}");
    assert!(report.lost.is_empty(), "{report}");
    assert!(sim.host().all_services_up());
    assert_eq!(sim.host().vmm().generation(), 2);
    let errors = sim.host().errors();
    assert!(
        errors
            .iter()
            .any(|e| format!("{e:?}").contains("IntegrityViolation")),
        "expected an integrity violation in {errors:?}"
    );
}

#[test]
fn cold_policy_loses_everything_and_takes_longer() {
    let crash_plan = FaultPlan::new(19).arm(
        InjectPoint::SuspendEnd,
        Trigger::Nth(1),
        FaultKind::VmmCrash,
    );
    let (_, warm) = run_incident(3, &crash_plan, RecoveryPolicy::Microreboot);
    let (sim, cold) = run_incident(3, &crash_plan, RecoveryPolicy::ColdReboot);
    let warm = warm.expect("recovered");
    let cold = cold.expect("recovered");

    assert!(cold.salvaged.is_empty(), "{cold}");
    assert_eq!(cold.lost.len(), 3, "{cold}");
    assert!(sim.host().all_services_up());
    assert_eq!(
        sim.host().reports().last().expect("logged").strategy,
        RebootStrategy::Cold
    );
    assert!(
        cold.mttr().as_secs_f64() > 2.0 * warm.mttr().as_secs_f64(),
        "cold MTTR {} vs warm MTTR {}",
        cold.mttr(),
        warm.mttr()
    );
}

#[test]
fn crash_mid_stream_recovers_and_the_next_streamed_reboot_is_clean() {
    let mut sim = booted_host(3, ServiceKind::Ssh);
    // The VMM dies the instant the second restored guest's resume handler
    // finishes: the first guest is already resumed with its residual image
    // still streaming in from disk.
    let plan = FaultPlan::new(29).arm(
        InjectPoint::ResumeStart,
        Trigger::Nth(2),
        FaultKind::VmmCrash,
    );
    sim.host_mut()
        .arm_fault_hook(Box::new(Injector::new(&plan)));
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.streamed_reboot(sched);
    }
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
        .expect("the mid-stream crash is detected and recovered");

    // The streams died with the VMM: no ghost bookkeeping survives, and
    // the interrupted reboot never counts a completion.
    assert!(
        sim.host().stats.counter("stream.started") >= 1,
        "the crash must land while a stream is in flight"
    );
    assert_eq!(sim.host().stats.counter("stream.completed"), 0);
    assert!(sim.host().streaming_domains().is_empty());
    assert!(sim.host().all_services_up(), "{report}");
    assert!(!sim.host().reboot_in_progress());

    // The recovered host streams a whole reboot through cleanly.
    let second = sim.reboot_and_wait(RebootStrategy::Streamed);
    assert!(second.corrupted.is_empty(), "{second:?}");
    let drained = sim.run_until(DEFAULT_WAIT_CAP, |h| h.streaming_domains().is_empty());
    assert!(drained, "post-recovery stream-in never drained");
    assert_eq!(sim.host().stats.counter("stream.completed"), 3);
    assert!(sim.host().all_services_up());
}

#[test]
fn crash_mid_delta_snapshot_recovers_and_incremental_still_saves() {
    let cfg = HostConfig::paper_testbed()
        .with_domain(DomainSpec::standard("a", ServiceKind::Ssh))
        .with_domain(DomainSpec::standard("b", ServiceKind::Ssh))
        .with_snapshot_interval(Some(SimDuration::from_secs(30)));
    let mut sim = HostSim::new(cfg);
    sim.power_on_and_wait();
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.start_dirty_writer(sched, DomainId(1), 4, SimDuration::from_secs(10));
    }
    let pending = sim.run_until(SimDuration::from_secs(600), |h| h.snapshot_in_flight());
    assert!(pending, "a background delta write must start");

    // The VMM dies with the snapshot write still on the disk queue.
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.fault_vmm_crash(sched);
    }
    assert!(
        !sim.host().snapshot_in_flight(),
        "the in-flight delta died with the VMM"
    );
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
        .expect("the mid-snapshot crash is detected and recovered");
    assert!(sim.host().all_services_up(), "{report}");

    // The ticker resumes on the recovered host and the half-written
    // snapshot was discarded, not folded into a chain: the next
    // incremental reboot still saves and restores everything intact.
    let ticked = sim.run_until(SimDuration::from_secs(600), |h| {
        h.stats.counter("snapshot.delta") >= 1
    });
    assert!(ticked, "no snapshot completed after recovery");
    let second = sim.reboot_and_wait(RebootStrategy::Incremental);
    assert!(second.corrupted.is_empty(), "{second:?}");
    assert!(sim.host().stats.counter("incremental.save_bytes") > 0);
    assert!(sim.host().all_services_up());
}

#[test]
fn crash_during_deflate_leaves_the_p2m_and_allocator_consistent() {
    use rh_vmm::{dispatch_hooked, Domain, Hypercall, HypercallError, Vmm, VmmState};
    use std::collections::BTreeMap;

    // A guest grows back toward spec (balloon-in, the cell's revive
    // deflate) and the VMM dies at the hypercall boundary. The crash
    // lands before any frame moves: the P2M must keep its exact
    // pre-call geometry, stay injective, and a recovered VMM must be
    // able to retry the same deflate cleanly.
    let mut vmm = Vmm::new(2 * rh_memory::frame::FRAMES_PER_GIB);
    let mut contents = rh_memory::contents::FrameContents::new();
    let mut domains = BTreeMap::new();
    let mut guest = Domain::new(
        DomainId(1),
        DomainSpec::standard("fn-vm", ServiceKind::Ssh),
        0,
    );
    vmm.create_domain(&mut guest, &mut contents)
        .expect("guest fits");
    domains.insert(DomainId(1), guest);

    // Squeeze first, so the deflate has room to grow back into.
    let spec_pages = domains[&DomainId(1)].p2m.total_pages();
    rh_vmm::dispatch(
        &mut vmm,
        &mut domains,
        &mut contents,
        DomainId(1),
        Hypercall::BalloonOut { pages: 4_096 },
    )
    .expect("balloon out succeeds");
    let squeezed = domains[&DomainId(1)].p2m.total_pages();
    assert_eq!(squeezed, spec_pages - 4_096);
    let ranges_before = domains[&DomainId(1)].p2m.machine_ranges();

    let plan = FaultPlan::new(31).arm(InjectPoint::Hypercall, Trigger::Nth(1), FaultKind::VmmCrash);
    let mut hook = Injector::new(&plan);
    let err = dispatch_hooked(
        &mut vmm,
        &mut domains,
        &mut contents,
        DomainId(1),
        Hypercall::BalloonIn { pages: 4_096 },
        &mut hook,
        rh_sim::time::SimTime::ZERO,
    )
    .expect_err("the injected crash must abort the deflate");
    assert!(matches!(err, HypercallError::Vmm(_)), "{err:?}");
    assert_eq!(vmm.state(), VmmState::Down);

    // Nothing moved: same page count, same machine frames, no overlap.
    // (Recovery-side retry — a recovered host deflating the same guest
    // back to spec — is covered end to end by the harness test below.)
    let dom = &domains[&DomainId(1)];
    assert_eq!(dom.p2m.total_pages(), squeezed);
    assert_eq!(dom.p2m.machine_ranges(), ranges_before);
    dom.p2m
        .check_machine_disjoint()
        .expect("P2M stayed injective across the crash");
}

#[test]
fn ballooned_domain_survives_vmm_crash_and_deflates_after_recovery() {
    // The cell's steady state: a guest squeezed by reclaim-under-pressure
    // when the VMM crashes mid-warm-reboot. Recovery must salvage the
    // shrunk geometry bit for bit (the frozen image carries the ballooned
    // P2M), and the recovered host must still be able to deflate the
    // guest back to spec.
    let mut sim = booted_host(3, ServiceKind::Ssh);
    let id = sim.host().domu_ids()[0];
    let spec_pages = sim.host().domain(id).expect("exists").p2m.total_pages();
    let squeeze = spec_pages / 4;
    sim.host_mut()
        .balloon(id, -(squeeze as i64))
        .expect("squeeze succeeds");
    let shrunk = sim.host().domain(id).expect("exists").p2m.total_pages();
    let digest_before = sim.host().domain_digest(id).expect("digest");

    let plan = FaultPlan::new(37).arm(
        InjectPoint::SuspendEnd,
        Trigger::Nth(2),
        FaultKind::VmmCrash,
    );
    sim.host_mut()
        .arm_fault_hook(Box::new(Injector::new(&plan)));
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.warm_reboot(sched);
    }
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
        .expect("the crash is detected and recovered");
    assert_eq!(report.salvaged.len(), 3, "{report}");
    assert!(report.lost.is_empty(), "{report}");

    let d = sim.host().domain(id).expect("exists");
    assert_eq!(d.p2m.total_pages(), shrunk, "ballooned geometry salvaged");
    assert_eq!(
        sim.host().domain_digest(id).expect("digest"),
        digest_before,
        "squeezed image changed across crash + recovery"
    );

    // And the recovered host still serves the deflate path: grow the
    // guest back to spec, frame accounting intact.
    sim.host_mut()
        .balloon(id, squeeze as i64)
        .expect("deflate back to spec after recovery");
    assert_eq!(
        sim.host().domain(id).expect("exists").p2m.total_pages(),
        spec_pages
    );
    assert!(sim.host().all_services_up());
}

fn service_generation(sim: &HostSim, id: DomainId) -> u64 {
    sim.host()
        .domain(id)
        .expect("domain exists")
        .service
        .as_ref()
        .expect("service configured")
        .generation()
}
