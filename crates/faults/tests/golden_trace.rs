//! Golden typed-event traces: pins the exact event sequence a canonical
//! 2-domain warm reboot emits, and the recovery sequence of a
//! crash-during-suspend incident driven through `watch_and_recover`. Any
//! reordering of the warm-reboot lifecycle — or a silent change to what
//! the host reports — shows up here as a readable diff of typed events.

use rh_faults::plan::{FaultKind, FaultPlan, Trigger};
use rh_faults::recovery::{watch_and_recover, RecoveryConfig, RecoveryPolicy};
use rh_faults::Injector;
use rh_guest::services::ServiceKind;
use rh_obs::{DomId, Event, Phase, RecoveryKind, StrategyKind};
use rh_vmm::harness::{booted_host, HostSim};
use rh_vmm::{InjectPoint, RebootStrategy};

/// The trace tail starting at the first occurrence of `anchor`.
fn events_from(sim: &HostSim, anchor: &Event) -> Vec<Event> {
    let records = sim.host().trace.records();
    let start = records
        .iter()
        .position(|r| r.event == *anchor)
        .expect("anchor event present in trace");
    records[start..].iter().map(|r| r.event.clone()).collect()
}

/// The quick-reload accounting note for two standard 1 GiB guests.
fn reload_note() -> Event {
    Event::note(
        "vmm",
        "quick reload (2 GiB frozen; 4096 KiB of P2M tables + 32 KiB exec state preserved)",
    )
}

#[test]
fn warm_reboot_emits_the_canonical_typed_sequence() {
    let mut sim = booted_host(2, ServiceKind::Ssh);
    sim.reboot_and_wait(RebootStrategy::Warm);

    // Note the xexec quirk: staging completes *logically* at command time
    // (its PhaseEnd is emitted eagerly, timestamped 1 s later), so the
    // XexecLoad span closes in the log before `XexecStaged` appears.
    let expected = vec![
        Event::RebootCommanded(StrategyKind::Warm),
        Event::PhaseBegin(Phase::Reboot),
        Event::PhaseBegin(Phase::XexecLoad),
        Event::PhaseEnd(Phase::XexecLoad),
        Event::XexecStaged { version: 2 },
        Event::PhaseBegin(Phase::Dom0Shutdown),
        Event::PhaseEnd(Phase::Dom0Shutdown),
        Event::Dom0Down,
        Event::PhaseBegin(Phase::Suspend),
        Event::Suspending(DomId(1)),
        Event::Suspending(DomId(2)),
        Event::Frozen(DomId(1)),
        Event::Frozen(DomId(2)),
        Event::PhaseEnd(Phase::Suspend),
        Event::PhaseBegin(Phase::QuickReload),
        reload_note(),
        Event::PhaseEnd(Phase::QuickReload),
        Event::VmmUp { generation: 2 },
        Event::PhaseBegin(Phase::Dom0Boot),
        Event::PhaseEnd(Phase::Dom0Boot),
        Event::Dom0Up,
        Event::PhaseBegin(Phase::Resume),
        Event::Resuming(DomId(1)),
        Event::Resumed(DomId(1)),
        Event::Resuming(DomId(2)),
        Event::Resumed(DomId(2)),
        Event::PhaseEnd(Phase::Resume),
        Event::PhaseEnd(Phase::Reboot),
        Event::RebootComplete(StrategyKind::Warm),
    ];
    let actual = events_from(&sim, &Event::RebootCommanded(StrategyKind::Warm));
    assert_eq!(
        actual, expected,
        "warm-reboot typed trace diverged from the golden sequence"
    );
}

#[test]
fn recovery_from_crash_during_suspend_emits_the_golden_sequence() {
    // A VMM crash while domU1 is already frozen but domU2 is not: the
    // watchdog detects the silent failure, ReHype microreboots the VMM in
    // place, and both domains are salvaged (frozen memory plus the still-
    // running domU2 suspended state survive the reload).
    let plan = FaultPlan::new(7).arm(
        InjectPoint::SuspendEnd,
        Trigger::Always,
        FaultKind::VmmCrash,
    );
    let mut sim = booted_host(2, ServiceKind::Ssh);
    sim.host_mut()
        .arm_fault_hook(Box::new(Injector::new(&plan)));
    {
        let (host, sched) = sim.simulation_mut().parts_mut();
        host.warm_reboot(sched);
    }
    let report = watch_and_recover(&mut sim, &RecoveryConfig::new(RecoveryPolicy::Microreboot))
        .expect("Always-trigger fires on the first suspend");
    assert_eq!(report.salvaged.len(), 2);
    assert!(report.lost.is_empty());

    let expected = vec![
        Event::VmmFailed,
        Event::RecoveryCommanded(RecoveryKind::Microreboot),
        Event::PhaseBegin(Phase::Reboot),
        Event::Salvaged(DomId(1)),
        Event::Salvaged(DomId(2)),
        Event::PhaseBegin(Phase::QuickReload),
        reload_note(),
        Event::PhaseEnd(Phase::QuickReload),
        Event::VmmUp { generation: 2 },
        Event::PhaseBegin(Phase::Dom0Boot),
        Event::PhaseEnd(Phase::Dom0Boot),
        Event::Dom0Up,
        Event::PhaseBegin(Phase::Resume),
        Event::Resuming(DomId(1)),
        Event::Resumed(DomId(1)),
        Event::Resuming(DomId(2)),
        Event::Resumed(DomId(2)),
        Event::PhaseEnd(Phase::Resume),
        Event::PhaseEnd(Phase::Reboot),
        Event::RebootComplete(StrategyKind::Warm),
    ];
    let actual = events_from(&sim, &Event::VmmFailed);
    assert_eq!(
        actual, expected,
        "recovery typed trace diverged from the golden sequence"
    );

    // Only domU1 froze before the crash — the trace shows the partial
    // suspend the recovery had to cope with.
    let reboot = events_from(&sim, &Event::RebootCommanded(StrategyKind::Warm));
    let frozen: Vec<&Event> = reboot
        .iter()
        .filter(|e| matches!(e, Event::Frozen(_)))
        .collect();
    assert_eq!(frozen, vec![&Event::Frozen(DomId(1))]);

    // Recovery accounting landed in the host metrics registry.
    let stats = &sim.host().stats;
    assert_eq!(stats.counter("recovery.incident"), 1);
    assert_eq!(stats.counter("recovery.salvaged_domains"), 2);
    assert_eq!(stats.counter("recovery.lost_domains"), 0);
    assert_eq!(stats.timer("recovery.mttr").expect("mttr timer").count(), 1);
}
