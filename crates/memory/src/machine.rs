//! The machine memory allocator.
//!
//! [`MachineMemory`] models the host's physical RAM as a set of frames with
//! a deterministic first-fit extent allocator. It supports the two
//! operations the warm-VM reboot depends on:
//!
//! * `allocate` / `release` — ordinary frame allocation for domains and VMM
//!   structures,
//! * `reserve_exact` — claiming *specific* frames: after a quick reload the
//!   new VMM instance walks the preserved P2M-mapping table and re-reserves
//!   exactly the frames each frozen domain owns, *before* its own allocator
//!   hands them out to anything else (paper §4.3).
//!
//! A hardware reset (cold path) calls [`MachineMemory::hardware_reset`],
//! which frees everything — modelling that a reset does not guarantee memory
//! preservation.

use std::collections::BTreeMap;
use std::fmt;

use crate::frame::{total_frames, FrameRange, Mfn};

/// Error returned when an allocation or reservation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Not enough free frames to satisfy an allocation of `requested`.
    OutOfFrames {
        /// Frames requested.
        requested: u64,
        /// Frames currently free.
        free: u64,
    },
    /// A `reserve_exact` target is (partially) already allocated.
    AlreadyAllocated(FrameRange),
    /// A range lies (partially) outside machine memory.
    OutOfBounds(FrameRange),
    /// A release covered frames that were not allocated.
    NotAllocated(FrameRange),
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfFrames { requested, free } => {
                write!(
                    f,
                    "out of machine frames: requested {requested}, free {free}"
                )
            }
            MemoryError::AlreadyAllocated(r) => {
                write!(f, "range {r} is already allocated")
            }
            MemoryError::OutOfBounds(r) => write!(f, "range {r} is outside machine memory"),
            MemoryError::NotAllocated(r) => write!(f, "range {r} was not allocated"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// Physical RAM: a deterministic first-fit extent allocator over machine
/// frames.
///
/// # Examples
///
/// ```
/// use rh_memory::machine::MachineMemory;
/// use rh_memory::frame::FRAMES_PER_GIB;
///
/// let mut ram = MachineMemory::new(12 * FRAMES_PER_GIB); // a 12 GiB host
/// let domain = ram.allocate(FRAMES_PER_GIB)?;            // a 1 GiB domain
/// assert_eq!(ram.allocated_frames(), FRAMES_PER_GIB);
/// ram.release(&domain)?;
/// assert_eq!(ram.allocated_frames(), 0);
/// # Ok::<(), rh_memory::machine::MemoryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineMemory {
    total: u64,
    /// Free extents, keyed by start frame, coalesced and non-overlapping.
    free: BTreeMap<u64, u64>,
}

impl MachineMemory {
    /// Creates machine memory with `total_frames` frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64) -> Self {
        assert!(
            total_frames > 0,
            "machine memory must have at least one frame"
        );
        let mut free = BTreeMap::new();
        free.insert(0, total_frames);
        MachineMemory {
            total: total_frames,
            free,
        }
    }

    /// Total frames installed.
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free.values().sum()
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.total - self.free_frames()
    }

    /// Number of free extents (fragmentation indicator).
    pub fn free_extents(&self) -> usize {
        self.free.len()
    }

    /// True if every frame in `range` is currently free.
    pub fn is_free(&self, range: &FrameRange) -> bool {
        let mut covered = range.start.0;
        let end = range.end().0;
        // Find the extent containing `covered`, repeatedly.
        while covered < end {
            let ext = self
                .free
                .range(..=covered)
                .next_back()
                .map(|(&s, &c)| (s, c));
            match ext {
                Some((s, c)) if s <= covered && covered < s + c => {
                    covered = s + c;
                }
                _ => return false,
            }
        }
        true
    }

    /// Counts how many frames of `range` are currently free.
    ///
    /// Zero means the whole range is allocated — the form the warm-reboot
    /// invariant takes: after a quick reload, every frame of a frozen
    /// domain must have been re-reserved, so none of its ranges may show
    /// up as free. The protocol checker (`rh-lint protocol`) calls this on
    /// every explored state.
    pub fn count_free_in(&self, range: &FrameRange) -> u64 {
        let end = range.end().0;
        let mut free = 0;
        // The extent covering the range start, if any…
        if let Some((&s, &c)) = self.free.range(..=range.start.0).next_back() {
            let lo = range.start.0.max(s);
            let hi = end.min(s + c);
            if lo < hi {
                free += hi - lo;
            }
        }
        // …plus every extent starting inside the range.
        for (&s, &c) in self.free.range(range.start.0 + 1..end) {
            free += (s + c).min(end) - s;
        }
        free
    }

    /// Allocates `count` frames first-fit, possibly split across several
    /// extents. The result is deterministic: lowest-addressed free extents
    /// are used first.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfFrames`] if fewer than `count` frames are
    /// free (no partial allocation happens).
    pub fn allocate(&mut self, count: u64) -> Result<Vec<FrameRange>, MemoryError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let free = self.free_frames();
        if free < count {
            return Err(MemoryError::OutOfFrames {
                requested: count,
                free,
            });
        }
        let mut remaining = count;
        let mut out = Vec::new();
        // The free-count check above guarantees the pool cannot run dry before
        // `remaining` does; the loop form keeps that panic-free.
        while remaining > 0 {
            let Some((&start, &len)) = self.free.iter().next() else {
                break;
            };
            let take = len.min(remaining);
            self.free.remove(&start);
            if take < len {
                self.free.insert(start + take, len - take);
            }
            out.push(FrameRange::new(Mfn(start), take));
            remaining -= take;
        }
        Ok(out)
    }

    /// Claims exactly `range`, which must be entirely free.
    ///
    /// This is the quick-reload re-reservation primitive: the new VMM
    /// instance replays the preserved P2M table through this method.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the range exceeds installed memory;
    /// [`MemoryError::AlreadyAllocated`] if any frame in it is not free.
    pub fn reserve_exact(&mut self, range: FrameRange) -> Result<(), MemoryError> {
        if range.end().0 > self.total {
            return Err(MemoryError::OutOfBounds(range));
        }
        if !self.is_free(&range) {
            return Err(MemoryError::AlreadyAllocated(range));
        }
        // Carve the range out of the free extents that cover it.
        let mut cursor = range.start.0;
        let end = range.end().0;
        while cursor < end {
            // `is_free` verified full coverage, so an extent containing
            // `cursor` always exists; bail out rather than panic if not.
            let Some((&s, &c)) = self.free.range(..=cursor).next_back() else {
                break;
            };
            debug_assert!(s <= cursor && cursor < s + c);
            self.free.remove(&s);
            if s < cursor {
                self.free.insert(s, cursor - s);
            }
            let ext_end = s + c;
            let take_end = ext_end.min(end);
            if take_end < ext_end {
                self.free.insert(take_end, ext_end - take_end);
            }
            cursor = take_end;
        }
        Ok(())
    }

    /// Returns `ranges` to the free pool, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// [`MemoryError::NotAllocated`] if any freed frame is already free
    /// (double free) and [`MemoryError::OutOfBounds`] if outside memory. The
    /// operation is atomic: on error nothing is freed.
    pub fn release(&mut self, ranges: &[FrameRange]) -> Result<(), MemoryError> {
        for r in ranges {
            if r.end().0 > self.total {
                return Err(MemoryError::OutOfBounds(*r));
            }
            // Reject a release overlapping any free extent.
            let overlapping = self
                .free
                .range(..r.end().0)
                .next_back()
                .is_some_and(|(&s, &c)| s + c > r.start.0);
            if overlapping {
                return Err(MemoryError::NotAllocated(*r));
            }
        }
        // Also reject overlap among the ranges themselves.
        for (i, a) in ranges.iter().enumerate() {
            for b in &ranges[i + 1..] {
                if a.overlaps(b) {
                    return Err(MemoryError::NotAllocated(*b));
                }
            }
        }
        for r in ranges {
            self.insert_free(r.start.0, r.count);
        }
        Ok(())
    }

    fn insert_free(&mut self, start: u64, count: u64) {
        let mut start = start;
        let mut count = count;
        // Coalesce with predecessor.
        if let Some((&ps, &pc)) = self.free.range(..start).next_back() {
            if ps + pc == start {
                self.free.remove(&ps);
                start = ps;
                count += pc;
            }
        }
        // Coalesce with successor.
        if let Some((&ns, &nc)) = self.free.range(start + count..).next() {
            if start + count == ns {
                self.free.remove(&ns);
                count += nc;
            }
        }
        self.free.insert(start, count);
    }

    /// A hardware reset: every frame becomes free again. Contents are lost
    /// separately (see [`crate::contents::FrameContents::scrub_all`]).
    pub fn hardware_reset(&mut self) {
        self.free.clear();
        self.free.insert(0, self.total);
    }

    /// Verifies internal consistency (free extents sorted, coalesced, in
    /// bounds, non-overlapping). Used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<u64> = None;
        for (&s, &c) in &self.free {
            if c == 0 {
                return Err(format!("zero-length free extent at {s}"));
            }
            if s + c > self.total {
                return Err(format!("free extent [{s}, {}) out of bounds", s + c));
            }
            if let Some(pe) = prev_end {
                if s < pe {
                    return Err(format!("overlapping free extents at {s}"));
                }
                if s == pe {
                    return Err(format!("uncoalesced free extents at {s}"));
                }
            }
            prev_end = Some(s + c);
        }
        Ok(())
    }
}

/// Sums the frames covered by an allocation result.
pub fn allocation_frames(ranges: &[FrameRange]) -> u64 {
    total_frames(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAMES_PER_GIB;

    #[test]
    fn fresh_memory_is_all_free() {
        let ram = MachineMemory::new(1000);
        assert_eq!(ram.total_frames(), 1000);
        assert_eq!(ram.free_frames(), 1000);
        assert_eq!(ram.allocated_frames(), 0);
        assert_eq!(ram.free_extents(), 1);
        ram.check_invariants().unwrap();
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut ram = MachineMemory::new(1000);
        let a = ram.allocate(300).unwrap();
        assert_eq!(allocation_frames(&a), 300);
        assert_eq!(ram.allocated_frames(), 300);
        ram.release(&a).unwrap();
        assert_eq!(ram.allocated_frames(), 0);
        assert_eq!(ram.free_extents(), 1, "release must coalesce");
        ram.check_invariants().unwrap();
    }

    #[test]
    fn allocation_is_first_fit_deterministic() {
        let mut ram = MachineMemory::new(1000);
        let a = ram.allocate(100).unwrap();
        assert_eq!(a, vec![FrameRange::new(Mfn(0), 100)]);
        let b = ram.allocate(100).unwrap();
        assert_eq!(b, vec![FrameRange::new(Mfn(100), 100)]);
        // Free the first, reallocate: gets the low hole again.
        ram.release(&a).unwrap();
        let c = ram.allocate(50).unwrap();
        assert_eq!(c, vec![FrameRange::new(Mfn(0), 50)]);
    }

    #[test]
    fn fragmented_allocation_spans_extents() {
        let mut ram = MachineMemory::new(300);
        let a = ram.allocate(100).unwrap(); // [0,100)
        let b = ram.allocate(100).unwrap(); // [100,200)
        let _c = ram.allocate(100).unwrap(); // [200,300)
        ram.release(&a).unwrap();
        ram.release(&b).unwrap();
        // Now free: [0,200). Allocate 150 -> single extent [0,150).
        let d = ram.allocate(150).unwrap();
        assert_eq!(d, vec![FrameRange::new(Mfn(0), 150)]);
        ram.check_invariants().unwrap();
    }

    #[test]
    fn allocation_spanning_two_holes() {
        let mut ram = MachineMemory::new(300);
        let a = ram.allocate(100).unwrap(); // [0,100)
        let _b = ram.allocate(100).unwrap(); // [100,200) kept
        let c = ram.allocate(100).unwrap(); // [200,300)
        ram.release(&a).unwrap();
        ram.release(&c).unwrap();
        // Free: [0,100) and [200,300). Ask for 150.
        let d = ram.allocate(150).unwrap();
        assert_eq!(
            d,
            vec![FrameRange::new(Mfn(0), 100), FrameRange::new(Mfn(200), 50)]
        );
        ram.check_invariants().unwrap();
    }

    #[test]
    fn out_of_frames_is_reported_without_partial_allocation() {
        let mut ram = MachineMemory::new(100);
        let _a = ram.allocate(90).unwrap();
        let err = ram.allocate(20).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfFrames {
                requested: 20,
                free: 10
            }
        );
        assert_eq!(ram.free_frames(), 10);
    }

    #[test]
    fn reserve_exact_claims_specific_frames() {
        let mut ram = MachineMemory::new(1000);
        let r = FrameRange::new(Mfn(500), 100);
        ram.reserve_exact(r).unwrap();
        assert_eq!(ram.allocated_frames(), 100);
        assert!(!ram.is_free(&r));
        // Ordinary allocation must now avoid the reserved range.
        let a = ram.allocate(600).unwrap();
        for got in &a {
            assert!(!got.overlaps(&r), "{got} overlaps reservation {r}");
        }
        ram.check_invariants().unwrap();
    }

    #[test]
    fn reserve_exact_rejects_allocated_frames() {
        let mut ram = MachineMemory::new(1000);
        let a = ram.allocate(100).unwrap();
        let err = ram.reserve_exact(a[0]).unwrap_err();
        assert!(matches!(err, MemoryError::AlreadyAllocated(_)));
    }

    #[test]
    fn reserve_exact_rejects_out_of_bounds() {
        let mut ram = MachineMemory::new(100);
        let err = ram.reserve_exact(FrameRange::new(Mfn(90), 20)).unwrap_err();
        assert!(matches!(err, MemoryError::OutOfBounds(_)));
    }

    #[test]
    fn reserve_exact_middle_of_extent_splits_it() {
        let mut ram = MachineMemory::new(100);
        ram.reserve_exact(FrameRange::new(Mfn(40), 20)).unwrap();
        assert_eq!(ram.free_extents(), 2);
        assert!(ram.is_free(&FrameRange::new(Mfn(0), 40)));
        assert!(ram.is_free(&FrameRange::new(Mfn(60), 40)));
        ram.check_invariants().unwrap();
    }

    #[test]
    fn double_free_rejected() {
        let mut ram = MachineMemory::new(100);
        let a = ram.allocate(10).unwrap();
        ram.release(&a).unwrap();
        let err = ram.release(&a).unwrap_err();
        assert!(matches!(err, MemoryError::NotAllocated(_)));
    }

    #[test]
    fn release_rejects_self_overlapping_input() {
        let mut ram = MachineMemory::new(100);
        let _a = ram.allocate(20).unwrap();
        let dup = vec![FrameRange::new(Mfn(0), 10), FrameRange::new(Mfn(5), 10)];
        let err = ram.release(&dup).unwrap_err();
        assert!(matches!(err, MemoryError::NotAllocated(_)));
        // Atomic: nothing was freed.
        assert_eq!(ram.allocated_frames(), 20);
    }

    #[test]
    fn hardware_reset_frees_everything() {
        let mut ram = MachineMemory::new(12 * FRAMES_PER_GIB);
        let _a = ram.allocate(FRAMES_PER_GIB).unwrap();
        let _b = ram.allocate(2 * FRAMES_PER_GIB).unwrap();
        ram.hardware_reset();
        assert_eq!(ram.free_frames(), 12 * FRAMES_PER_GIB);
        assert_eq!(ram.free_extents(), 1);
        ram.check_invariants().unwrap();
    }

    #[test]
    fn is_free_handles_partial_coverage() {
        let mut ram = MachineMemory::new(100);
        ram.reserve_exact(FrameRange::new(Mfn(50), 10)).unwrap();
        assert!(ram.is_free(&FrameRange::new(Mfn(0), 50)));
        assert!(!ram.is_free(&FrameRange::new(Mfn(45), 10)));
        assert!(!ram.is_free(&FrameRange::new(Mfn(55), 10)));
        assert!(ram.is_free(&FrameRange::new(Mfn(60), 40)));
    }

    #[test]
    fn zero_allocation_is_empty() {
        let mut ram = MachineMemory::new(10);
        assert_eq!(ram.allocate(0).unwrap(), Vec::new());
    }

    #[test]
    fn gigabyte_scale_allocations_stay_compact() {
        // An 11 GiB domain on a 12 GiB host is a handful of extents, not
        // millions of entries.
        let mut ram = MachineMemory::new(12 * FRAMES_PER_GIB);
        let a = ram.allocate(11 * FRAMES_PER_GIB).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(allocation_frames(&a), 11 * FRAMES_PER_GIB);
    }
}
