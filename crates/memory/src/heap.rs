//! The VMM's private heap, and the aging that afflicts it.
//!
//! Xen's hypervisor heap is only **16 MB by default** regardless of machine
//! memory (paper §2), which makes it the canonical victim of software
//! aging: the paper cites real Xen bugs where heap memory leaked on every
//! VM reboot (changeset 9392) and on error paths (changeset 11752), leading
//! to out-of-memory errors, performance degradation or a crash of the VMM.
//!
//! [`VmmHeap`] tracks ordinary allocations plus *leaked* bytes that no
//! free() will ever reclaim — only a VMM reboot (rejuvenation) resets them.

use std::fmt;

/// Default hypervisor heap size: 16 MB, as in Xen 3.0 (paper §2).
pub const DEFAULT_HEAP_BYTES: u64 = 16 * 1024 * 1024;

/// Error returned when the heap cannot satisfy a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapExhausted {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub free: u64,
}

impl fmt::Display for HeapExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vmm heap exhausted: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for HeapExhausted {}

/// A token for a live heap allocation; return it to
/// [`VmmHeap::free`] to release the bytes.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "heap allocations must be freed (or deliberately leaked)"]
pub struct HeapAlloc {
    bytes: u64,
}

impl HeapAlloc {
    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// The VMM's fixed-size private heap with leak accounting.
///
/// # Examples
///
/// ```
/// use rh_memory::heap::VmmHeap;
///
/// let mut heap = VmmHeap::new(1024);
/// let a = heap.alloc(512)?;
/// heap.leak(256); // a buggy error path loses 256 bytes
/// heap.free(a);
/// assert_eq!(heap.free_bytes(), 768);
/// heap.reset(); // rejuvenation!
/// assert_eq!(heap.free_bytes(), 1024);
/// # Ok::<(), rh_memory::heap::HeapExhausted>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmmHeap {
    capacity: u64,
    used: u64,
    leaked: u64,
    peak_used: u64,
    total_allocs: u64,
    total_leak_events: u64,
}

impl VmmHeap {
    /// Creates a heap of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "heap capacity must be positive");
        VmmHeap {
            capacity,
            used: 0,
            leaked: 0,
            peak_used: 0,
            total_allocs: 0,
            total_leak_events: 0,
        }
    }

    /// Creates the Xen-default 16 MB heap.
    pub fn xen_default() -> Self {
        VmmHeap::new(DEFAULT_HEAP_BYTES)
    }

    /// Heap capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes in live allocations (excluding leaks).
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes lost to leaks since the last reset.
    pub fn leaked_bytes(&self) -> u64 {
        self.leaked
    }

    /// Bytes available for allocation.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used - self.leaked
    }

    /// Fraction of the heap unavailable (used + leaked), in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        (self.used + self.leaked) as f64 / self.capacity as f64
    }

    /// High-water mark of `used + leaked`.
    pub fn peak_used_bytes(&self) -> u64 {
        self.peak_used
    }

    /// Number of successful allocations since the last reset.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Number of leak events since the last reset.
    pub fn total_leak_events(&self) -> u64 {
        self.total_leak_events
    }

    /// Allocates `bytes`.
    ///
    /// # Errors
    ///
    /// [`HeapExhausted`] when fewer than `bytes` are free — the aging
    /// failure mode the paper rejuvenates away.
    pub fn alloc(&mut self, bytes: u64) -> Result<HeapAlloc, HeapExhausted> {
        if bytes > self.free_bytes() {
            return Err(HeapExhausted {
                requested: bytes,
                free: self.free_bytes(),
            });
        }
        self.used += bytes;
        self.total_allocs += 1;
        self.peak_used = self.peak_used.max(self.used + self.leaked);
        Ok(HeapAlloc { bytes })
    }

    /// Releases an allocation.
    pub fn free(&mut self, alloc: HeapAlloc) {
        debug_assert!(alloc.bytes <= self.used);
        self.used -= alloc.bytes;
    }

    /// Converts an allocation into a leak: the bytes stay unavailable until
    /// [`reset`](Self::reset). Models forgetting to free on an error path.
    pub fn leak_alloc(&mut self, alloc: HeapAlloc) {
        debug_assert!(alloc.bytes <= self.used);
        self.used -= alloc.bytes;
        self.leaked += alloc.bytes;
        self.total_leak_events += 1;
    }

    /// Directly loses `bytes` of free memory to a leak (clamped to the free
    /// amount). Returns the bytes actually leaked.
    pub fn leak(&mut self, bytes: u64) -> u64 {
        let actual = bytes.min(self.free_bytes());
        self.leaked += actual;
        if actual > 0 {
            self.total_leak_events += 1;
        }
        self.peak_used = self.peak_used.max(self.used + self.leaked);
        actual
    }

    /// Rejuvenation: the VMM reboot re-initializes the heap, clearing all
    /// allocations, leaks and counters.
    pub fn reset(&mut self) {
        self.used = 0;
        self.leaked = 0;
        self.peak_used = 0;
        self.total_allocs = 0;
        self.total_leak_events = 0;
    }
}

impl Default for VmmHeap {
    fn default() -> Self {
        VmmHeap::xen_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_xen_16mb() {
        let h = VmmHeap::default();
        assert_eq!(h.capacity(), 16 * 1024 * 1024);
        assert_eq!(h.free_bytes(), h.capacity());
    }

    #[test]
    fn alloc_free_cycle() {
        let mut h = VmmHeap::new(100);
        let a = h.alloc(60).unwrap();
        assert_eq!(h.used_bytes(), 60);
        assert_eq!(h.free_bytes(), 40);
        h.free(a);
        assert_eq!(h.used_bytes(), 0);
        assert_eq!(h.total_allocs(), 1);
    }

    #[test]
    fn exhaustion_reports_free_bytes() {
        let mut h = VmmHeap::new(100);
        let _a = h.alloc(80).unwrap();
        let err = h.alloc(30).unwrap_err();
        assert_eq!(
            err,
            HeapExhausted {
                requested: 30,
                free: 20
            }
        );
    }

    #[test]
    fn leaks_accumulate_and_survive_frees() {
        let mut h = VmmHeap::new(100);
        assert_eq!(h.leak(10), 10);
        assert_eq!(h.leak(15), 15);
        assert_eq!(h.leaked_bytes(), 25);
        assert_eq!(h.free_bytes(), 75);
        assert_eq!(h.total_leak_events(), 2);
        // Leaked bytes cannot be allocated.
        assert!(h.alloc(80).is_err());
        assert!(h.alloc(75).is_ok());
    }

    #[test]
    fn leak_clamps_at_free() {
        let mut h = VmmHeap::new(100);
        let _a = h.alloc(90).unwrap();
        assert_eq!(h.leak(50), 10);
        assert_eq!(h.free_bytes(), 0);
        assert!((h.pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leak_alloc_moves_used_to_leaked() {
        let mut h = VmmHeap::new(100);
        let a = h.alloc(40).unwrap();
        h.leak_alloc(a);
        assert_eq!(h.used_bytes(), 0);
        assert_eq!(h.leaked_bytes(), 40);
    }

    #[test]
    fn reset_restores_everything() {
        let mut h = VmmHeap::new(100);
        let _a = h.alloc(50).unwrap();
        h.leak(30);
        h.reset();
        assert_eq!(h.free_bytes(), 100);
        assert_eq!(h.leaked_bytes(), 0);
        assert_eq!(h.peak_used_bytes(), 0);
        assert_eq!(h.total_allocs(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut h = VmmHeap::new(100);
        let a = h.alloc(70).unwrap();
        h.free(a);
        let _b = h.alloc(10).unwrap();
        assert_eq!(h.peak_used_bytes(), 70);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = VmmHeap::new(0);
    }
}
