//! The P2M-mapping table (paper §4.1).
//!
//! For each domain, the VMM records the mapping from pseudo-physical frame
//! numbers (PFN) to machine frame numbers (MFN). The table is the anchor of
//! the warm-VM reboot: it is placed in memory preserved across the quick
//! reload, and the new VMM instance replays it to re-reserve every frame a
//! frozen domain owns before its own allocator can touch them.
//!
//! The paper gives the table's size as **2 MB per 1 GB of pseudo-physical
//! memory** — 8 bytes per 4 KiB page — which [`P2mTable::size_bytes`]
//! reproduces. Entries are added when frames are allocated to a domain and
//! removed when frames are deallocated (e.g. by ballooning), and the table
//! stays correct even when total pseudo-physical memory exceeds machine
//! memory thanks to ballooning.

use std::collections::BTreeMap;
use std::fmt;

use crate::frame::{FrameRange, Mfn, Pfn};

/// Bytes per table entry (one 64-bit MFN per page).
pub const BYTES_PER_ENTRY: u64 = 8;

/// Errors from P2M table manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P2mError {
    /// The PFN range `[start, start+count)` overlaps an existing mapping.
    PfnOverlap(Pfn, u64),
    /// The requested unmap range is not fully mapped.
    NotMapped(Pfn, u64),
}

impl fmt::Display for P2mError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2mError::PfnOverlap(p, c) => {
                write!(f, "pfn range [{p}, +{c}) overlaps existing mapping")
            }
            P2mError::NotMapped(p, c) => write!(f, "pfn range [{p}, +{c}) is not fully mapped"),
        }
    }
}

impl std::error::Error for P2mError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Extent {
    mfn_start: u64,
    count: u64,
}

/// One domain's PFN→MFN mapping, stored as range-compressed extents.
///
/// # Examples
///
/// ```
/// use rh_memory::frame::{FrameRange, Mfn, Pfn, FRAMES_PER_GIB};
/// use rh_memory::p2m::P2mTable;
///
/// let mut p2m = P2mTable::new();
/// p2m.map(Pfn(0), FrameRange::new(Mfn(0x1000), FRAMES_PER_GIB))?;
/// assert_eq!(p2m.lookup(Pfn(5)), Some(Mfn(0x1005)));
/// // 2 MB of table per 1 GB of pseudo-physical memory (paper §4.1).
/// assert_eq!(p2m.size_bytes(), 2 * 1024 * 1024);
/// # Ok::<(), rh_memory::p2m::P2mError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct P2mTable {
    extents: BTreeMap<u64, Extent>,
    total: u64,
    /// Monotonic mutation counter (bumped by `map`/`unmap`/`clear`/
    /// `corrupt_extent`); bookkeeping only, excluded from equality.
    epoch: u64,
}

/// Equality compares the mapping itself, not the mutation history: two
/// tables describing the same PFN→MFN function are equal regardless of how
/// they got there.
impl PartialEq for P2mTable {
    fn eq(&self, other: &Self) -> bool {
        self.extents == other.extents && self.total == other.total
    }
}

impl Eq for P2mTable {}

impl P2mTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        P2mTable::default()
    }

    /// The mutation epoch: increments on every call that changes the
    /// mapping ([`map`](Self::map), [`unmap`](Self::unmap),
    /// [`unmap_top`](Self::unmap_top), [`clear`](Self::clear),
    /// [`corrupt_extent`](Self::corrupt_extent)). An unchanged epoch
    /// guarantees an unchanged PFN→MFN function — the cheap half of the
    /// VMM's digest early-out (see
    /// [`FrameContents::unchanged_since`](crate::contents::FrameContents::unchanged_since)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total mapped pages.
    pub fn total_pages(&self) -> u64 {
        self.total
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The memory footprint of the table itself (8 bytes per page).
    pub fn size_bytes(&self) -> u64 {
        self.total * BYTES_PER_ENTRY
    }

    /// Number of stored extents.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// One past the highest mapped PFN, or 0 if empty.
    pub fn pfn_limit(&self) -> u64 {
        self.extents
            .iter()
            .next_back()
            .map(|(&s, e)| s + e.count)
            .unwrap_or(0)
    }

    /// Maps the machine range `frames` at consecutive PFNs starting at
    /// `pfn_start`. Mapping an empty range is a no-op.
    ///
    /// # Errors
    ///
    /// [`P2mError::PfnOverlap`] if any PFN in the target range is mapped.
    pub fn map(&mut self, pfn_start: Pfn, frames: FrameRange) -> Result<(), P2mError> {
        if frames.count == 0 {
            // A zero-count extent must never enter the map: it would shadow
            // `lookup` of PFNs covered by a lower-keyed neighbour (the
            // BTreeMap range-scan stops at the empty extent's key).
            return Ok(());
        }
        let lo = pfn_start.0;
        let hi = lo + frames.count;
        let overlapping = self
            .extents
            .range(..hi)
            .next_back()
            .is_some_and(|(&s, e)| s + e.count > lo);
        if overlapping {
            return Err(P2mError::PfnOverlap(pfn_start, frames.count));
        }
        self.extents.insert(
            lo,
            Extent {
                mfn_start: frames.start.0,
                count: frames.count,
            },
        );
        self.total += frames.count;
        self.epoch += 1;
        Ok(())
    }

    /// Maps several machine ranges at consecutive PFNs starting at
    /// `pfn_start`, in order.
    ///
    /// # Errors
    ///
    /// Propagates [`P2mError::PfnOverlap`]; mappings made before the error
    /// remain (callers treat this as fatal).
    pub fn map_contiguous(
        &mut self,
        pfn_start: Pfn,
        ranges: &[FrameRange],
    ) -> Result<(), P2mError> {
        let mut pfn = pfn_start.0;
        for r in ranges {
            self.map(Pfn(pfn), *r)?;
            pfn += r.count;
        }
        Ok(())
    }

    /// Looks up the machine frame behind a pseudo-physical frame.
    pub fn lookup(&self, pfn: Pfn) -> Option<Mfn> {
        let (&start, ext) = self.extents.range(..=pfn.0).next_back()?;
        if pfn.0 < start + ext.count {
            Some(Mfn(ext.mfn_start + (pfn.0 - start)))
        } else {
            None
        }
    }

    /// Unmaps `[pfn_start, pfn_start + count)`, returning the released
    /// machine ranges (in ascending PFN order). Splits extents as needed.
    ///
    /// # Errors
    ///
    /// [`P2mError::NotMapped`] if the range is not fully mapped; the table
    /// is unchanged on error.
    pub fn unmap(&mut self, pfn_start: Pfn, count: u64) -> Result<Vec<FrameRange>, P2mError> {
        let lo = pfn_start.0;
        let hi = lo + count;
        // Verify full coverage first (atomicity).
        let mut covered = lo;
        while covered < hi {
            match self.extents.range(..=covered).next_back() {
                Some((&s, e)) if covered < s + e.count => covered = s + e.count,
                _ => return Err(P2mError::NotMapped(pfn_start, count)),
            }
        }
        // Remove, splitting boundary extents.
        let keys: Vec<u64> = self
            .extents
            .range(..hi)
            .filter(|(&s, e)| s + e.count > lo)
            .map(|(&s, _)| s)
            .collect();
        let mut released = Vec::new();
        for s in keys {
            let Some(ext) = self.extents.remove(&s) else {
                continue; // unreachable: keys were collected from this map above
            };
            let e_end = s + ext.count;
            let cut_lo = lo.max(s);
            let cut_hi = hi.min(e_end);
            if s < cut_lo {
                self.extents.insert(
                    s,
                    Extent {
                        mfn_start: ext.mfn_start,
                        count: cut_lo - s,
                    },
                );
            }
            if cut_hi < e_end {
                self.extents.insert(
                    cut_hi,
                    Extent {
                        mfn_start: ext.mfn_start + (cut_hi - s),
                        count: e_end - cut_hi,
                    },
                );
            }
            released.push(FrameRange::new(
                Mfn(ext.mfn_start + (cut_lo - s)),
                cut_hi - cut_lo,
            ));
            self.total -= cut_hi - cut_lo;
        }
        self.epoch += 1;
        Ok(released)
    }

    /// Unmaps the `count` highest-numbered pages (the balloon driver's
    /// release path), returning the released machine ranges.
    ///
    /// # Errors
    ///
    /// [`P2mError::NotMapped`] if fewer than `count` pages are mapped.
    pub fn unmap_top(&mut self, count: u64) -> Result<Vec<FrameRange>, P2mError> {
        if count > self.total {
            return Err(P2mError::NotMapped(Pfn(0), count));
        }
        let mut remaining = count;
        let mut released = Vec::new();
        // `count <= self.total` was checked above, so the map cannot run dry
        // before `remaining` does; the loop form keeps that panic-free.
        while remaining > 0 {
            let Some((&s, ext)) = self.extents.iter().next_back() else {
                break;
            };
            let take = ext.count.min(remaining);
            let ext = *ext;
            self.extents.remove(&s);
            if take < ext.count {
                self.extents.insert(
                    s,
                    Extent {
                        mfn_start: ext.mfn_start,
                        count: ext.count - take,
                    },
                );
            }
            released.push(FrameRange::new(
                Mfn(ext.mfn_start + (ext.count - take)),
                take,
            ));
            self.total -= take;
            remaining -= take;
        }
        self.epoch += 1;
        Ok(released)
    }

    /// Resolves the pseudo-physical range `[pfn_start, pfn_start + count)`
    /// into its backing machine ranges, in ascending PFN order, or `None`
    /// if the range is not fully mapped.
    pub fn resolve_range(&self, pfn_start: Pfn, count: u64) -> Option<Vec<FrameRange>> {
        let lo = pfn_start.0;
        let hi = lo + count;
        let mut out = Vec::new();
        let mut cursor = lo;
        while cursor < hi {
            let (&s, ext) = self.extents.range(..=cursor).next_back()?;
            if cursor >= s + ext.count {
                return None;
            }
            let cut_hi = hi.min(s + ext.count);
            out.push(FrameRange::new(
                Mfn(ext.mfn_start + (cursor - s)),
                cut_hi - cursor,
            ));
            cursor = cut_hi;
        }
        Some(out)
    }

    /// All machine ranges referenced by the table, in ascending PFN order.
    ///
    /// This is what quick reload replays through
    /// [`MachineMemory::reserve_exact`](crate::machine::MachineMemory::reserve_exact).
    pub fn machine_ranges(&self) -> Vec<FrameRange> {
        self.extents
            .values()
            .map(|e| FrameRange::new(Mfn(e.mfn_start), e.count))
            .collect()
    }

    /// Iterates `(pfn, machine range)` extents in ascending PFN order.
    pub fn iter_extents(&self) -> impl Iterator<Item = (Pfn, FrameRange)> + '_ {
        self.extents
            .iter()
            .map(|(&s, e)| (Pfn(s), FrameRange::new(Mfn(e.mfn_start), e.count)))
    }

    /// Iterates every `(pfn, mfn)` pair. O(total pages); prefer
    /// [`iter_extents`](Self::iter_extents) in hot paths.
    pub fn iter_pages(&self) -> impl Iterator<Item = (Pfn, Mfn)> + '_ {
        self.extents
            .iter()
            .flat_map(|(&s, e)| (0..e.count).map(move |i| (Pfn(s + i), Mfn(e.mfn_start + i))))
    }

    /// Clears the table.
    pub fn clear(&mut self) {
        self.extents.clear();
        self.total = 0;
        self.epoch += 1;
    }

    /// Fault injection: XORs the machine base of the `nth` extent
    /// (`nth` is reduced modulo the extent count) — the model of a stray
    /// write landing in the preserved table. A zero mask is forced to 1 so
    /// the entry always actually changes. Returns whether an extent existed
    /// to corrupt.
    pub fn corrupt_extent(&mut self, nth: usize, xor: u64) -> bool {
        if self.extents.is_empty() {
            return false;
        }
        let idx = nth % self.extents.len();
        let key = match self.extents.keys().nth(idx) {
            Some(&k) => k,
            None => return false,
        };
        if let Some(ext) = self.extents.get_mut(&key) {
            ext.mfn_start ^= if xor == 0 { 1 } else { xor };
            self.epoch += 1;
        }
        true
    }

    /// Checks that no two extents overlap in machine space (a corrupted
    /// table would let two PFNs alias one frame).
    pub fn check_machine_disjoint(&self) -> Result<(), String> {
        let mut ranges = self.machine_ranges();
        ranges.sort_by_key(|r| r.start);
        for w in ranges.windows(2) {
            if w[0].overlaps(&w[1]) {
                return Err(format!("machine ranges {} and {} overlap", w[0], w[1]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAMES_PER_GIB;

    fn fr(start: u64, count: u64) -> FrameRange {
        FrameRange::new(Mfn(start), count)
    }

    #[test]
    fn map_and_lookup() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(1000, 10)).unwrap();
        t.map(Pfn(10), fr(5000, 10)).unwrap();
        assert_eq!(t.lookup(Pfn(0)), Some(Mfn(1000)));
        assert_eq!(t.lookup(Pfn(9)), Some(Mfn(1009)));
        assert_eq!(t.lookup(Pfn(10)), Some(Mfn(5000)));
        assert_eq!(t.lookup(Pfn(19)), Some(Mfn(5009)));
        assert_eq!(t.lookup(Pfn(20)), None);
        assert_eq!(t.total_pages(), 20);
        assert_eq!(t.pfn_limit(), 20);
    }

    #[test]
    fn size_matches_paper_two_mb_per_gib() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(0, FRAMES_PER_GIB)).unwrap();
        assert_eq!(t.size_bytes(), 2 * 1024 * 1024);
        let mut t11 = P2mTable::new();
        t11.map(Pfn(0), fr(0, 11 * FRAMES_PER_GIB)).unwrap();
        assert_eq!(t11.size_bytes(), 22 * 1024 * 1024);
    }

    #[test]
    fn pfn_overlap_rejected() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(0, 10)).unwrap();
        assert!(matches!(
            t.map(Pfn(5), fr(100, 10)),
            Err(P2mError::PfnOverlap(_, _))
        ));
        assert!(matches!(
            t.map(Pfn(0), fr(100, 1)),
            Err(P2mError::PfnOverlap(_, _))
        ));
        // Adjacent is fine.
        t.map(Pfn(10), fr(100, 10)).unwrap();
    }

    #[test]
    fn map_contiguous_spans_fragmented_allocation() {
        let mut t = P2mTable::new();
        t.map_contiguous(Pfn(0), &[fr(0, 100), fr(500, 50)])
            .unwrap();
        assert_eq!(t.lookup(Pfn(99)), Some(Mfn(99)));
        assert_eq!(t.lookup(Pfn(100)), Some(Mfn(500)));
        assert_eq!(t.lookup(Pfn(149)), Some(Mfn(549)));
        assert_eq!(t.total_pages(), 150);
    }

    #[test]
    fn unmap_whole_extent() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(1000, 10)).unwrap();
        let released = t.unmap(Pfn(0), 10).unwrap();
        assert_eq!(released, vec![fr(1000, 10)]);
        assert!(t.is_empty());
    }

    #[test]
    fn unmap_splits_extent() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(1000, 100)).unwrap();
        let released = t.unmap(Pfn(40), 20).unwrap();
        assert_eq!(released, vec![fr(1040, 20)]);
        assert_eq!(t.lookup(Pfn(39)), Some(Mfn(1039)));
        assert_eq!(t.lookup(Pfn(40)), None);
        assert_eq!(t.lookup(Pfn(59)), None);
        assert_eq!(t.lookup(Pfn(60)), Some(Mfn(1060)));
        assert_eq!(t.total_pages(), 80);
        assert_eq!(t.extent_count(), 2);
    }

    #[test]
    fn unmap_unmapped_range_fails_atomically() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(0, 10)).unwrap();
        let err = t.unmap(Pfn(5), 10).unwrap_err();
        assert!(matches!(err, P2mError::NotMapped(_, _)));
        assert_eq!(t.total_pages(), 10, "table unchanged on error");
    }

    #[test]
    fn unmap_top_releases_highest_pages() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(0, 100)).unwrap();
        t.map(Pfn(100), fr(500, 100)).unwrap();
        let released = t.unmap_top(150).unwrap();
        // 100 from the top extent, 50 from the top of the bottom extent.
        assert_eq!(released, vec![fr(500, 100), fr(50, 50)]);
        assert_eq!(t.total_pages(), 50);
        assert_eq!(t.pfn_limit(), 50);
        assert!(t.unmap_top(100).is_err());
    }

    #[test]
    fn machine_ranges_round_trip() {
        let mut t = P2mTable::new();
        t.map_contiguous(Pfn(0), &[fr(10, 5), fr(100, 7)]).unwrap();
        assert_eq!(t.machine_ranges(), vec![fr(10, 5), fr(100, 7)]);
        t.check_machine_disjoint().unwrap();
    }

    #[test]
    fn machine_overlap_detected() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(0, 10)).unwrap();
        // A buggy caller maps the same machine frames at another PFN.
        t.map(Pfn(100), fr(5, 10)).unwrap();
        assert!(t.check_machine_disjoint().is_err());
    }

    #[test]
    fn iter_pages_covers_everything() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(50, 3)).unwrap();
        let pages: Vec<(Pfn, Mfn)> = t.iter_pages().collect();
        assert_eq!(
            pages,
            vec![(Pfn(0), Mfn(50)), (Pfn(1), Mfn(51)), (Pfn(2), Mfn(52))]
        );
    }

    #[test]
    fn resolve_range_spans_extents() {
        let mut t = P2mTable::new();
        t.map_contiguous(Pfn(0), &[fr(100, 10), fr(500, 10)])
            .unwrap();
        assert_eq!(
            t.resolve_range(Pfn(5), 10).unwrap(),
            vec![fr(105, 5), fr(500, 5)]
        );
        assert_eq!(
            t.resolve_range(Pfn(0), 20).unwrap(),
            vec![fr(100, 10), fr(500, 10)]
        );
        assert!(t.resolve_range(Pfn(15), 10).is_none(), "partially unmapped");
        assert!(t.resolve_range(Pfn(30), 1).is_none());
    }

    #[test]
    fn clear_empties_table() {
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(0, 10)).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.extent_count(), 0);
    }

    #[test]
    fn map_contiguous_overlap_fails_but_keeps_earlier_mappings() {
        let mut t = P2mTable::new();
        t.map(Pfn(10), fr(900, 5)).unwrap();
        // Second range of the batch collides with the pre-existing extent;
        // the first range stays mapped (documented fatal-error semantics).
        let err = t.map_contiguous(Pfn(0), &[fr(100, 10), fr(200, 10)]);
        assert!(matches!(err, Err(P2mError::PfnOverlap(_, _))));
        assert_eq!(t.lookup(Pfn(0)), Some(Mfn(100)));
        assert_eq!(t.lookup(Pfn(9)), Some(Mfn(109)));
        assert_eq!(t.lookup(Pfn(10)), Some(Mfn(900)));
        assert_eq!(t.total_pages(), 15);
    }

    #[test]
    fn remap_of_frozen_pfn_rejected_and_table_intact() {
        // Warm-reboot scenario: the table survives the VMM generation
        // change, so a replayed mapping must not clobber the frozen one.
        let mut t = P2mTable::new();
        t.map(Pfn(0), fr(4000, 8)).unwrap();
        let before: Vec<(Pfn, FrameRange)> = t.iter_extents().collect();
        assert!(matches!(
            t.map(Pfn(3), fr(7000, 2)),
            Err(P2mError::PfnOverlap(_, _))
        ));
        let after: Vec<(Pfn, FrameRange)> = t.iter_extents().collect();
        assert_eq!(before, after, "failed remap must not disturb the table");
        assert_eq!(t.lookup(Pfn(3)), Some(Mfn(4003)));
    }

    #[test]
    fn empty_range_mapping_is_a_noop() {
        // FrameRange::new rejects count == 0, but the fields are public so
        // an empty range can still arrive via a struct literal or count
        // arithmetic; map() must treat it as a no-op.
        let empty = |start: u64| FrameRange {
            start: Mfn(start),
            count: 0,
        };
        let mut t = P2mTable::new();
        t.map(Pfn(5), empty(1000)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.extent_count(), 0);
        // Regression: a zero-count extent used to shadow lookups of PFNs
        // covered by a lower-keyed extent that spans its key.
        t.map(Pfn(5), empty(2000)).unwrap();
        t.map(Pfn(3), fr(3000, 4)).unwrap();
        assert_eq!(t.lookup(Pfn(5)), Some(Mfn(3002)));
        assert_eq!(t.total_pages(), 4);
        t.check_machine_disjoint().unwrap();
    }
}
