//! Ballooning (Waldspurger, OSDI '02 — the paper's reference 27).
//!
//! A balloon driver lets the VMM reclaim machine frames from a domain
//! without the domain noticing more than reduced free memory: inflating the
//! balloon unmaps pseudo-physical pages (releasing their machine frames),
//! deflating maps fresh frames back in.
//!
//! The paper notes (§4.1) that the P2M-mapping table "can maintain the
//! mapping properly" even when total pseudo-physical memory exceeds machine
//! memory due to ballooning — the property tests in this module and in the
//! VMM crate pin that behaviour down.

use std::fmt;

use crate::frame::Pfn;
use crate::machine::{MachineMemory, MemoryError};
use crate::p2m::{P2mError, P2mTable};

/// Errors from balloon operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalloonError {
    /// The underlying machine allocator failed.
    Memory(MemoryError),
    /// The P2M table rejected the operation.
    P2m(P2mError),
    /// The domain does not have enough mapped pages to inflate by the
    /// requested amount.
    TooLarge {
        /// Pages requested.
        requested: u64,
        /// Pages currently mapped.
        mapped: u64,
    },
    /// The controller is frozen (a warm reboot holds the domain's image):
    /// resize requests are rejected until [`BalloonController::thaw`].
    Frozen,
}

impl fmt::Display for BalloonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalloonError::Memory(e) => write!(f, "balloon: {e}"),
            BalloonError::P2m(e) => write!(f, "balloon: {e}"),
            BalloonError::TooLarge { requested, mapped } => write!(
                f,
                "balloon inflate of {requested} pages exceeds mapped {mapped}"
            ),
            BalloonError::Frozen => {
                write!(
                    f,
                    "balloon: domain image frozen by an in-flight warm reboot"
                )
            }
        }
    }
}

impl std::error::Error for BalloonError {}

impl From<MemoryError> for BalloonError {
    fn from(e: MemoryError) -> Self {
        BalloonError::Memory(e)
    }
}

impl From<P2mError> for BalloonError {
    fn from(e: P2mError) -> Self {
        BalloonError::P2m(e)
    }
}

/// Per-domain balloon state: how many pages are currently ballooned out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Balloon {
    inflated_pages: u64,
}

impl Balloon {
    /// A deflated balloon.
    pub fn new() -> Self {
        Balloon::default()
    }

    /// Pages currently surrendered to the VMM.
    pub fn inflated_pages(&self) -> u64 {
        self.inflated_pages
    }

    /// Inflates by `pages`: unmaps the domain's highest PFNs and returns
    /// their machine frames to the allocator.
    ///
    /// # Errors
    ///
    /// [`BalloonError::TooLarge`] if the domain has fewer mapped pages;
    /// propagates allocator/P2M failures.
    pub fn inflate(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        pages: u64,
    ) -> Result<(), BalloonError> {
        if pages > p2m.total_pages() {
            return Err(BalloonError::TooLarge {
                requested: pages,
                mapped: p2m.total_pages(),
            });
        }
        let released = p2m.unmap_top(pages)?;
        ram.release(&released)?;
        self.inflated_pages += pages;
        Ok(())
    }

    /// Deflates by `pages`: allocates fresh machine frames and maps them at
    /// the domain's current PFN limit. Deflating more than was inflated is
    /// allowed (it grows the domain) — callers enforce policy.
    ///
    /// # Errors
    ///
    /// Propagates allocator/P2M failures (e.g. machine memory exhausted).
    pub fn deflate(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        pages: u64,
    ) -> Result<(), BalloonError> {
        let ranges = ram.allocate(pages)?;
        let pfn = Pfn(p2m.pfn_limit());
        if let Err(e) = p2m.map_contiguous(pfn, &ranges) {
            // Roll back the allocation; mapping at a fresh PFN limit cannot
            // overlap, but keep the path safe anyway.
            let _ = ram.release(&ranges);
            return Err(e.into());
        }
        self.inflated_pages = self.inflated_pages.saturating_sub(pages);
        Ok(())
    }
}

/// Policy layer over [`Balloon`]: guest-cooperative resize targets,
/// reclaim-under-pressure for the host, and deflate-on-demand with
/// bounded latency (the pieces the serverless cell in `rh-cell` and the
/// `rh-lint balloon` model exercise).
///
/// Mechanism stays in [`Balloon`]; the controller adds the three rules an
/// overcommitted host needs:
///
/// * **Floor** — reclaim never shrinks the domain below `min_resident`
///   pages, so a squeezed microVM keeps a viable working set.
/// * **Freeze fence** — while a warm reboot holds the domain's frozen
///   image ([`freeze`](Self::freeze)), reclaim refuses (returns 0) and
///   explicit resizes error with [`BalloonError::Frozen`]. This is the
///   mechanism-level half of invariant **I8** (a frozen frame is never
///   balloon-reclaimed while a warm reboot is in flight); the protocol
///   half is proved by `rh-lint balloon`.
/// * **Partial deflate** — [`deflate_on_demand`](Self::deflate_on_demand)
///   maps at most what the machine allocator can supply right now instead
///   of failing outright, so the latency a blocked guest pays is bounded
///   by the pages actually moved. Frames come from
///   [`MachineMemory::allocate`], whose owner scrubs them before reuse —
///   the digest-validation ordering itself (invariant **I9**) is checked
///   by the `rh-lint balloon` model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalloonController {
    balloon: Balloon,
    min_resident: u64,
    frozen: bool,
    reclaimed_pages: u64,
    deflated_pages: u64,
}

impl BalloonController {
    /// A thawed controller that will never reclaim the domain below
    /// `min_resident` resident pages.
    pub fn new(min_resident: u64) -> Self {
        BalloonController {
            balloon: Balloon::new(),
            min_resident,
            frozen: false,
            reclaimed_pages: 0,
            deflated_pages: 0,
        }
    }

    /// The reclaim floor, in pages.
    pub fn min_resident(&self) -> u64 {
        self.min_resident
    }

    /// Pages currently surrendered to the VMM.
    pub fn inflated_pages(&self) -> u64 {
        self.balloon.inflated_pages()
    }

    /// Total pages ever taken by [`reclaim_under_pressure`](Self::reclaim_under_pressure).
    pub fn reclaimed_pages(&self) -> u64 {
        self.reclaimed_pages
    }

    /// Total pages ever mapped by [`deflate_on_demand`](Self::deflate_on_demand).
    pub fn deflated_pages(&self) -> u64 {
        self.deflated_pages
    }

    /// True while a warm reboot holds the domain's image frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Fences the balloon for the duration of a warm reboot: the frozen
    /// image's frames must stay exactly where the P2M table says they are.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Lifts the warm-reboot fence.
    pub fn thaw(&mut self) {
        self.frozen = false;
    }

    /// Guest-cooperative resize: converges the domain toward `target`
    /// resident pages (shrinks via inflate, grows via deflate) and returns
    /// the signed page delta actually applied. A shrink target below the
    /// floor is clamped to `min_resident`; a grow takes at most what the
    /// allocator can supply (like [`deflate_on_demand`](Self::deflate_on_demand)).
    ///
    /// # Errors
    ///
    /// [`BalloonError::Frozen`] while fenced; propagates allocator/P2M
    /// failures.
    pub fn set_target(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        target: u64,
    ) -> Result<i64, BalloonError> {
        if self.frozen {
            return Err(BalloonError::Frozen);
        }
        let resident = p2m.total_pages();
        if target < resident {
            let take = resident - target.max(self.min_resident);
            self.balloon.inflate(p2m, ram, take)?;
            Ok(-(take as i64))
        } else {
            let want = target - resident;
            let take = want.min(ram.free_frames());
            if take > 0 {
                self.balloon.deflate(p2m, ram, take)?;
            }
            Ok(take as i64)
        }
    }

    /// Host-side reclaim: inflates by up to `want` pages, never below the
    /// floor and never while frozen, returning the pages actually freed.
    /// Policy refusals (frozen, at the floor) are `Ok(0)`, not errors —
    /// the host treats them as "this domain has nothing to give" and
    /// moves on to the next candidate.
    ///
    /// # Errors
    ///
    /// Propagates allocator/P2M failures only.
    pub fn reclaim_under_pressure(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        want: u64,
    ) -> Result<u64, BalloonError> {
        if self.frozen {
            return Ok(0);
        }
        let spare = p2m.total_pages().saturating_sub(self.min_resident);
        let take = want.min(spare);
        if take == 0 {
            return Ok(0);
        }
        self.balloon.inflate(p2m, ram, take)?;
        self.reclaimed_pages += take;
        Ok(take)
    }

    /// Guest-demand deflate with bounded latency: maps up to `pages`
    /// fresh frames, taking at most what the allocator holds free right
    /// now, and returns the pages actually mapped. The caller charges
    /// latency proportional to the return value — a short supply means a
    /// short (partial) deflate, never an unbounded stall.
    ///
    /// # Errors
    ///
    /// [`BalloonError::Frozen`] while fenced; propagates allocator/P2M
    /// failures.
    pub fn deflate_on_demand(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        pages: u64,
    ) -> Result<u64, BalloonError> {
        if self.frozen {
            return Err(BalloonError::Frozen);
        }
        let take = pages.min(ram.free_frames());
        if take == 0 {
            return Ok(0);
        }
        self.balloon.deflate(p2m, ram, take)?;
        self.deflated_pages += take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameRange, Mfn};

    fn setup(total: u64, domain: u64) -> (P2mTable, MachineMemory, Balloon) {
        let mut ram = MachineMemory::new(total);
        let ranges = ram.allocate(domain).unwrap();
        let mut p2m = P2mTable::new();
        p2m.map_contiguous(Pfn(0), &ranges).unwrap();
        (p2m, ram, Balloon::new())
    }

    #[test]
    fn inflate_returns_frames_to_allocator() {
        let (mut p2m, mut ram, mut b) = setup(1000, 500);
        assert_eq!(ram.free_frames(), 500);
        b.inflate(&mut p2m, &mut ram, 200).unwrap();
        assert_eq!(ram.free_frames(), 700);
        assert_eq!(p2m.total_pages(), 300);
        assert_eq!(b.inflated_pages(), 200);
    }

    #[test]
    fn deflate_grows_domain_back() {
        let (mut p2m, mut ram, mut b) = setup(1000, 500);
        b.inflate(&mut p2m, &mut ram, 200).unwrap();
        b.deflate(&mut p2m, &mut ram, 200).unwrap();
        assert_eq!(p2m.total_pages(), 500);
        assert_eq!(ram.free_frames(), 500);
        assert_eq!(b.inflated_pages(), 0);
        p2m.check_machine_disjoint().unwrap();
    }

    #[test]
    fn inflate_more_than_mapped_rejected() {
        let (mut p2m, mut ram, mut b) = setup(1000, 100);
        let err = b.inflate(&mut p2m, &mut ram, 200).unwrap_err();
        assert!(matches!(err, BalloonError::TooLarge { .. }));
        assert_eq!(p2m.total_pages(), 100);
    }

    #[test]
    fn deflate_fails_when_machine_memory_exhausted() {
        let (mut p2m, mut ram, mut b) = setup(500, 500);
        // All machine memory belongs to the domain already.
        let err = b.deflate(&mut p2m, &mut ram, 10).unwrap_err();
        assert!(matches!(err, BalloonError::Memory(_)));
    }

    #[test]
    fn pseudo_physical_can_exceed_machine_memory() {
        // Two domains, each 400 pages of pseudo-physical memory, on a
        // 600-page machine: ballooning makes it fit (paper §4.1).
        let mut ram = MachineMemory::new(600);
        let r1 = ram.allocate(400).unwrap();
        let mut p2m1 = P2mTable::new();
        p2m1.map_contiguous(Pfn(0), &r1).unwrap();
        let mut b1 = Balloon::new();
        // Domain 1 balloons down to 200 resident pages...
        b1.inflate(&mut p2m1, &mut ram, 200).unwrap();
        // ...so domain 2's 400 pages fit.
        let r2 = ram.allocate(400).unwrap();
        let mut p2m2 = P2mTable::new();
        p2m2.map_contiguous(Pfn(0), &r2).unwrap();
        // Pseudo-physical total (400 + 400) exceeds machine total (600);
        // the tables stay disjoint and correct.
        let mut all = p2m1.machine_ranges();
        all.extend(p2m2.machine_ranges());
        all.sort_by_key(|r| r.start);
        for w in all.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
        assert_eq!(p2m1.total_pages() + p2m2.total_pages(), 600);
    }

    #[test]
    fn repeated_inflate_deflate_keeps_table_consistent() {
        let (mut p2m, mut ram, mut b) = setup(1000, 600);
        for step in 1..=10u64 {
            b.inflate(&mut p2m, &mut ram, step * 10).unwrap();
            b.deflate(&mut p2m, &mut ram, step * 10).unwrap();
            p2m.check_machine_disjoint().unwrap();
            ram.check_invariants().unwrap();
        }
        assert_eq!(p2m.total_pages(), 600);
        // Every PFN still resolves.
        for pfn in 0..600 {
            assert!(p2m.lookup(Pfn(pfn)).is_some(), "pfn {pfn} lost");
        }
    }

    #[test]
    fn error_display_covers_variants() {
        let e1 = BalloonError::TooLarge {
            requested: 5,
            mapped: 2,
        };
        assert!(e1.to_string().contains("exceeds"));
        let e2: BalloonError = P2mError::NotMapped(Pfn(0), 1).into();
        assert!(e2.to_string().contains("balloon"));
        let e3: BalloonError = MemoryError::AlreadyAllocated(FrameRange::new(Mfn(0), 1)).into();
        assert!(e3.to_string().contains("allocated"));
        assert!(BalloonError::Frozen.to_string().contains("frozen"));
    }

    fn controller_setup(
        total: u64,
        domain: u64,
        floor: u64,
    ) -> (P2mTable, MachineMemory, BalloonController) {
        let (p2m, ram, _) = setup(total, domain);
        (p2m, ram, BalloonController::new(floor))
    }

    #[test]
    fn reclaim_respects_the_floor() {
        let (mut p2m, mut ram, mut c) = controller_setup(1000, 500, 100);
        let got = c
            .reclaim_under_pressure(&mut p2m, &mut ram, 10_000)
            .unwrap();
        assert_eq!(got, 400, "only down to the floor");
        assert_eq!(p2m.total_pages(), 100);
        assert_eq!(c.reclaimed_pages(), 400);
        // At the floor there is nothing left to give.
        assert_eq!(c.reclaim_under_pressure(&mut p2m, &mut ram, 1).unwrap(), 0);
    }

    #[test]
    fn frozen_controller_refuses_reclaim_and_rejects_resizes() {
        let (mut p2m, mut ram, mut c) = controller_setup(1000, 500, 100);
        c.freeze();
        assert!(c.is_frozen());
        // The I8 fence: a frozen image gives up nothing, silently.
        assert_eq!(c.reclaim_under_pressure(&mut p2m, &mut ram, 50).unwrap(), 0);
        assert_eq!(p2m.total_pages(), 500);
        // Explicit resizes are caller bugs while frozen.
        assert_eq!(
            c.set_target(&mut p2m, &mut ram, 300).unwrap_err(),
            BalloonError::Frozen
        );
        assert_eq!(
            c.deflate_on_demand(&mut p2m, &mut ram, 10).unwrap_err(),
            BalloonError::Frozen
        );
        c.thaw();
        assert_eq!(
            c.reclaim_under_pressure(&mut p2m, &mut ram, 50).unwrap(),
            50
        );
    }

    #[test]
    fn set_target_converges_both_directions() {
        let (mut p2m, mut ram, mut c) = controller_setup(1000, 500, 100);
        assert_eq!(c.set_target(&mut p2m, &mut ram, 200).unwrap(), -300);
        assert_eq!(p2m.total_pages(), 200);
        assert_eq!(c.inflated_pages(), 300);
        assert_eq!(c.set_target(&mut p2m, &mut ram, 450).unwrap(), 250);
        assert_eq!(p2m.total_pages(), 450);
        // A target below the floor clamps at the floor.
        assert_eq!(c.set_target(&mut p2m, &mut ram, 0).unwrap(), -350);
        assert_eq!(p2m.total_pages(), 100);
        p2m.check_machine_disjoint().unwrap();
        ram.check_invariants().unwrap();
    }

    #[test]
    fn deflate_on_demand_is_partial_when_memory_is_short() {
        // 600-frame machine, 500 mapped: after reclaiming 200 only the
        // freed frames plus the original 100 spare are available, and a
        // competing 250-frame allocation leaves 50.
        let (mut p2m, mut ram, mut c) = controller_setup(600, 500, 100);
        c.reclaim_under_pressure(&mut p2m, &mut ram, 200).unwrap();
        let competing = ram.allocate(250).unwrap();
        let got = c.deflate_on_demand(&mut p2m, &mut ram, 200).unwrap();
        assert_eq!(got, 50, "bounded by free frames, not an error");
        assert_eq!(c.deflated_pages(), 50);
        assert_eq!(ram.free_frames(), 0);
        // Nothing free at all: a zero-page deflate, still not an error.
        assert_eq!(c.deflate_on_demand(&mut p2m, &mut ram, 10).unwrap(), 0);
        ram.release(&competing).unwrap();
        p2m.check_machine_disjoint().unwrap();
    }
}
