//! Ballooning (Waldspurger, OSDI '02 — the paper's reference 27).
//!
//! A balloon driver lets the VMM reclaim machine frames from a domain
//! without the domain noticing more than reduced free memory: inflating the
//! balloon unmaps pseudo-physical pages (releasing their machine frames),
//! deflating maps fresh frames back in.
//!
//! The paper notes (§4.1) that the P2M-mapping table "can maintain the
//! mapping properly" even when total pseudo-physical memory exceeds machine
//! memory due to ballooning — the property tests in this module and in the
//! VMM crate pin that behaviour down.

use std::fmt;

use crate::frame::Pfn;
use crate::machine::{MachineMemory, MemoryError};
use crate::p2m::{P2mError, P2mTable};

/// Errors from balloon operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalloonError {
    /// The underlying machine allocator failed.
    Memory(MemoryError),
    /// The P2M table rejected the operation.
    P2m(P2mError),
    /// The domain does not have enough mapped pages to inflate by the
    /// requested amount.
    TooLarge {
        /// Pages requested.
        requested: u64,
        /// Pages currently mapped.
        mapped: u64,
    },
}

impl fmt::Display for BalloonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalloonError::Memory(e) => write!(f, "balloon: {e}"),
            BalloonError::P2m(e) => write!(f, "balloon: {e}"),
            BalloonError::TooLarge { requested, mapped } => write!(
                f,
                "balloon inflate of {requested} pages exceeds mapped {mapped}"
            ),
        }
    }
}

impl std::error::Error for BalloonError {}

impl From<MemoryError> for BalloonError {
    fn from(e: MemoryError) -> Self {
        BalloonError::Memory(e)
    }
}

impl From<P2mError> for BalloonError {
    fn from(e: P2mError) -> Self {
        BalloonError::P2m(e)
    }
}

/// Per-domain balloon state: how many pages are currently ballooned out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Balloon {
    inflated_pages: u64,
}

impl Balloon {
    /// A deflated balloon.
    pub fn new() -> Self {
        Balloon::default()
    }

    /// Pages currently surrendered to the VMM.
    pub fn inflated_pages(&self) -> u64 {
        self.inflated_pages
    }

    /// Inflates by `pages`: unmaps the domain's highest PFNs and returns
    /// their machine frames to the allocator.
    ///
    /// # Errors
    ///
    /// [`BalloonError::TooLarge`] if the domain has fewer mapped pages;
    /// propagates allocator/P2M failures.
    pub fn inflate(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        pages: u64,
    ) -> Result<(), BalloonError> {
        if pages > p2m.total_pages() {
            return Err(BalloonError::TooLarge {
                requested: pages,
                mapped: p2m.total_pages(),
            });
        }
        let released = p2m.unmap_top(pages)?;
        ram.release(&released)?;
        self.inflated_pages += pages;
        Ok(())
    }

    /// Deflates by `pages`: allocates fresh machine frames and maps them at
    /// the domain's current PFN limit. Deflating more than was inflated is
    /// allowed (it grows the domain) — callers enforce policy.
    ///
    /// # Errors
    ///
    /// Propagates allocator/P2M failures (e.g. machine memory exhausted).
    pub fn deflate(
        &mut self,
        p2m: &mut P2mTable,
        ram: &mut MachineMemory,
        pages: u64,
    ) -> Result<(), BalloonError> {
        let ranges = ram.allocate(pages)?;
        let pfn = Pfn(p2m.pfn_limit());
        if let Err(e) = p2m.map_contiguous(pfn, &ranges) {
            // Roll back the allocation; mapping at a fresh PFN limit cannot
            // overlap, but keep the path safe anyway.
            let _ = ram.release(&ranges);
            return Err(e.into());
        }
        self.inflated_pages = self.inflated_pages.saturating_sub(pages);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameRange, Mfn};

    fn setup(total: u64, domain: u64) -> (P2mTable, MachineMemory, Balloon) {
        let mut ram = MachineMemory::new(total);
        let ranges = ram.allocate(domain).unwrap();
        let mut p2m = P2mTable::new();
        p2m.map_contiguous(Pfn(0), &ranges).unwrap();
        (p2m, ram, Balloon::new())
    }

    #[test]
    fn inflate_returns_frames_to_allocator() {
        let (mut p2m, mut ram, mut b) = setup(1000, 500);
        assert_eq!(ram.free_frames(), 500);
        b.inflate(&mut p2m, &mut ram, 200).unwrap();
        assert_eq!(ram.free_frames(), 700);
        assert_eq!(p2m.total_pages(), 300);
        assert_eq!(b.inflated_pages(), 200);
    }

    #[test]
    fn deflate_grows_domain_back() {
        let (mut p2m, mut ram, mut b) = setup(1000, 500);
        b.inflate(&mut p2m, &mut ram, 200).unwrap();
        b.deflate(&mut p2m, &mut ram, 200).unwrap();
        assert_eq!(p2m.total_pages(), 500);
        assert_eq!(ram.free_frames(), 500);
        assert_eq!(b.inflated_pages(), 0);
        p2m.check_machine_disjoint().unwrap();
    }

    #[test]
    fn inflate_more_than_mapped_rejected() {
        let (mut p2m, mut ram, mut b) = setup(1000, 100);
        let err = b.inflate(&mut p2m, &mut ram, 200).unwrap_err();
        assert!(matches!(err, BalloonError::TooLarge { .. }));
        assert_eq!(p2m.total_pages(), 100);
    }

    #[test]
    fn deflate_fails_when_machine_memory_exhausted() {
        let (mut p2m, mut ram, mut b) = setup(500, 500);
        // All machine memory belongs to the domain already.
        let err = b.deflate(&mut p2m, &mut ram, 10).unwrap_err();
        assert!(matches!(err, BalloonError::Memory(_)));
    }

    #[test]
    fn pseudo_physical_can_exceed_machine_memory() {
        // Two domains, each 400 pages of pseudo-physical memory, on a
        // 600-page machine: ballooning makes it fit (paper §4.1).
        let mut ram = MachineMemory::new(600);
        let r1 = ram.allocate(400).unwrap();
        let mut p2m1 = P2mTable::new();
        p2m1.map_contiguous(Pfn(0), &r1).unwrap();
        let mut b1 = Balloon::new();
        // Domain 1 balloons down to 200 resident pages...
        b1.inflate(&mut p2m1, &mut ram, 200).unwrap();
        // ...so domain 2's 400 pages fit.
        let r2 = ram.allocate(400).unwrap();
        let mut p2m2 = P2mTable::new();
        p2m2.map_contiguous(Pfn(0), &r2).unwrap();
        // Pseudo-physical total (400 + 400) exceeds machine total (600);
        // the tables stay disjoint and correct.
        let mut all = p2m1.machine_ranges();
        all.extend(p2m2.machine_ranges());
        all.sort_by_key(|r| r.start);
        for w in all.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
        assert_eq!(p2m1.total_pages() + p2m2.total_pages(), 600);
    }

    #[test]
    fn repeated_inflate_deflate_keeps_table_consistent() {
        let (mut p2m, mut ram, mut b) = setup(1000, 600);
        for step in 1..=10u64 {
            b.inflate(&mut p2m, &mut ram, step * 10).unwrap();
            b.deflate(&mut p2m, &mut ram, step * 10).unwrap();
            p2m.check_machine_disjoint().unwrap();
            ram.check_invariants().unwrap();
        }
        assert_eq!(p2m.total_pages(), 600);
        // Every PFN still resolves.
        for pfn in 0..600 {
            assert!(p2m.lookup(Pfn(pfn)).is_some(), "pfn {pfn} lost");
        }
    }

    #[test]
    fn error_display_covers_variants() {
        let e1 = BalloonError::TooLarge {
            requested: 5,
            mapped: 2,
        };
        assert!(e1.to_string().contains("exceeds"));
        let e2: BalloonError = P2mError::NotMapped(Pfn(0), 1).into();
        assert!(e2.to_string().contains("balloon"));
        let e3: BalloonError = MemoryError::AlreadyAllocated(FrameRange::new(Mfn(0), 1)).into();
        assert!(e3.to_string().contains("allocated"));
    }
}
