//! # rh-memory — the machine memory substrate
//!
//! Models the physical RAM of the consolidated server that RootHammer-RS's
//! VMM manages, with exactly the structures the warm-VM reboot relies on
//! (paper §4.1):
//!
//! * [`frame`] — machine/pseudo-physical frame numbers and extents,
//! * [`machine`] — a deterministic extent allocator over machine frames,
//!   including the `reserve_exact` primitive quick reload uses to re-claim
//!   frozen domain memory,
//! * [`contents`] — per-frame content signatures, so "memory preserved
//!   across the reboot" is a verifiable digest equality,
//! * [`p2m`] — the P2M-mapping table (2 MB per GB of pseudo-physical
//!   memory) that survives the reboot and drives re-reservation,
//! * [`heap`] — the 16 MB VMM heap with leak (software aging) accounting,
//! * [`layout`] — placement of the preserved metadata regions (VMM image,
//!   P2M tables, execution-state slots),
//! * [`balloon`] — the ballooning driver that lets pseudo-physical memory
//!   exceed machine memory, plus the [`balloon::BalloonController`]
//!   policy layer (resize targets, reclaim-under-pressure, bounded
//!   deflate-on-demand) the serverless cell builds on.
//!
//! ## Example: freeze, reboot, verify
//!
//! ```
//! use rh_memory::contents::{DigestBuilder, FrameContents};
//! use rh_memory::frame::{FrameRange, Mfn, Pfn};
//! use rh_memory::machine::MachineMemory;
//! use rh_memory::p2m::P2mTable;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ram = MachineMemory::new(1 << 20);
//! let mut mem = FrameContents::new();
//!
//! // A domain gets frames; its contents are initialized.
//! let frames = ram.allocate(4096)?;
//! let mut p2m = P2mTable::new();
//! p2m.map_contiguous(Pfn(0), &frames)?;
//! for (i, r) in frames.iter().enumerate() {
//!     mem.fill_pattern(*r, 0x1234 + i as u64);
//! }
//!
//! // Digest the domain's memory in pseudo-physical order.
//! let digest = |mem: &FrameContents, p2m: &P2mTable| {
//!     let mut d = DigestBuilder::new();
//!     for (pfn, mfn) in p2m.iter_pages() {
//!         d.add(pfn.0, mem.read(mfn));
//!     }
//!     d.finish()
//! };
//! let before = digest(&mem, &p2m);
//!
//! // Quick reload: allocator state is rebuilt, then the preserved P2M
//! // table re-reserves the domain's frames. Contents were never touched.
//! ram.hardware_reset(); // (the allocator metadata, not the DRAM cells)
//! for r in p2m.machine_ranges() {
//!     ram.reserve_exact(r)?;
//! }
//! assert_eq!(digest(&mem, &p2m), before);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balloon;
pub mod contents;
pub mod frame;
pub mod heap;
pub mod layout;
pub mod machine;
pub mod p2m;

pub use balloon::{Balloon, BalloonController, BalloonError};
pub use contents::{DigestBuilder, FrameContents};
pub use frame::{FrameRange, Mfn, Pfn, FRAMES_PER_GIB, PAGE_SIZE};
pub use heap::{HeapExhausted, VmmHeap};
pub use layout::{MemoryLayout, Region, RegionPurpose};
pub use machine::{MachineMemory, MemoryError};
pub use p2m::{P2mError, P2mTable};
