//! Machine memory layout: where the preserved structures live.
//!
//! Quick reload works because three kinds of state sit at *known,
//! re-reservable* places in machine memory (paper §4.2–4.3):
//!
//! 1. the **VMM image region** (text/data/heap) at the bottom of memory —
//!    the new executable is copied over the old one,
//! 2. the **P2M-mapping tables**, 8 bytes per guest page (2 MB per GB),
//! 3. the **execution-state slots**, 16 KB per suspended domain.
//!
//! [`MemoryLayout`] computes the placement and footprint of those regions
//! for a given machine/domain configuration, and emits the ordered
//! reservation list a fresh VMM instance must replay before its allocator
//! serves anything else.

use std::fmt;

use crate::frame::{frames_for_bytes, FrameRange, Mfn, PAGE_SIZE};
use crate::p2m::BYTES_PER_ENTRY;

/// Why a region is reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionPurpose {
    /// The hypervisor's own text, data and heap.
    VmmImage,
    /// A domain's P2M-mapping table.
    P2mTable {
        /// Owning domain (caller-chosen id).
        domain: u32,
    },
    /// A domain's saved execution state.
    ExecState {
        /// Owning domain.
        domain: u32,
    },
}

impl fmt::Display for RegionPurpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionPurpose::VmmImage => write!(f, "vmm-image"),
            RegionPurpose::P2mTable { domain } => write!(f, "p2m[dom{domain}]"),
            RegionPurpose::ExecState { domain } => write!(f, "exec[dom{domain}]"),
        }
    }
}

/// One reserved region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// What lives here.
    pub purpose: RegionPurpose,
    /// The frames it occupies.
    pub frames: FrameRange,
}

impl Region {
    /// Bytes covered.
    pub fn bytes(&self) -> u64 {
        self.frames.bytes()
    }
}

/// The preserved-region layout for one host configuration.
///
/// # Examples
///
/// ```
/// use rh_memory::layout::MemoryLayout;
///
/// // A 12 GiB host with three 1 GiB domains.
/// let layout = MemoryLayout::plan(64 << 20, &[(1, 1 << 30), (2, 1 << 30), (3, 1 << 30)], 16 * 1024);
/// // Three P2M tables of 2 MiB each plus three 16 KiB exec slots.
/// assert_eq!(layout.p2m_bytes(), 3 * 2 * 1024 * 1024);
/// assert_eq!(layout.exec_state_bytes(), 3 * 16 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    regions: Vec<Region>,
}

impl MemoryLayout {
    /// Plans the layout: the VMM image of `vmm_bytes` at frame 0, then
    /// each domain's P2M table and execution-state slot packed above it.
    /// `domains` is `(id, pseudo-physical bytes)`.
    pub fn plan(vmm_bytes: u64, domains: &[(u32, u64)], exec_state_bytes: u64) -> Self {
        let mut regions = Vec::new();
        let mut cursor = 0u64;
        let mut push = |purpose: RegionPurpose, bytes: u64, cursor: &mut u64| {
            let count = frames_for_bytes(bytes).max(1);
            regions.push(Region {
                purpose,
                frames: FrameRange::new(Mfn(*cursor), count),
            });
            *cursor += count;
        };
        push(RegionPurpose::VmmImage, vmm_bytes, &mut cursor);
        for &(id, mem_bytes) in domains {
            let pages = mem_bytes / PAGE_SIZE;
            push(
                RegionPurpose::P2mTable { domain: id },
                pages * BYTES_PER_ENTRY,
                &mut cursor,
            );
            push(
                RegionPurpose::ExecState { domain: id },
                exec_state_bytes,
                &mut cursor,
            );
        }
        MemoryLayout { regions }
    }

    /// The regions in reservation order (VMM image first, then per-domain
    /// metadata) — the order quick reload must replay.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes across all regions.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes()).sum()
    }

    /// Bytes of P2M tables.
    pub fn p2m_bytes(&self) -> u64 {
        self.purpose_bytes(|p| matches!(p, RegionPurpose::P2mTable { .. }))
    }

    /// Bytes of execution-state slots.
    pub fn exec_state_bytes(&self) -> u64 {
        self.purpose_bytes(|p| matches!(p, RegionPurpose::ExecState { .. }))
    }

    /// Bytes of the VMM image region.
    pub fn vmm_bytes(&self) -> u64 {
        self.purpose_bytes(|p| matches!(p, RegionPurpose::VmmImage))
    }

    fn purpose_bytes(&self, f: impl Fn(&RegionPurpose) -> bool) -> u64 {
        self.regions
            .iter()
            .filter(|r| f(&r.purpose))
            .map(|r| r.bytes())
            .sum()
    }

    /// Checks that no two regions overlap and everything fits below
    /// `total_frames`.
    pub fn check(&self, total_frames: u64) -> Result<(), String> {
        let mut sorted: Vec<&Region> = self.regions.iter().collect();
        sorted.sort_by_key(|r| r.frames.start);
        for w in sorted.windows(2) {
            if w[0].frames.overlaps(&w[1].frames) {
                return Err(format!(
                    "regions {} and {} overlap",
                    w[0].purpose, w[1].purpose
                ));
            }
        }
        if let Some(last) = sorted.last() {
            if last.frames.end().0 > total_frames {
                return Err(format!("layout exceeds machine memory at {}", last.purpose));
            }
        }
        Ok(())
    }
}

impl fmt::Display for MemoryLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.regions {
            writeln!(
                f,
                "{:<14} {:>10} bytes at {}",
                r.purpose.to_string(),
                r.bytes(),
                r.frames
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAMES_PER_GIB;

    #[test]
    fn paper_configuration_footprint() {
        // 11 × 1 GiB domains: 22 MiB of P2M tables + 176 KiB of exec state
        // (the paper's §4.1/§4.2 numbers), preserved across quick reload.
        let domains: Vec<(u32, u64)> = (1..=11).map(|i| (i, 1u64 << 30)).collect();
        let layout = MemoryLayout::plan(64 << 20, &domains, 16 * 1024);
        assert_eq!(layout.p2m_bytes(), 22 * 1024 * 1024);
        assert_eq!(layout.exec_state_bytes(), 11 * 16 * 1024);
        assert_eq!(layout.vmm_bytes(), 64 << 20);
        layout.check(12 * FRAMES_PER_GIB).unwrap();
        // 1 (vmm) + 2 per domain.
        assert_eq!(layout.regions().len(), 23);
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let layout = MemoryLayout::plan(1 << 20, &[(1, 1 << 30), (2, 2 << 30)], 16 * 1024);
        layout.check(4 * FRAMES_PER_GIB).unwrap();
        let regions = layout.regions();
        assert_eq!(regions[0].purpose, RegionPurpose::VmmImage);
        for w in regions.windows(2) {
            assert_eq!(w[0].frames.end(), w[1].frames.start, "densely packed");
        }
    }

    #[test]
    fn layout_overflow_is_detected() {
        let layout = MemoryLayout::plan(1 << 30, &[(1, 1 << 30)], 16 * 1024);
        assert!(layout.check(1000).is_err());
    }

    #[test]
    fn tiny_regions_round_up_to_a_frame() {
        let layout = MemoryLayout::plan(100, &[(1, PAGE_SIZE)], 10);
        for r in layout.regions() {
            assert!(r.frames.count >= 1);
        }
        // 16 KiB exec slot spec of 10 bytes still occupies one frame.
        assert_eq!(layout.exec_state_bytes(), PAGE_SIZE);
    }

    #[test]
    fn display_lists_every_region() {
        let layout = MemoryLayout::plan(1 << 20, &[(7, 1 << 30)], 16 * 1024);
        let s = layout.to_string();
        assert!(s.contains("vmm-image"));
        assert!(s.contains("p2m[dom7]"));
        assert!(s.contains("exec[dom7]"));
    }
}
