//! Frame numbers and frame ranges.
//!
//! Following Xen's terminology (paper §4.1):
//!
//! * **Machine memory** is the physical RAM of the host, addressed by
//!   *machine frame numbers* ([`Mfn`]), numbered consecutively from 0.
//! * **Pseudo-physical memory** is the contiguous physical memory illusion
//!   given to each domain, addressed by *physical frame numbers* ([`Pfn`]),
//!   also numbered from 0 per domain.
//!
//! The P2M-mapping table (see [`crate::p2m`]) records the Pfn→Mfn mapping
//! that lets a rebooted VMM re-reserve exactly the frames a frozen domain
//! owns.

use std::fmt;
use std::ops::Add;

/// Size of one page frame in bytes (4 KiB, as on x86).
pub const PAGE_SIZE: u64 = 4096;

/// Number of frames in one GiB.
pub const FRAMES_PER_GIB: u64 = (1 << 30) / PAGE_SIZE;

/// Converts a byte count to the number of frames needed to hold it
/// (rounding up).
pub const fn frames_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Converts a frame count to bytes.
pub const fn bytes_for_frames(frames: u64) -> u64 {
    frames * PAGE_SIZE
}

/// A machine frame number: an index into the host's physical RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mfn(pub u64);

/// A pseudo-physical frame number: an index into one domain's contiguous
/// physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl fmt::Display for Mfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl Add<u64> for Mfn {
    type Output = Mfn;
    fn add(self, rhs: u64) -> Mfn {
        Mfn(self.0 + rhs)
    }
}

impl Add<u64> for Pfn {
    type Output = Pfn;
    fn add(self, rhs: u64) -> Pfn {
        Pfn(self.0 + rhs)
    }
}

/// A contiguous run of machine frames `[start, start + count)`.
///
/// The allocator hands out extents rather than individual frames so that an
/// 11 GiB domain is described by a handful of ranges instead of millions of
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRange {
    /// First frame of the run.
    pub start: Mfn,
    /// Number of frames in the run (always > 0 for ranges built with
    /// [`FrameRange::new`]).
    pub count: u64,
}

impl FrameRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(start: Mfn, count: u64) -> Self {
        assert!(count > 0, "FrameRange must be non-empty");
        FrameRange { start, count }
    }

    /// One past the last frame.
    pub fn end(&self) -> Mfn {
        Mfn(self.start.0 + self.count)
    }

    /// Bytes covered by this range.
    pub fn bytes(&self) -> u64 {
        bytes_for_frames(self.count)
    }

    /// True if `mfn` falls inside the range.
    pub fn contains(&self, mfn: Mfn) -> bool {
        mfn >= self.start && mfn < self.end()
    }

    /// True if the two ranges share any frame.
    pub fn overlaps(&self, other: &FrameRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Iterates over every frame in the range.
    pub fn iter(&self) -> impl Iterator<Item = Mfn> {
        let s = self.start.0;
        (s..s + self.count).map(Mfn)
    }
}

impl fmt::Display for FrameRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

/// Total frames covered by a slice of ranges.
pub fn total_frames(ranges: &[FrameRange]) -> u64 {
    ranges.iter().map(|r| r.count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(frames_for_bytes(0), 0);
        assert_eq!(frames_for_bytes(1), 1);
        assert_eq!(frames_for_bytes(PAGE_SIZE), 1);
        assert_eq!(frames_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(bytes_for_frames(FRAMES_PER_GIB), 1 << 30);
        assert_eq!(FRAMES_PER_GIB, 262_144);
    }

    #[test]
    fn range_geometry() {
        let r = FrameRange::new(Mfn(100), 50);
        assert_eq!(r.end(), Mfn(150));
        assert_eq!(r.bytes(), 50 * PAGE_SIZE);
        assert!(r.contains(Mfn(100)));
        assert!(r.contains(Mfn(149)));
        assert!(!r.contains(Mfn(150)));
        assert!(!r.contains(Mfn(99)));
    }

    #[test]
    fn range_overlap() {
        let a = FrameRange::new(Mfn(0), 10);
        let b = FrameRange::new(Mfn(9), 10);
        let c = FrameRange::new(Mfn(10), 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn range_iteration() {
        let r = FrameRange::new(Mfn(5), 3);
        let v: Vec<Mfn> = r.iter().collect();
        assert_eq!(v, vec![Mfn(5), Mfn(6), Mfn(7)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = FrameRange::new(Mfn(0), 0);
    }

    #[test]
    fn total_frames_sums() {
        let ranges = [FrameRange::new(Mfn(0), 10), FrameRange::new(Mfn(100), 5)];
        assert_eq!(total_frames(&ranges), 15);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Mfn(16).to_string(), "mfn:0x10");
        assert_eq!(Pfn(16).to_string(), "pfn:0x10");
        assert_eq!(FrameRange::new(Mfn(0), 2).to_string(), "[mfn:0x0..mfn:0x2)");
    }
}
